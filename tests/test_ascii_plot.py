"""Tests for the terminal figure renderer."""

import numpy as np

from repro.metrics import plot_series, plot_xy


class TestPlotSeries:
    def test_renders_grid_with_axis(self):
        t = np.array([0.0, 10.0, 20.0])
        v = np.array([5.0, 10.0, 2.0])
        out = plot_series(t, v, width=40, height=8)
        lines = out.splitlines()
        assert len(lines) == 10  # 8 rows + axis + xlabel
        assert "*" in out
        assert "t = 0s ... 20s" in out

    def test_empty_series(self):
        out = plot_series(np.array([]), np.array([]), title="T")
        assert "empty" in out

    def test_title_included(self):
        out = plot_series(np.array([0.0]), np.array([1.0]), title="Figure 5a")
        assert out.startswith("Figure 5a")

    def test_max_value_hits_top_row(self):
        t = np.array([0.0, 50.0, 100.0])
        v = np.array([0.0, 100.0, 0.0])
        out = plot_series(t, v, width=30, height=6, y_max=100.0)
        top_data_row = out.splitlines()[0]
        assert "*" in top_data_row

    def test_constant_series_single_row(self):
        t = np.linspace(0, 100, 10)
        v = np.full(10, 55.0)
        out = plot_series(t, v, width=30, height=10, y_max=55.0)
        rows_with_stars = [l for l in out.splitlines() if "*" in l]
        assert len(rows_with_stars) == 1


class TestPlotXY:
    def test_renders_points_and_hline(self):
        out = plot_xy([40, 100, 1101], [5000, 3200, 2000], hline=3200.0)
        assert "o" in out and "-" in out
        assert "40" in out and "1101" in out

    def test_log_axis_label(self):
        out = plot_xy([10, 100, 1000], [3, 2, 1], logx=True)
        assert "log10(nodes)" in out

    def test_no_points(self):
        assert "no points" in plot_xy([], [])

    def test_single_point(self):
        out = plot_xy([100], [50])
        assert "o" in out
