"""Tests for sim coordination helpers (gather_safe) and the RNG registry."""

import numpy as np
import pytest

from repro.sim import RngRegistry, Simulator
from repro.sim.util import Outcome, gather_safe


class TestGatherSafe:
    def test_all_success(self):
        sim = Simulator()
        events = [sim.timeout(float(i), value=i) for i in (3, 1, 2)]
        p = gather_safe(sim, events)
        sim.run(until=p)
        outcomes = p.value
        assert [o.ok for o in outcomes] == [True, True, True]
        assert [o.value for o in outcomes] == [3, 1, 2]  # input order
        assert sim.now == 3.0

    def test_mixed_failure_does_not_propagate(self):
        sim = Simulator()
        ok = sim.timeout(1.0, value="fine")
        bad = sim.event()
        bad.fail(RuntimeError("boom"))
        p = gather_safe(sim, [ok, bad])
        sim.run(until=p)
        outcomes = p.value
        assert outcomes[0].ok and outcomes[0].value == "fine"
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, RuntimeError)

    def test_empty_list(self):
        sim = Simulator()
        p = gather_safe(sim, [])
        sim.run(until=p)
        assert p.value == []

    def test_waits_for_slowest(self):
        sim = Simulator()
        events = [sim.timeout(10.0), sim.timeout(1.0)]
        p = gather_safe(sim, events)
        sim.run(until=p)
        assert sim.now == 10.0

    def test_outcome_repr(self):
        assert "ok=True" in repr(Outcome(True, value=1))
        assert "ok=False" in repr(Outcome(False, error=ValueError("x")))


class TestRngRegistry:
    def test_stream_cached(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_seed_property(self):
        assert RngRegistry(5).seed == 5

    def test_spawn_derives_independent_registry(self):
        reg = RngRegistry(1)
        child1 = reg.spawn("run1")
        child2 = reg.spawn("run2")
        a = child1.stream("x").random(4)
        b = child2.stream("x").random(4)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic(self):
        a = RngRegistry(1).spawn("r").stream("x").random(4)
        b = RngRegistry(1).spawn("r").stream("x").random(4)
        assert np.array_equal(a, b)

    def test_repr_lists_streams(self):
        reg = RngRegistry(1)
        reg.stream("alpha")
        assert "alpha" in repr(reg)
