"""Failure-path integration tests on the assembled HOG system:
preempt_host, zombie propagation, fabric handshakes, scheduler config."""

import pytest

from repro.core import HOGConfig, HOGSystem
from repro.grid import GridSiteConfig, SitePolicy, WrapperConfig
from repro.hdfs import hog_config
from repro.mapreduce import MRConfig
from repro.net import FabricConfig, NetworkFabric, NetworkTopology
from repro.sim import Simulator


def make_hog(target=6, zombie_fix=True, disk_check=True, seed=2):
    policy = SitePolicy(scheduling_delay_mean=5.0)
    cfg = HOGConfig(
        sites=[GridSiteConfig(f"S{i}", f"site{i}.edu", 10, policy)
               for i in range(3)],
        hdfs=hog_config(replication=3,
                        disk_check_interval=180.0 if disk_check else None),
        wrapper=WrapperConfig(zombie_fix=zombie_fix),
        negotiation_interval=10.0,
        seed=seed,
    )
    sim = Simulator()
    hog = HOGSystem(sim, cfg)
    hog.start(target)
    hog.run_until_nodes(target)
    return sim, hog


class TestPreemptHost:
    def test_clean_preempt_updates_factory_accounting(self):
        sim, hog = make_hog()
        victim = next(iter(hog.nodes))
        before = hog.running_nodes()
        hog.preempt_host(victim)
        assert hog.running_nodes() == before - 1
        assert hog.factory.counters.get("glideins_preempted") == 1

    def test_factory_replaces_preempted_node(self):
        sim, hog = make_hog()
        victim = next(iter(hog.nodes))
        hog.preempt_host(victim)
        hog.run_until_nodes(6, timeout=600.0)
        assert hog.running_nodes() == 6

    def test_preempt_unknown_host_raises(self):
        sim, hog = make_hog()
        with pytest.raises(KeyError):
            hog.preempt_host("ghost.nowhere.edu")

    def test_zombie_preempt_keeps_daemons_heartbeating(self):
        sim, hog = make_hog(disk_check=False)
        victim = next(iter(hog.nodes))
        hog.preempt_host(victim, zombie=True)
        # Factory no longer counts it...
        assert hog.running_nodes() == 5
        sim.run(until=sim.now + 120.0)
        # ...but the masters still believe it alive (the §IV-D1 bug).
        # Meanwhile the factory replaced it, so the jobtracker counts the
        # 6 real trackers PLUS the zombie phantom — the "fluctuated above"
        # artefact of §IV-B.
        assert victim in hog.namenode.live_datanode_hosts()
        assert hog.jobtracker.live_tracker_count() == hog.running_nodes() + 1

    def test_zombie_with_disk_check_gets_cleaned_up(self):
        sim, hog = make_hog(disk_check=True)
        victim = next(iter(hog.nodes))
        hog.preempt_host(victim, zombie=True)
        sim.run(until=sim.now + 180.0 + 40.0)
        assert victim not in hog.namenode.live_datanode_hosts()

    def test_double_preempt_is_keyerror(self):
        sim, hog = make_hog()
        victim = next(iter(hog.nodes))
        hog.preempt_host(victim)
        with pytest.raises(KeyError):
            hog.preempt_host(victim)


class TestFabricHandshake:
    def test_handshake_scales_with_latency(self):
        sim = Simulator()
        topo = NetworkTopology()
        fabric = NetworkFabric(sim, topo, FabricConfig(
            nic_bandwidth=1e9, site_uplink_bandwidth=1e9,
            intra_site_latency=0.001, inter_site_latency=0.1,
            handshake_rtts=5.0))
        # Cross-site: 0.1 + 5*2*0.1 = 1.1s setup, negligible payload.
        ev = fabric.transfer("a.x.edu", "b.y.edu", 1.0)
        sim.run(until=ev)
        assert sim.now == pytest.approx(1.1, abs=0.01)

    def test_handshake_cheap_within_site(self):
        sim = Simulator()
        fabric = NetworkFabric(sim, NetworkTopology(), FabricConfig(
            nic_bandwidth=1e9, site_uplink_bandwidth=1e9,
            intra_site_latency=0.001, inter_site_latency=0.1,
            handshake_rtts=5.0))
        ev = fabric.transfer("a.x.edu", "b.x.edu", 1.0)
        sim.run(until=ev)
        assert sim.now == pytest.approx(0.011, abs=0.001)

    def test_negative_handshake_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(handshake_rtts=-1).validate()


class TestSchedulerConfig:
    def test_named_schedulers_resolve(self):
        for name, cls_name in [("fifo", "FifoScheduler"),
                               ("delay", "DelayScheduler"),
                               ("matchmaking", "MatchmakingScheduler")]:
            cfg = MRConfig(scheduler=name)
            cfg.validate()
            from repro.hdfs import Namenode, SiteAwarePolicy
            from repro.mapreduce import JobTracker
            import numpy as np
            sim = Simulator()
            topo = NetworkTopology()
            nn = Namenode(sim, topo, SiteAwarePolicy(topo,
                                                     np.random.default_rng(0)))
            jt = JobTracker(sim, nn, topo, cfg)
            assert type(jt.scheduler).__name__ == cls_name

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            MRConfig(scheduler="round-robin").validate()
