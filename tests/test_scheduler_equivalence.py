"""Equivalence proof for the indexed assignment path (PR 6 tentpole).

The scheduler refactor replaced the per-heartbeat all-jobs scan with
cluster-wide pending indexes updated on task-state events.  The old scan
survives behind ``MRConfig.debug_scan_assign`` for exactly this suite:
run registry scenarios under both paths and assert the *assignment
streams* — every (time, job, task, host, speculative, locality) launch
tuple, in order — are identical per seed.

Scenarios are shrunk (nodes/scale) so the suite stays in the fast tier;
the combos cover all three schedulers and the churn-heavy scenario where
requeues, tracker loss, and speculation interact with the indexes.

A separate determinism guard runs the 10k smoke shape twice and asserts
identical ``ScenarioResult.payload()`` dicts (slow tier).
"""

from dataclasses import replace

import pytest

from repro.mapreduce.config import hog_mr_config
from repro.mapreduce.jobtracker import JobTracker
from repro.scenarios import registry
from repro.scenarios.runner import ScenarioRunner


def _capture_stream(spec):
    """Run a scenario while recording every task launch the jobtracker
    performs, in order, as hashable tuples."""
    stream = []
    original = JobTracker._launch

    def recording(self, task, tracker, speculative, locality):
        stream.append((round(self.sim.now, 9), task.job.job_id,
                       str(task.type), task.index, tracker.host,
                       bool(speculative), locality))
        return original(self, task, tracker, speculative, locality)

    JobTracker._launch = recording
    try:
        result = ScenarioRunner(spec).run()
    finally:
        JobTracker._launch = original
    return stream, result


def _spec_for(scenario, scheduler, scan, *, n_nodes, scale, seed):
    spec = registry.build(scenario, n_nodes=n_nodes, scale=scale, seed=seed)
    spec.scheduler = scheduler
    mr = spec.cluster.mr or hog_mr_config()
    spec.cluster.mr = replace(mr, scheduler=scheduler,
                              debug_scan_assign=scan)
    return spec


def _assert_equivalent(scenario, scheduler, *, n_nodes, scale, seed):
    scan_stream, scan_result = _capture_stream(
        _spec_for(scenario, scheduler, True,
                  n_nodes=n_nodes, scale=scale, seed=seed))
    index_stream, index_result = _capture_stream(
        _spec_for(scenario, scheduler, False,
                  n_nodes=n_nodes, scale=scale, seed=seed))
    assert scan_stream, f"{scenario}/{scheduler}: no assignments captured"
    assert scan_stream == index_stream, (
        f"{scenario}/{scheduler}: assignment streams diverge "
        f"(scan={len(scan_stream)} launches, index={len(index_stream)})")
    # The streams matching tuple-for-tuple implies the outcomes match;
    # check the headline numbers anyway as a cheap second witness.
    assert scan_result.makespan_seconds == index_result.makespan_seconds
    assert scan_result.locality == index_result.locality
    assert scan_result.jobs_completed == index_result.jobs_completed


class TestScanIndexEquivalence:
    """Old-scan vs. new-index assignment streams, per scheduler."""

    def test_baseline_matchmaking(self):
        _assert_equivalent("baseline", "matchmaking",
                           n_nodes=25, scale=0.08, seed=3)

    def test_contended_fifo(self):
        _assert_equivalent("contended", "fifo",
                           n_nodes=25, scale=0.06, seed=5)

    def test_churn_heavy_delay(self):
        _assert_equivalent("churn_heavy", "delay",
                           n_nodes=25, scale=0.08, seed=11)

    def test_churn_heavy_matchmaking(self):
        _assert_equivalent("churn_heavy", "matchmaking",
                           n_nodes=25, scale=0.08, seed=7)


@pytest.mark.slow
def test_determinism_at_10k_smoke_scale():
    """Two identical runs of the 10k-node smoke shape produce identical
    simulation-determined payloads — including the control-plane counters,
    so the delta-driven indexes themselves are covered by the guard."""
    payloads = []
    for _ in range(2):
        spec = registry.build("baseline", n_nodes=10_000, scale=0.02, seed=1)
        # 50% ramp: the central package server caps the sustainable
        # running count near 6.7k under baseline churn (see ROADMAP),
        # so 98% would wait forever — this matches the bench frontier
        # point's configuration.
        spec.cluster = replace(spec.cluster, ramp_fraction=0.5)
        payloads.append(ScenarioRunner(spec).run().payload())
    assert payloads[0] == payloads[1]
