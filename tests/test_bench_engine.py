"""Fast-tier coverage for the pure-engine micro-benchmark.

Runs ``bench_engine.py --smoke`` so the harness — all three dispatch
shapes, both pooling modes, and the JSON report shape — cannot rot
between real benchmark runs, and asserts the EngineProfile evidence
that each shape exercised the path it claims to.
"""

import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench_module():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_engine
        return bench_engine
    finally:
        sys.path.remove(str(BENCH_DIR))


def test_smoke_covers_all_shapes_and_pooling_modes(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "report.json"
    assert bench.main(["--smoke", "--repeats", "1",
                       "--output", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["benchmark"] == "bench_engine"
    assert report["smoke"] is True

    points = {(p["shape"], p["pooling"]): p for p in report["points"]}
    assert set(points) == {
        (shape, pooling)
        for shape in ("process_sleep", "callback_timer", "coalesced_burst")
        for pooling in (False, True)
    }

    for p in points.values():
        assert p["events"] > 0
        assert p["events_per_second"] is None or p["events_per_second"] > 0

    # Profile evidence: each shape drove the path it claims to measure.
    prof = points[("process_sleep", True)]["profile"]
    assert prof["process_resumes"] > 0
    assert prof["timeout_pool_reuses"] > 0

    prof = points[("callback_timer", True)]["profile"]
    assert prof["callback_timer_fires"] > 0
    assert prof["timer_pool_reuses"] > 0
    assert prof["process_resumes"] == 0

    prof = points[("coalesced_burst", True)]["profile"]
    n, m = points[("coalesced_burst", True)]["units"], \
        points[("coalesced_burst", True)]["ticks"]
    # Coalescing: n registrations per round share ONE timer dispatch.
    assert prof["callback_timer_fires"] == m
    assert prof["timer_callbacks_run"] == n * m

    # Unpooled runs must show zero reuse (the A/B baseline is honest).
    for shape in ("process_sleep", "callback_timer", "coalesced_burst"):
        prof = points[(shape, False)]["profile"]
        assert prof["timeout_pool_reuses"] == 0
        assert prof["timer_pool_reuses"] == 0

    assert set(report["pooled_speedups"]) == {
        "process_sleep", "callback_timer", "coalesced_burst"}
