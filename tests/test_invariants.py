"""Runtime invariant checker: clean systems pass, corrupted metadata is
caught, and enabling the checker is decision-free (byte-identical
payloads with it off and on)."""

from types import SimpleNamespace

from repro.faults import InvariantChecker
from repro.hdfs import hog_config
from repro.hdfs.config import MB
from repro.scenarios import registry
from repro.scenarios.runner import ScenarioRunner

from helpers import MRHarness

SMOKE = dict(n_nodes=24, scale=0.04)


def make_system(**hdfs_overrides):
    """An MR cluster wrapped to look like a HOG system to the checker."""
    h = MRHarness(n_nodes=6, hdfs_config=hog_config(
        replication=3, disk_check_interval=None, **hdfs_overrides))
    system = SimpleNamespace(namenode=h.namenode, jobtracker=h.jobtracker)
    return h, system


class TestCleanSystem:
    def test_busy_cluster_has_zero_violations(self):
        h, system = make_system()
        checker = InvariantChecker(h.sim, system, interval=5.0)
        checker.start()
        job = h.submit(num_maps=4, num_reduces=2)
        h.run_to_completion([job])
        h.sim.run(until=h.sim.now + 60.0)
        checker.stop()
        summary = checker.summary()
        assert summary["checks_run"] > 10
        assert summary["violations"] == 0
        assert summary["by_invariant"] == {}

    def test_tick_events_are_counted_for_subtraction(self):
        h, system = make_system()
        checker = InvariantChecker(h.sim, system, interval=5.0)
        checker.start()
        h.sim.run(until=h.sim.now + 52.0)
        assert checker.events_injected == 10


class TestCorruptionDetected:
    def test_needed_entry_at_target_flagged(self):
        h, system = make_system()
        fi = h.client().preload_file("/f", 64 * MB)
        nn = h.namenode
        nn._needed[fi.blocks[0].block_id] = None  # fully replicated block
        checker = InvariantChecker(h.sim, system)
        assert checker.check("poke") > 0
        assert "needed_consistent" in checker.violation_counts

    def test_one_sided_host_map_flagged(self):
        h, system = make_system()
        h.client().preload_file("/f", 64 * MB)
        nn = h.namenode
        nn._host_blocks[h.hosts()[0]][9999] = None  # phantom replica
        checker = InvariantChecker(h.sim, system)
        assert checker.check("poke") > 0
        assert "block_map_bidirectional" in checker.violation_counts

    def test_lost_block_with_replicas_flagged(self):
        h, system = make_system()
        fi = h.client().preload_file("/f", 64 * MB)
        nn = h.namenode
        nn._lost_blocks[fi.blocks[0].block_id] = None  # has live replicas
        checker = InvariantChecker(h.sim, system)
        assert checker.check("poke") > 0
        assert "lost_set_terminal" in checker.violation_counts

    def test_forgotten_needed_block_flagged(self):
        h, system = make_system()
        fi = h.client().preload_file("/f", 64 * MB)
        nn = h.namenode
        bid = fi.blocks[0].block_id
        # Under-replicated on paper, but neither queued nor deferred nor
        # covered by in-flight copies: the silent-stall shape.
        nn.block_info(bid).replicas.popitem()
        nn._needed[bid] = None
        checker = InvariantChecker(h.sim, system)
        assert checker.check("poke") > 0
        assert "repair_progress" in checker.violation_counts

    def test_heap_leak_flagged(self):
        h, system = make_system()
        nn = h.namenode
        for i in range(10_000):
            nn._repl_heap.append((0, i))
        checker = InvariantChecker(h.sim, system)
        assert checker.check("poke") > 0
        assert "heaps_bounded" in checker.violation_counts

    def test_orphaned_running_attempt_flagged(self):
        h, system = make_system()
        h.submit(num_maps=4, num_reduces=1)
        h.sim.run(until=h.sim.now + 30.0)
        jt = h.jobtracker
        attempts = [a for job in jt.active_jobs()
                    for task in job.maps + job.reduces
                    for a in task.running_attempts]
        assert attempts, "no running attempts to orphan"
        checker = InvariantChecker(h.sim, system)
        assert checker.check("before") == 0
        # Declare the tracker dead behind the scheduler's back: its still
        # RUNNING attempts are now orphans.
        jt._trackers[attempts[0].tracker.host].alive = False
        assert checker.check("after") > 0
        assert "no_orphan_attempts" in checker.violation_counts

    def test_inconsistent_tracer_stats_flagged(self):
        h, system = make_system()
        system.tracer = SimpleNamespace(
            stats=lambda: {"recorded": 10, "kept": 3, "dropped": 2})
        checker = InvariantChecker(h.sim, system)
        assert checker.check("poke") > 0
        assert "tracer_accounting" in checker.violation_counts

    def test_violations_counted_beyond_storage_cap(self):
        from repro.faults.invariants import MAX_STORED
        h, system = make_system()
        nn = h.namenode
        for i in range(MAX_STORED + 50):
            nn._host_blocks[h.hosts()[0]][10_000 + i] = None
        checker = InvariantChecker(h.sim, system)
        checker.check("poke")
        assert checker.violation_counts["block_map_bidirectional"] == \
            MAX_STORED + 50
        assert len(checker.violations) == MAX_STORED


class TestZeroImpact:
    def test_checker_off_and_on_payloads_identical(self):
        """The telemetry contract, extended to invariants: enabling the
        checker must not move a single simulation decision."""
        results = []
        for enabled in (False, True):
            spec = registry.build("baseline", seed=7, **SMOKE)
            spec.obs.check_invariants = enabled
            spec.obs.invariant_interval = 30.0 if enabled else None
            results.append(ScenarioRunner(spec).run())
        off, on = results
        assert on.invariants is not None and off.invariants is None
        assert on.invariants["violations"] == 0
        assert off.events == on.events
        assert off.payload() == on.payload()
