"""Tests for preemption traces and SRM/GridFTP staging."""

import pytest

from repro.grid import (
    GridSiteConfig,
    PreemptionEvent,
    PreemptionTrace,
    SitePolicy,
    SrmError,
    StorageElement,
    TraceDriver,
    TraceRecorder,
)
from repro.core import HOGConfig, HOGSystem
from repro.net import FabricConfig, NetworkFabric, NetworkTopology
from repro.sim import Simulator


def quiet_hog(target=6, seed=4):
    policy = SitePolicy(scheduling_delay_mean=5.0)  # no stochastic churn
    cfg = HOGConfig(
        sites=[GridSiteConfig(f"S{i}", f"site{i}.edu", 10, policy)
               for i in range(3)],
        negotiation_interval=10.0, seed=seed)
    sim = Simulator()
    hog = HOGSystem(sim, cfg)
    hog.start(target)
    hog.run_until_nodes(target)
    return sim, hog


class TestPreemptionTrace:
    def test_events_sorted_and_validated(self):
        t = PreemptionTrace([PreemptionEvent(50.0, "B"),
                             PreemptionEvent(10.0, "A")])
        assert [e.time for e in t.events] == [10.0, 50.0]
        assert t.total_victims() == 2

    def test_invalid_event_rejected(self):
        with pytest.raises(ValueError):
            PreemptionTrace([PreemptionEvent(-1.0, "A")])
        with pytest.raises(ValueError):
            PreemptionEvent(1.0, "A", count=0).validate()

    def test_json_roundtrip(self):
        t = PreemptionTrace([PreemptionEvent(10.0, "A", 2, zombie=True),
                             PreemptionEvent(20.0, "B")])
        back = PreemptionTrace.from_json(t.to_json())
        assert back.events == t.events

    def test_add_keeps_order(self):
        t = PreemptionTrace([PreemptionEvent(20.0, "A")])
        t.add(PreemptionEvent(5.0, "B"))
        assert t.events[0].site == "B"


class TestTraceDriver:
    def test_replay_fires_preemptions(self):
        sim, hog = quiet_hog()
        trace = PreemptionTrace([PreemptionEvent(30.0, "S0", count=1),
                                 PreemptionEvent(60.0, "S1", count=1)])
        driver = TraceDriver(sim, hog.factory, trace)
        driver.start()
        sim.run(until=sim.now + 100.0)
        assert hog.factory.counters.get("glideins_preempted") == 2
        assert driver.skipped == 0

    def test_replay_on_empty_site_skips(self):
        sim, hog = quiet_hog()
        trace = PreemptionTrace([PreemptionEvent(10.0, "NOPE", count=3)])
        driver = TraceDriver(sim, hog.factory, trace)
        driver.start()
        sim.run(until=sim.now + 50.0)
        assert driver.skipped == 3

    def test_double_start_rejected(self):
        sim, hog = quiet_hog()
        driver = TraceDriver(sim, hog.factory, PreemptionTrace())
        driver.start()
        with pytest.raises(RuntimeError):
            driver.start()

    def test_record_then_replay_same_counts(self):
        # Record a run with stochastic churn, then replay the trace on a
        # churn-free twin and get the same number of preemptions.
        policy = SitePolicy(preempt_rate=1 / 300.0, scheduling_delay_mean=5.0)
        cfg = HOGConfig(
            sites=[GridSiteConfig(f"S{i}", f"site{i}.edu", 10, policy)
                   for i in range(3)],
            negotiation_interval=10.0, seed=9)
        sim = Simulator()
        hog = HOGSystem(sim, cfg)
        hog.start(6)
        hog.run_until_nodes(6)
        recorder = TraceRecorder(sim, hog.factory)
        t0 = sim.now
        sim.run(until=t0 + 800.0)
        trace = recorder.detach()
        n_recorded = len(trace)
        assert n_recorded > 0
        # Shift times to be relative to the replay start.
        from repro.grid import PreemptionEvent as PE
        rel = PreemptionTrace([PE(e.time - t0, e.site, e.count, e.zombie)
                               for e in trace.events])

        sim2, hog2 = quiet_hog(target=6, seed=9)
        driver = TraceDriver(sim2, hog2.factory, rel)
        driver.start()
        sim2.run(until=sim2.now + 900.0)
        assert (hog2.factory.counters.get("glideins_preempted")
                + driver.skipped) == n_recorded


class TestStorageElement:
    def _se(self, n_servers=3):
        sim = Simulator()
        topo = NetworkTopology()
        fabric = NetworkFabric(sim, topo, FabricConfig(
            nic_bandwidth=100.0, site_uplink_bandwidth=1000.0,
            intra_site_latency=0.0, inter_site_latency=0.0))
        hosts = [f"gridftp{i}.fnal.gov" for i in range(n_servers)]
        return sim, StorageElement(sim, fabric, hosts, srm_latency=0.5)

    def test_register_and_stat(self):
        sim, se = self._se()
        se.register("/store/data.root", 1000.0)
        assert se.stat("/store/data.root").size == 1000.0
        with pytest.raises(SrmError):
            se.stat("/store/missing")

    def test_fetch_timing(self):
        sim, se = self._se(n_servers=1)
        se.register("/f", 1000.0)
        ev = se.fetch("/f", "worker.ucsd.edu")
        sim.run(until=ev)
        # 0.5s SRM + 1000B/100Bps = 10.5s
        assert sim.now == pytest.approx(10.5)
        assert ev.value == "gridftp0.fnal.gov"

    def test_fetch_missing_fails(self):
        sim, se = self._se()
        ev = se.fetch("/nope", "worker.ucsd.edu")
        sim.run()
        with pytest.raises(SrmError):
            ev.result()

    def test_load_balanced_across_servers(self):
        sim, se = self._se(n_servers=3)
        for i in range(6):
            se.register(f"/f{i}", 500.0)
        ev = se.stage_many([f"/f{i}" for i in range(6)],
                           "worker.ucsd.edu")
        sim.run(until=ev)
        # All three servers served (2 each under least-loaded referral).
        assert sorted(se.served.values()) == [2, 2, 2]

    def test_validation(self):
        sim = Simulator()
        topo = NetworkTopology()
        fabric = NetworkFabric(sim, topo)
        with pytest.raises(ValueError):
            StorageElement(sim, fabric, [])
        with pytest.raises(ValueError):
            StorageElement(sim, fabric, ["h.x.edu"], srm_latency=-1)
        se = StorageElement(sim, fabric, ["h.x.edu"])
        with pytest.raises(ValueError):
            se.register("/f", -5.0)
