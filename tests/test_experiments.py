"""Tests for the experiment drivers (small scales for speed)."""

import numpy as np
import pytest

from repro.experiments import calibration
from repro.experiments.common import (
    HogRunSettings,
    paper_sites_with_policy,
    run_facebook_on_cluster,
    run_facebook_on_hog,
)
from repro.experiments.fig4 import Fig4Point, Fig4Result, find_crossover
from repro.experiments.tables import render_table1, render_table2, render_table3


class TestCalibration:
    def test_paper_constants_recorded(self):
        assert calibration.PAPER_FIG4_NODE_COUNTS[-1] == 1101
        assert calibration.PAPER_TABLE4["5c"] == (6235.0, 252455.0)

    def test_policies_ordered_by_churn(self):
        stable = calibration.stable_policy()
        unstable = calibration.unstable_policy()
        assert unstable.preempt_rate > stable.preempt_rate
        assert unstable.burst_rate > stable.burst_rate

    def test_fabric_lan_faster_than_wan(self):
        fab = calibration.grid_fabric()
        assert fab.intra_site_latency < fab.inter_site_latency


class TestSitesHelper:
    def test_five_sites_with_headroom(self):
        sites = paper_sites_with_policy(calibration.stable_policy(), 100)
        assert len(sites) == 5
        assert sum(s.capacity for s in sites) >= 130  # 30% headroom

    def test_distinct_domains(self):
        sites = paper_sites_with_policy(calibration.stable_policy(), 10)
        assert len({s.domain for s in sites}) == 5


class TestTableRenderers:
    def test_table1_contains_all_bins(self):
        text = render_table1()
        for token in ("39%", "4800", "151-300"):
            assert token in text

    def test_table2_contains_reduce_counts(self):
        text = render_table2()
        assert "30" in text and "200" in text

    def test_table3_totals(self):
        text = render_table3()
        assert "100 map slots" in text
        assert "30 reduce slots" in text


class TestCrossover:
    def _pt(self, nodes, resp):
        return Fig4Point(nodes, [resp], [0.0])

    def test_simple_crossover(self):
        pts = [self._pt(40, 5000), self._pt(100, 3800), self._pt(200, 2000)]
        assert find_crossover(pts, 3900.0) == (40, 100)

    def test_no_crossover(self):
        pts = [self._pt(40, 5000), self._pt(100, 4500)]
        assert find_crossover(pts, 3900.0) is None

    def test_already_below_at_first_point(self):
        pts = [self._pt(40, 3000)]
        assert find_crossover(pts, 3900.0) == (0, 40)

    def test_fig4_result_table_renders(self):
        res = Fig4Result(3900.0, [self._pt(40, 5000), self._pt(100, 3000)], 1)
        text = res.to_table()
        assert "Figure 4" in text and "40" in text
        assert "Equivalent performance bracket: 40..100" in text


@pytest.mark.slow
class TestSmallEndToEnd:
    """Tiny-scale end-to-end runs of the experiment machinery."""

    def test_cluster_runner_completes(self):
        res = run_facebook_on_cluster(seed=1, scale=0.05)
        assert res.failed_jobs == 0
        assert res.response_time > 0
        # One job per bin at minimum scale.
        assert len(res.bin_responses) == 6

    def test_hog_runner_completes(self):
        res = run_facebook_on_hog(HogRunSettings(
            n_nodes=12, seed=1, scale=0.05,
            policy=calibration.stable_policy()))
        assert res.failed_jobs == 0
        assert res.node_area is not None and res.node_area > 0
        assert sum(res.locality.values()) > 0

    def test_hog_runner_with_moderate_churn_completes(self):
        res = run_facebook_on_hog(HogRunSettings(
            n_nodes=12, seed=2, scale=0.05,
            policy=calibration.default_grid_policy()))
        assert res.failed_jobs == 0

    def test_hog_degrades_gracefully_under_meltdown_churn(self):
        # The unstable policy on a *tiny* 12-node grid can genuinely lose
        # all replicas of a block during burst cascades (the paper avoids
        # this regime by running >= 40 nodes).  The required behaviour is
        # graceful: failed jobs are declared failed, the rest complete,
        # and the run terminates.
        res = run_facebook_on_hog(HogRunSettings(
            n_nodes=12, seed=2, scale=0.05,
            policy=calibration.unstable_policy()))
        total_jobs = res.failed_jobs + sum(
            len(v) for v in res.bin_responses.values())
        assert total_jobs == 7  # one job per bin at this scale, plus bin1
        # Depending on hash-seed-dependent tie-breaking, anywhere from 0
        # to all jobs may survive the meltdown; what matters is that every
        # job reached a terminal state and the run ended.
        assert res.response_time > 0


class TestCli:
    def test_tables_command(self, capsys):
        from repro.experiments.run import main
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table III" in out

    def test_bad_command_rejected(self):
        from repro.experiments.run import main
        with pytest.raises(SystemExit):
            main(["nonsense"])
