"""Tests for the HDFS balancer (§IV-C)."""

import pytest

from repro.hdfs import Balancer, hog_config
from repro.hdfs.config import MB

from helpers import HdfsHarness


def loaded_harness(n_loaded=3, n_empty=3, blocks=12, repl=2):
    """A cluster where only the first ``n_loaded`` nodes hold data."""
    h = HdfsHarness(n_nodes=n_loaded, n_sites=3,
                    config=hog_config(replication=repl),
                    disk_capacity=3e9)
    client = h.client()
    for i in range(blocks):
        client.preload_file(f"/f{i}", 64 * MB, replication=repl)
    # Now add empty nodes (elastic growth).
    for i in range(n_empty):
        h.add_datanode(f"fresh{i:02d}.site{i % 3}.edu")
    h.run(until=h.sim.now + 5.0)
    return h


class TestAnalysis:
    def test_utilization_reports_all_running_nodes(self):
        h = loaded_harness()
        b = Balancer(h.sim, h.namenode)
        util = b.utilization()
        assert len(util) == 6
        assert all(0.0 <= u <= 1.0 for u in util.values())

    def test_imbalance_detects_skew(self):
        h = loaded_harness()
        b = Balancer(h.sim, h.namenode, threshold=0.05)
        assert b.imbalance() > 0.05

    def test_imbalance_zero_when_empty(self):
        h = HdfsHarness(n_nodes=4)
        b = Balancer(h.sim, h.namenode)
        assert b.imbalance() == 0.0

    def test_invalid_threshold_rejected(self):
        h = HdfsHarness(n_nodes=2)
        with pytest.raises(ValueError):
            Balancer(h.sim, h.namenode, threshold=0.0)


class TestBalancing:
    def test_balancer_reduces_imbalance(self):
        h = loaded_harness()
        b = Balancer(h.sim, h.namenode, threshold=0.05)
        before = b.imbalance()
        ev = b.run()
        h.run(until=ev)
        report = ev.value
        assert report.moved_blocks > 0
        assert b.imbalance() < before

    def test_balancer_preserves_replica_counts(self):
        h = loaded_harness(repl=2)
        b = Balancer(h.sim, h.namenode, threshold=0.05)
        ev = b.run()
        h.run(until=ev)
        for bid in list(h.namenode._blocks):
            info = h.namenode.block_info(bid)
            assert info.live_replica_count == 2

    def test_balancer_never_co_locates_replicas(self):
        h = loaded_harness(repl=2)
        ev = Balancer(h.sim, h.namenode, threshold=0.05).run()
        h.run(until=ev)
        for bid in list(h.namenode._blocks):
            info = h.namenode.block_info(bid)
            # replicas is a set of distinct hosts by construction; check
            # the datanodes agree (no double-stored block).
            holders = [x for x, dn in h.datanodes.items() if dn.has_block(bid)]
            assert sorted(holders) == sorted(info.replicas)

    def test_balanced_cluster_is_noop(self):
        h = HdfsHarness(n_nodes=4, n_sites=2, disk_capacity=3e9)
        client = h.client()
        for i in range(4):
            client.preload_file(f"/f{i}", 64 * MB, replication=4)
        b = Balancer(h.sim, h.namenode, threshold=0.10)
        ev = b.run()
        h.run(until=ev)
        report = ev.value
        assert report.converged
        assert report.moved_blocks == 0

    def test_report_repr_readable(self):
        h = HdfsHarness(n_nodes=2)
        ev = Balancer(h.sim, h.namenode).run()
        h.run(until=ev)
        assert "BalancerReport" in repr(ev.value)


class TestJointStreamingMoves:
    """Balancer migrations are rated end-to-end over source disk read,
    network, and target disk write (one joint demand on the shared
    channel) — not just the receive side."""

    SLOW_READ = 5e6  # bytes/s: far below every other constraint

    def _one_loaded_node(self, read_rate):
        """One datanode holding 4 single-replica blocks on a slow-read
        disk, plus one empty datanode in another site."""
        h = HdfsHarness(n_nodes=0, n_sites=2,
                        config=hog_config(replication=1),
                        disk_capacity=1e9, shared_channel=True)
        h.add_datanode("loaded00.site0.edu", read_rate=read_rate,
                       write_rate=500e6)
        client = h.client()
        for i in range(4):
            client.preload_file(f"/f{i}", 64 * MB, replication=1)
        h.add_datanode("fresh00.site1.edu", read_rate=500e6,
                       write_rate=500e6)
        h.run(until=h.sim.now + 5.0)
        return h

    def test_moves_are_source_read_limited(self):
        """Before/after regression: with the source disk in the demand's
        constraint set, a migration can go no faster than the source can
        read.  (The pre-fix behaviour rated moves by network + target
        write only — ~14x faster here.)"""
        h = self._one_loaded_node(self.SLOW_READ)
        b = Balancer(h.sim, h.namenode, threshold=0.05)
        start = h.sim.now
        ev = b.run()
        h.run(until=ev)
        report = ev.value
        elapsed = h.sim.now - start
        assert report.moved_blocks > 0
        min_time = report.moved_bytes / self.SLOW_READ
        assert elapsed >= 0.95 * min_time, \
            f"{report.moved_blocks} moves in {elapsed:.1f}s; source disk " \
            f"alone needs {min_time:.1f}s — moves are not read-constrained"

    def test_fast_disks_restore_fast_moves(self):
        """The same migration plan on fast disks completes an order of
        magnitude sooner — the joint constraint, not overhead, sets the
        pace."""
        h = self._one_loaded_node(500e6)
        b = Balancer(h.sim, h.namenode, threshold=0.05)
        start = h.sim.now
        ev = b.run()
        h.run(until=ev)
        report = ev.value
        elapsed = h.sim.now - start
        assert report.moved_blocks > 0
        assert elapsed < 0.5 * (report.moved_bytes / self.SLOW_READ)

    def test_moves_share_the_source_disk_with_live_reads(self):
        """A concurrent HDFS read stream from the loaded node drains
        through the same read constraint, so the balancer's moves and the
        live traffic split the disk fairly (both finish later than either
        would alone)."""
        h = self._one_loaded_node(20e6)
        reader_ev = h.fabric.serve_stream(
            "loaded00.site0.edu", "client.site1.edu", 256 * MB,
            h.datanodes["loaded00.site0.edu"].disk)
        b = Balancer(h.sim, h.namenode, threshold=0.05)
        start = h.sim.now
        ev = b.run()
        h.run(until=ev)
        elapsed = h.sim.now - start
        report = ev.value
        # Alone, the moves need moved_bytes/20e6; sharing with the 256 MB
        # read stream they must take strictly longer than that.
        assert report.moved_blocks > 0
        assert elapsed > report.moved_bytes / 20e6
        h.run(until=reader_ev)
        assert reader_ev.triggered

    def test_shared_channel_balancer_preserves_replicas(self):
        """Replica-count invariants survive the joint streaming path."""
        h = HdfsHarness(n_nodes=3, n_sites=3,
                        config=hog_config(replication=2),
                        disk_capacity=3e9, shared_channel=True)
        client = h.client()
        for i in range(12):
            client.preload_file(f"/f{i}", 64 * MB, replication=2)
        for i in range(3):
            h.add_datanode(f"fresh{i:02d}.site{i % 3}.edu")
        h.run(until=h.sim.now + 5.0)
        ev = Balancer(h.sim, h.namenode, threshold=0.05).run()
        h.run(until=ev)
        assert ev.value.moved_blocks > 0
        for bid in list(h.namenode._blocks):
            info = h.namenode.block_info(bid)
            assert info.live_replica_count == 2
