"""Tests for the HDFS balancer (§IV-C)."""

import pytest

from repro.hdfs import Balancer, hog_config
from repro.hdfs.config import MB

from helpers import HdfsHarness


def loaded_harness(n_loaded=3, n_empty=3, blocks=12, repl=2):
    """A cluster where only the first ``n_loaded`` nodes hold data."""
    h = HdfsHarness(n_nodes=n_loaded, n_sites=3,
                    config=hog_config(replication=repl),
                    disk_capacity=3e9)
    client = h.client()
    for i in range(blocks):
        client.preload_file(f"/f{i}", 64 * MB, replication=repl)
    # Now add empty nodes (elastic growth).
    for i in range(n_empty):
        h.add_datanode(f"fresh{i:02d}.site{i % 3}.edu")
    h.run(until=h.sim.now + 5.0)
    return h


class TestAnalysis:
    def test_utilization_reports_all_running_nodes(self):
        h = loaded_harness()
        b = Balancer(h.sim, h.namenode)
        util = b.utilization()
        assert len(util) == 6
        assert all(0.0 <= u <= 1.0 for u in util.values())

    def test_imbalance_detects_skew(self):
        h = loaded_harness()
        b = Balancer(h.sim, h.namenode, threshold=0.05)
        assert b.imbalance() > 0.05

    def test_imbalance_zero_when_empty(self):
        h = HdfsHarness(n_nodes=4)
        b = Balancer(h.sim, h.namenode)
        assert b.imbalance() == 0.0

    def test_invalid_threshold_rejected(self):
        h = HdfsHarness(n_nodes=2)
        with pytest.raises(ValueError):
            Balancer(h.sim, h.namenode, threshold=0.0)


class TestBalancing:
    def test_balancer_reduces_imbalance(self):
        h = loaded_harness()
        b = Balancer(h.sim, h.namenode, threshold=0.05)
        before = b.imbalance()
        ev = b.run()
        h.run(until=ev)
        report = ev.value
        assert report.moved_blocks > 0
        assert b.imbalance() < before

    def test_balancer_preserves_replica_counts(self):
        h = loaded_harness(repl=2)
        b = Balancer(h.sim, h.namenode, threshold=0.05)
        ev = b.run()
        h.run(until=ev)
        for bid in list(h.namenode._blocks):
            info = h.namenode.block_info(bid)
            assert info.live_replica_count == 2

    def test_balancer_never_co_locates_replicas(self):
        h = loaded_harness(repl=2)
        ev = Balancer(h.sim, h.namenode, threshold=0.05).run()
        h.run(until=ev)
        for bid in list(h.namenode._blocks):
            info = h.namenode.block_info(bid)
            # replicas is a set of distinct hosts by construction; check
            # the datanodes agree (no double-stored block).
            holders = [x for x, dn in h.datanodes.items() if dn.has_block(bid)]
            assert sorted(holders) == sorted(info.replicas)

    def test_balanced_cluster_is_noop(self):
        h = HdfsHarness(n_nodes=4, n_sites=2, disk_capacity=3e9)
        client = h.client()
        for i in range(4):
            client.preload_file(f"/f{i}", 64 * MB, replication=4)
        b = Balancer(h.sim, h.namenode, threshold=0.10)
        ev = b.run()
        h.run(until=ev)
        report = ev.value
        assert report.converged
        assert report.moved_blocks == 0

    def test_report_repr_readable(self):
        h = HdfsHarness(n_nodes=2)
        ev = Balancer(h.sim, h.namenode).run()
        h.run(until=ev)
        assert "BalancerReport" in repr(ev.value)
