"""Tests for the local disk model (capacity, timed I/O, wipe/probe)."""

import pytest

from repro.sim import Simulator
from repro.storage import Disk, DiskFullError, DiskIOError


def make_disk(capacity=1000.0, read_rate=100.0, write_rate=50.0):
    sim = Simulator()
    return sim, Disk(sim, "n1.unl.edu", capacity, read_rate, write_rate)


class TestCapacity:
    def test_allocate_and_free(self):
        sim, disk = make_disk()
        disk.allocate(400.0, "hdfs")
        assert disk.used == 400.0
        assert disk.free == 600.0

    def test_overflow_raises(self):
        sim, disk = make_disk()
        disk.allocate(900.0, "hdfs")
        with pytest.raises(DiskFullError):
            disk.allocate(200.0, "intermediate")

    def test_release_by_label(self):
        sim, disk = make_disk()
        disk.allocate(300.0, "hdfs")
        disk.allocate(200.0, "intermediate")
        disk.release(100.0, "hdfs")
        assert disk.usage_by_label() == {"hdfs": 200.0, "intermediate": 200.0}

    def test_release_all_label(self):
        sim, disk = make_disk()
        disk.allocate(300.0, "intermediate")
        freed = disk.release_all("intermediate")
        assert freed == 300.0
        assert disk.used == 0.0

    def test_over_release_rejected(self):
        sim, disk = make_disk()
        disk.allocate(100.0, "hdfs")
        with pytest.raises(ValueError):
            disk.release(200.0, "hdfs")

    def test_negative_allocate_rejected(self):
        sim, disk = make_disk()
        with pytest.raises(ValueError):
            disk.allocate(-5.0)

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Disk(sim, "x", 0.0)


class TestTimedIO:
    def test_read_duration(self):
        sim, disk = make_disk(read_rate=100.0)
        ev = disk.read(500.0)
        sim.run(until=ev)
        assert sim.now == pytest.approx(5.0)

    def test_write_duration(self):
        sim, disk = make_disk(write_rate=50.0)
        ev = disk.write(500.0)
        sim.run(until=ev)
        assert sim.now == pytest.approx(10.0)

    def test_concurrent_reads_share_bandwidth(self):
        sim, disk = make_disk(read_rate=100.0)
        e1 = disk.read(250.0)
        e2 = disk.read(250.0)
        sim.run(until=sim.all_of([e1, e2]))
        assert sim.now == pytest.approx(5.0)

    def test_reads_and_writes_are_independent_channels(self):
        sim, disk = make_disk(read_rate=100.0, write_rate=100.0)
        e1 = disk.read(500.0)
        e2 = disk.write(500.0)
        sim.run(until=sim.all_of([e1, e2]))
        assert sim.now == pytest.approx(5.0)

    def test_zero_byte_io_instant(self):
        sim, disk = make_disk()
        ev = disk.read(0.0)
        sim.run(until=ev)
        assert sim.now == 0.0


class TestWipe:
    def test_probe_healthy_then_wiped(self):
        sim, disk = make_disk()
        assert disk.probe() is True
        disk.wipe()
        assert disk.probe() is False
        assert not disk.alive

    def test_wipe_clears_usage(self):
        sim, disk = make_disk()
        disk.allocate(500.0, "hdfs")
        disk.wipe()
        assert disk.used == 0.0

    def test_io_after_wipe_fails(self):
        sim, disk = make_disk()
        disk.wipe()
        caught = []

        def proc(sim):
            try:
                yield disk.read(100.0)
            except DiskIOError as exc:
                caught.append(exc)

        sim.process(proc(sim))
        sim.run()
        assert len(caught) == 1

    def test_allocate_after_wipe_fails(self):
        sim, disk = make_disk()
        disk.wipe()
        with pytest.raises(DiskIOError):
            disk.allocate(10.0)

    def test_inflight_io_fails_on_wipe(self):
        sim, disk = make_disk(read_rate=100.0)
        ev = disk.read(1000.0)
        caught = []

        def watcher(sim):
            try:
                yield ev
            except DiskIOError:
                caught.append(sim.now)

        def wiper(sim):
            yield sim.timeout(3.0)
            disk.wipe()

        sim.process(watcher(sim))
        sim.process(wiper(sim))
        sim.run()
        assert caught == [3.0]
