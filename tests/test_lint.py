"""Fast-tier wiring for the determinism lint (tools/lint_no_set_iteration).

The PR 2 invariant — no scheduling/placement/replication decision may
depend on set iteration order — is enforced mechanically: any new set
iteration in ``sim/``, ``net/``, ``mapreduce/``, or ``hdfs/`` fails this
test unless the line carries an audited ``# set-order-ok`` waiver.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from lint_no_set_iteration import lint_tree  # noqa: E402


def test_no_set_iteration_in_decision_modules():
    messages = lint_tree(REPO / "src")
    assert not messages, "\n".join(messages)
