"""Fast-tier wiring for the mechanical determinism lints (tools/).

Two invariants are enforced on every decision-path module:

- **No set iteration** (PR 2): no scheduling/placement/replication
  decision may depend on set iteration order.  Waiver: an audited
  ``# set-order-ok`` comment.
- **No wall-clock reads** (ISSUE 8): simulated components take time from
  ``sim.now`` only; ``time.time()``/``perf_counter()``/``datetime.now()``
  must never leak into ``sim/``, ``net/``, ``mapreduce/``, ``hdfs/``,
  ``grid/``, or ``storage/``.  Waiver: ``# wallclock-ok``.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from lint_no_set_iteration import lint_tree as lint_sets  # noqa: E402
from lint_no_wallclock import lint_tree as lint_wallclock  # noqa: E402


def test_no_set_iteration_in_decision_modules():
    messages = lint_sets(REPO / "src")
    assert not messages, "\n".join(messages)


def test_no_wallclock_in_decision_modules():
    messages = lint_wallclock(REPO / "src")
    assert not messages, "\n".join(messages)


def test_wallclock_lint_catches_and_waives(tmp_path):
    """The lint flags each forbidden form and honours the waiver."""
    sys.path.insert(0, str(REPO / "tools"))
    from lint_no_wallclock import lint_file
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import time\n"
        "from time import perf_counter\n"
        "import datetime\n"
        "a = time.time()\n"
        "b = perf_counter()\n"
        "c = datetime.datetime.now()\n"
        "d = time.monotonic()  # wallclock-ok\n"
        "e = obj.now()\n")
    findings = lint_file(bad)
    flagged_lines = sorted(line for line, _ in findings)
    assert flagged_lines == [4, 5, 6]
