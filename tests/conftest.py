"""Make tests/ importable as a flat namespace and relax hypothesis
deadlines (simulation-heavy examples can exceed the default 200 ms on a
loaded machine; correctness does not depend on wall time)."""
import sys
from pathlib import Path

from hypothesis import settings

sys.path.insert(0, str(Path(__file__).parent))

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")
