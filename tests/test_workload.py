"""Tests for the Facebook workload generator (Tables I and II)."""

import numpy as np
import pytest

from repro.workload import (
    FACEBOOK_BINS,
    MEAN_INTERARRIVAL,
    TRUNCATED_REDUCES,
    LoadgenParams,
    benchmark_job_mix,
    build_facebook_schedule,
    sample_interarrivals,
    truncated_bins,
)


class TestTable1:
    def test_nine_bins(self):
        assert len(FACEBOOK_BINS) == 9

    def test_bin_rows_verbatim(self):
        # (bin, %jobs, #maps, #jobs) exactly as printed in Table I.
        expected = [
            (1, 39.0, 1, 38), (2, 16.0, 2, 16), (3, 14.0, 10, 14),
            (4, 9.0, 50, 8), (5, 6.0, 100, 6), (6, 6.0, 200, 6),
            (7, 4.0, 400, 4), (8, 4.0, 800, 4), (9, 3.0, 4800, 4),
        ]
        for b, (bid, pct, maps, jobs) in zip(FACEBOOK_BINS, expected):
            assert b.bin_id == bid
            assert b.percent_at_facebook == pct
            assert b.maps_in_benchmark == maps
            assert b.jobs_in_benchmark == jobs

    def test_percentages_sum_to_101(self):
        # The printed table sums to 101% (rounding in the original).
        assert sum(b.percent_at_facebook for b in FACEBOOK_BINS) == 101.0

    def test_first_six_bins_cover_about_89_percent(self):
        # "which cover about 89% of the jobs at the Facebook production
        # cluster" (the printed percentages add to 90 due to rounding).
        total = sum(b.percent_at_facebook for b in truncated_bins())
        assert abs(total - 89.0) <= 1.0


class TestTable2:
    def test_reduce_counts_verbatim(self):
        assert TRUNCATED_REDUCES == {1: 1, 2: 1, 3: 5, 4: 10, 5: 20, 6: 30}

    def test_truncated_bins_have_reduces(self):
        for b in truncated_bins():
            assert b.reduces_in_benchmark == TRUNCATED_REDUCES[b.bin_id]

    def test_reduces_non_decreasing_with_maps(self):
        # "They number in a non-decreasing pattern compared to job's map
        # tasks."
        bins = truncated_bins()
        reduces = [b.reduces_in_benchmark for b in bins]
        assert reduces == sorted(reduces)

    def test_max_300_maps(self):
        # "we exclude those jobs with more than 300 map tasks"
        assert all(b.maps_in_benchmark <= 300 for b in truncated_bins())


class TestJobMix:
    def test_88_jobs_total(self):
        assert len(benchmark_job_mix()) == 88

    def test_mix_counts_per_bin(self):
        mix = benchmark_job_mix()
        counts = {}
        for b in mix:
            counts[b.bin_id] = counts.get(b.bin_id, 0) + 1
        assert counts == {1: 38, 2: 16, 3: 14, 4: 8, 5: 6, 6: 6}


class TestSchedule:
    def test_schedule_has_88_jobs(self):
        sched = build_facebook_schedule(np.random.default_rng(0))
        assert len(sched) == 88

    def test_schedule_duration_about_21_minutes(self):
        # 88 jobs x 14 s mean => ~1232 s =~ 21 min.  Check the mean over
        # seeds is in a sane band.
        durations = [build_facebook_schedule(np.random.default_rng(s)).duration
                     for s in range(20)]
        mean = np.mean(durations)
        assert 900 < mean < 1600

    def test_interarrival_mean(self):
        rng = np.random.default_rng(42)
        gaps = sample_interarrivals(20000, rng)
        assert abs(np.mean(gaps) - MEAN_INTERARRIVAL) < 0.5

    def test_jobs_sorted_by_time(self):
        sched = build_facebook_schedule(np.random.default_rng(1))
        times = [j.submit_time for j in sched.jobs]
        assert times == sorted(times)

    def test_shared_inputs_per_bin(self):
        sched = build_facebook_schedule(np.random.default_rng(2))
        assert len(sched.inputs) == 6
        assert sched.inputs["/benchmark/input-bin6"] == 200
        assert sched.inputs["/benchmark/input-bin1"] == 1

    def test_specs_match_table2(self):
        sched = build_facebook_schedule(np.random.default_rng(3))
        for job in sched.jobs:
            expected_maps = {1: 1, 2: 2, 3: 10, 4: 50, 5: 100, 6: 200}
            assert job.spec.num_maps == expected_maps[job.bin_id]
            assert job.spec.num_reduces == TRUNCATED_REDUCES[job.bin_id]

    def test_scale_shrinks_mix_proportionally(self):
        sched = build_facebook_schedule(np.random.default_rng(4), scale=0.5)
        assert len(sched.jobs_of_bin(1)) == 19
        assert len(sched.jobs_of_bin(6)) == 3
        # Minimum one job per bin even at tiny scale.
        tiny = build_facebook_schedule(np.random.default_rng(4), scale=0.01)
        for b in range(1, 7):
            assert len(tiny.jobs_of_bin(b)) == 1

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_facebook_schedule(np.random.default_rng(0), scale=0.0)

    def test_job_order_is_shuffled(self):
        # Bins must be interleaved, not submitted in bin order.
        sched = build_facebook_schedule(np.random.default_rng(5))
        bin_ids = [j.bin_id for j in sched.jobs]
        assert bin_ids != sorted(bin_ids)

    def test_deterministic_given_seed(self):
        s1 = build_facebook_schedule(np.random.default_rng(9))
        s2 = build_facebook_schedule(np.random.default_rng(9))
        assert [(j.submit_time, j.spec.name) for j in s1.jobs] == \
            [(j.submit_time, j.spec.name) for j in s2.jobs]

    def test_loadgen_params_validation(self):
        with pytest.raises(ValueError):
            LoadgenParams(map_cpu_per_block=-1).validate()


class TestPublicApi:
    """The workload package's documented surface (regression: ``sample_interarrivals``
    was missing from ``facebook.__all__`` even though the package re-exported it)."""

    def test_package_all_names_resolve(self):
        import repro.workload as workload
        for name in workload.__all__:
            assert hasattr(workload, name), f"workload.__all__ exports missing {name}"

    def test_facebook_module_all_names_resolve(self):
        import repro.workload.facebook as facebook
        for name in facebook.__all__:
            assert hasattr(facebook, name), f"facebook.__all__ exports missing {name}"

    def test_sample_interarrivals_exported_everywhere(self):
        import repro.workload as workload
        import repro.workload.facebook as facebook
        assert "sample_interarrivals" in facebook.__all__
        assert "sample_interarrivals" in workload.__all__
        assert workload.sample_interarrivals is facebook.sample_interarrivals

    def test_sample_interarrivals_behaviour(self):
        draws = sample_interarrivals(500, np.random.default_rng(3))
        assert len(draws) == 500
        assert all(d >= 0 for d in draws)
        # Exponential with mean 14 s (Table I text): the sample mean of 500
        # draws lands well inside a loose band.
        assert 10.0 < float(np.mean(draws)) < 19.0
