"""Tests for the dedicated cluster (Table III) and HOD baselines."""

import pytest

from repro.baselines import (
    DedicatedCluster,
    DedicatedClusterConfig,
    HODConfig,
    HODRunner,
    NodeGroup,
    table3_config,
)
from repro.mapreduce import JobSpec, JobStatus
from repro.sim import Simulator


class TestTable3Config:
    def test_exact_paper_shape(self):
        cfg = table3_config()
        assert cfg.total_nodes == 30
        assert cfg.total_map_slots == 100   # "1 map slot per core", 100 CPUs
        assert cfg.total_reduce_slots == 30  # "1 reduce slot for each node"
        assert cfg.groups[0].count == 20 and cfg.groups[0].map_slots == 4
        assert cfg.groups[1].count == 10 and cfg.groups[1].map_slots == 2

    def test_stock_hadoop_settings(self):
        cfg = table3_config()
        assert cfg.hdfs.replication == 3
        assert cfg.hdfs.heartbeat_timeout == 15 * 60.0
        assert cfg.mr.tracker_expiry == 600.0

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            DedicatedClusterConfig(groups=[]).validate()

    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            NodeGroup(count=1, map_slots=-1, reduce_slots=1).validate()


class TestDedicatedCluster:
    def test_single_rack(self):
        sim = Simulator()
        cluster = DedicatedCluster(sim)
        sim.run(until=10.0)
        # All workers resolve to one site ("configured as one rack").
        sites = {cluster.topology.site_of(h) for h in cluster.tasktrackers}
        assert len(sites) == 1

    def test_all_nodes_registered(self):
        sim = Simulator()
        cluster = DedicatedCluster(sim)
        sim.run(until=10.0)
        assert cluster.namenode.num_live_datanodes() == 30
        assert cluster.jobtracker.live_tracker_count() == 30

    def test_job_completes(self):
        sim = Simulator()
        cluster = DedicatedCluster(sim)
        sim.run(until=5.0)
        cluster.preload_input("/in", n_blocks=8)
        job = cluster.submit(JobSpec("j", 8, 4, "/in", map_cpu_per_block=5.0))
        cluster.run_until_jobs_done([job])
        assert job.status == JobStatus.SUCCEEDED

    def test_heterogeneous_slots_in_effect(self):
        sim = Simulator()
        cluster = DedicatedCluster(sim)
        slots = sorted({tt.map_slots for tt in cluster.tasktrackers.values()})
        assert slots == [2, 4]


class TestHOD:
    def test_config_validation(self):
        HODConfig().validate()
        with pytest.raises(ValueError):
            HODConfig(nodes_per_request=0).validate()

    def test_single_job_overheads_counted(self):
        runner = HODRunner(HODConfig(nodes_per_request=4,
                                     allocation_delay_mean=30.0,
                                     construction_time=60.0), seed=1)
        res = runner.run_job(JobSpec("j", 4, 2, "/in", map_cpu_per_block=5.0))
        assert res.job_time > 0
        assert res.staging_time > 0          # real timed HDFS writes
        assert res.construction_time == 60.0
        assert res.response_time > res.job_time
        assert 0.0 < res.overhead_fraction < 1.0

    def test_reconstruction_paid_per_job(self):
        runner = HODRunner(HODConfig(nodes_per_request=4,
                                     construction_time=60.0), seed=2)
        specs = [JobSpec(f"j{i}", 2, 1, "/in", map_cpu_per_block=2.0)
                 for i in range(3)]
        results = runner.run_schedule(specs)
        assert len(results) == 3
        # Every request pays the full construction time again.
        assert all(r.construction_time == 60.0 for r in results)
