"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import StepSeries
from repro.net import (
    DnsSiteResolver,
    FabricConfig,
    NetworkFabric,
    NetworkTopology,
)
from repro.sim import RngRegistry, Simulator
from repro.storage import Disk


hostnames = st.from_regex(r"[a-z]{1,8}\.[a-z]{1,8}\.(edu|gov|org)",
                          fullmatch=True)


class TestTopologyProperties:
    @given(st.lists(hostnames, min_size=1, max_size=30))
    def test_every_host_lands_in_exactly_one_site(self, hosts):
        topo = NetworkTopology(DnsSiteResolver())
        for h in hosts:
            topo.add_host(h)
        seen = []
        for site in topo.sites():
            seen.extend(topo.hosts_in(site))
        assert sorted(seen) == sorted(set(hosts))

    @given(hostnames, hostnames)
    def test_same_site_is_symmetric(self, a, b):
        topo = NetworkTopology(DnsSiteResolver())
        assert topo.same_site(a, b) == topo.same_site(b, a)

    @given(hostnames, hostnames)
    def test_distance_symmetric_and_consistent(self, a, b):
        topo = NetworkTopology(DnsSiteResolver())
        d = topo.distance(a, b)
        assert d == topo.distance(b, a)
        if a == b:
            assert d == 0
        else:
            assert d in (2, 4)

    @given(st.lists(hostnames, min_size=1, max_size=20, unique=True))
    def test_resolution_count_equals_unique_hosts(self, hosts):
        topo = NetworkTopology(DnsSiteResolver())
        for h in hosts:
            topo.add_host(h)
            topo.add_host(h)  # idempotent
        assert topo.resolutions == len(hosts)


class TestStepSeriesProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=1000.0),
                              st.floats(min_value=0.0, max_value=1e6)),
                    min_size=1, max_size=40))
    def test_area_additivity(self, increments):
        """integrate(a,c) == integrate(a,b) + integrate(b,c)."""
        s = StepSeries(initial=1.0)
        t = 0.0
        for dt, v in increments:
            t += dt
            s.record(t, v)
        end = t + 10.0
        mid = end / 2
        whole = s.integrate(0.0, end)
        parts = s.integrate(0.0, mid) + s.integrate(mid, end)
        assert whole == pytest.approx(parts, rel=1e-9, abs=1e-6)

    @given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=1000.0),
                              st.floats(min_value=0.0, max_value=100.0)),
                    min_size=1, max_size=40))
    def test_area_bounded_by_min_max(self, increments):
        s = StepSeries(initial=50.0)
        t = 0.0
        for dt, v in increments:
            t += dt
            s.record(t, v)
        end = t + 1.0
        area = s.integrate(0.0, end)
        assert s.min() * end - 1e-6 <= area <= s.max() * end + 1e-6

    @given(st.floats(min_value=0.0, max_value=1e5),
           st.floats(min_value=1e-3, max_value=1e5))
    def test_constant_series_area_exact(self, value, duration):
        s = StepSeries(initial=value)
        assert s.integrate(0.0, duration) == pytest.approx(value * duration)


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31),
           st.text(alphabet="abcdefgh", min_size=1, max_size=8))
    def test_same_seed_same_stream(self, seed, name):
        a = RngRegistry(seed).stream(name).random(8)
        b = RngRegistry(seed).stream(name).random(8)
        assert np.array_equal(a, b)

    @given(st.integers(min_value=0, max_value=2**31))
    def test_different_names_differ(self, seed):
        reg = RngRegistry(seed)
        a = reg.stream("alpha").random(8)
        b = reg.stream("beta").random(8)
        assert not np.array_equal(a, b)


class TestFabricProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4),
                              st.floats(min_value=1.0, max_value=1e4)),
                    min_size=1, max_size=12))
    def test_all_transfers_complete_and_conserve_time(self, transfers):
        """Every transfer completes, and no transfer beats its uncontended
        lower bound."""
        sim = Simulator()
        topo = NetworkTopology(DnsSiteResolver())
        fabric = NetworkFabric(sim, topo, FabricConfig(
            nic_bandwidth=100.0, site_uplink_bandwidth=150.0,
            intra_site_latency=0.0, inter_site_latency=0.0))
        events = []
        for si, di, size in transfers:
            src = f"n{si}.s{si % 3}.edu"
            dst = f"m{di}.t{di % 3}.edu"
            lower = fabric.transfer_time_estimate(src, dst, size)
            events.append((fabric.transfer(src, dst, size), lower))
        sim.run()
        for ev, lower in events:
            assert ev.processed and ev.ok
        # Completion time can never beat the uncontended estimate.
        assert sim.now >= max(lower for _, lower in events) - 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=12),
           st.floats(min_value=10.0, max_value=1e4))
    def test_fair_share_n_equal_flows(self, n, size):
        """n identical flows through one NIC finish together at n x the
        single-flow duration."""
        sim = Simulator()
        topo = NetworkTopology(DnsSiteResolver())
        fabric = NetworkFabric(sim, topo, FabricConfig(
            nic_bandwidth=100.0, site_uplink_bandwidth=1e9,
            intra_site_latency=0.0, inter_site_latency=0.0))
        events = [fabric.transfer("src.a.edu", f"d{i}.a.edu", size)
                  for i in range(n)]
        sim.run()
        assert all(ev.ok for ev in events)
        assert sim.now == pytest.approx(n * size / 100.0, rel=1e-6)


class TestDiskProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                    max_size=20))
    def test_allocate_release_roundtrip(self, sizes):
        sim = Simulator()
        disk = Disk(sim, "h", capacity=1e9)
        for i, n in enumerate(sizes):
            disk.allocate(n, f"l{i}")
        assert disk.used == pytest.approx(sum(sizes))
        for i, n in enumerate(sizes):
            disk.release(n, f"l{i}")
        assert disk.used == pytest.approx(0.0, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=10.0, max_value=1e4), min_size=1,
                    max_size=10))
    def test_concurrent_reads_total_time_is_total_bytes_over_rate(self, sizes):
        """Work conservation: the read channel drains sum(bytes)/rate when
        all reads start together."""
        sim = Simulator()
        disk = Disk(sim, "h", capacity=1e9, read_rate=100.0)
        events = [disk.read(n) for n in sizes]
        done = sim.all_of(events)
        sim.run(until=done)  # (stale timers may tick after completion)
        assert all(ev.ok for ev in events)
        assert sim.now == pytest.approx(sum(sizes) / 100.0, rel=1e-6)
