"""Fault-engine tests: plan round-trips/validation, injector execution
per fault kind against a live HOG system, and byte-identical fault
streams under identical seeds."""

import json

import numpy as np
import pytest

from repro.core import HOGConfig, HOGSystem
from repro.faults import FaultEvent, FaultPlan, Injector
from repro.grid import GridSiteConfig, SitePolicy
from repro.hdfs import hog_config
from repro.sim import Simulator


def make_hog(target=6, replication=3, seed=2, slots=10, disk_check=None):
    """A small churn-free 3-site HOG cluster, ramped to ``target``."""
    policy = SitePolicy(scheduling_delay_mean=5.0)
    cfg = HOGConfig(
        sites=[GridSiteConfig(f"S{i}", f"site{i}.edu", slots, policy)
               for i in range(3)],
        hdfs=hog_config(replication=replication,
                        disk_check_interval=disk_check),
        negotiation_interval=10.0,
        seed=seed,
    )
    sim = Simulator()
    hog = HOGSystem(sim, cfg)
    hog.start(target)
    hog.run_until_nodes(target)
    return sim, hog


def run_plan(sim, hog, plan, horizon):
    """Arm an injector on ``plan`` and advance ``horizon`` sim-seconds."""
    inj = Injector(sim, hog, plan)
    inj.start()
    sim.run(until=sim.now + horizon)
    return inj


def site_named(hog, name):
    return next(s for s in hog.sites if s.name == name)


def hosts_at(hog, domain):
    return sorted(h for h in hog.nodes if h.endswith(domain))


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan([
            FaultEvent(300.0, "site_blackout", "S0", duration=450.0,
                       mode="outage"),
            FaultEvent(120.0, "wan_degrade", "S1", duration=600.0,
                       value=0.15),
            FaultEvent(50.0, "node_wave", "S2", count=3, mode="zombie"),
            FaultEvent(80.0, "disk_fail", "S0", count=1),
            FaultEvent(10.0, "straggler", "S1", duration=90.0, count=2,
                       value=4.0),
        ])
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_list(plan.to_list()) == plan
        # The serialized form is plain JSON data, not repr soup.
        assert json.loads(plan.to_json())[0]["kind"] == "straggler"

    def test_events_sorted_by_time(self):
        plan = FaultPlan([
            FaultEvent(200.0, "disk_fail", "S0", count=1),
            FaultEvent(10.0, "node_wave", "S1", count=1),
        ])
        assert [ev.time for ev in plan.events] == [10.0, 200.0]

    @pytest.mark.parametrize("event", [
        FaultEvent(0.0, "meteor_strike", "S0"),
        FaultEvent(-1.0, "disk_fail", "S0", count=1),
        FaultEvent(0.0, "disk_fail", ""),
        FaultEvent(0.0, "site_blackout", "S0", duration=0.0),
        FaultEvent(0.0, "site_blackout", "S0", duration=60.0, mode="melt"),
        FaultEvent(0.0, "wan_degrade", "S0", duration=60.0, value=1.5),
        FaultEvent(0.0, "node_wave", "S0", count=0),
        FaultEvent(0.0, "straggler", "S0", duration=60.0, count=1,
                   value=1.0),
    ])
    def test_malformed_events_rejected(self, event):
        with pytest.raises(ValueError):
            FaultPlan([event])

    def test_fuzz_is_rng_deterministic(self):
        sites = ["S0", "S1", "S2"]
        a = FaultPlan.fuzz(np.random.default_rng(5), sites, 1000.0)
        b = FaultPlan.fuzz(np.random.default_rng(5), sites, 1000.0)
        assert a == b
        assert a.to_json() == b.to_json()
        # A different seed genuinely moves the plan.
        c = FaultPlan.fuzz(np.random.default_rng(6), sites, 1000.0)
        assert a != c


class TestBlackout:
    def test_outage_pauses_and_heal_resumes(self):
        sim, hog = make_hog()
        s0_hosts = hosts_at(hog, "site0.edu")
        assert s0_hosts
        plan = FaultPlan([FaultEvent(5.0, "site_blackout", "S0",
                                     duration=300.0, mode="outage")])
        inj = Injector(sim, hog, plan)
        inj.start()
        # Mid-window: the site is closed and its daemons are down long
        # enough for the heartbeat monitor to declare them dead.
        sim.run(until=sim.now + 200.0)
        assert site_named(hog, "S0").in_downtime
        live = hog.namenode.live_datanode_hosts()
        assert not any(h in live for h in s0_hosts)
        # After heal: daemons restart, re-register, and the calendar
        # reopens; no pilot is lost to a pause/resume round-trip.
        sim.run(until=sim.now + 400.0)
        assert not site_named(hog, "S0").in_downtime
        live = hog.namenode.live_datanode_hosts()
        assert all(h in live for h in s0_hosts)
        summary = inj.summary()
        assert summary["blackout_pauses"] == len(s0_hosts)
        assert summary["blackout_resumes"] == len(s0_hosts)
        assert summary["blackout_losses"] == 0

    def test_evict_mode_preempts_and_reopens(self):
        sim, hog = make_hog(target=6)
        n_victims = len(hosts_at(hog, "site0.edu"))
        before = hog.factory.counters.get("glideins_preempted")
        plan = FaultPlan([FaultEvent(5.0, "site_blackout", "S0",
                                     duration=120.0, mode="evict")])
        inj = run_plan(sim, hog, plan, 30.0)
        assert inj.summary()["blackout_evictions"] == n_victims
        assert hog.factory.counters.get("glideins_preempted") == \
            before + n_victims
        assert not site_named(hog, "S0").running_glideins()
        # The factory replaces capacity once the window lifts.
        sim.run(until=sim.now + 120.0)
        hog.run_until_nodes(6, timeout=2000.0)

    def test_overlapping_windows_compose(self):
        sim, hog = make_hog()
        plan = FaultPlan([
            FaultEvent(5.0, "site_blackout", "S0", duration=200.0),
            FaultEvent(50.0, "site_blackout", "S0", duration=300.0),
        ])
        inj = Injector(sim, hog, plan)
        inj.start()
        # After the first window's end but inside the second: still dark.
        sim.run(until=sim.now + 250.0)
        assert site_named(hog, "S0").in_downtime
        sim.run(until=sim.now + 150.0)
        assert not site_named(hog, "S0").in_downtime


class TestWanFaults:
    def test_degrade_scales_uplink_and_restores(self):
        sim, hog = make_hog()
        base = hog.fabric.config.site_uplink_bandwidth
        plan = FaultPlan([FaultEvent(5.0, "wan_degrade", "S0",
                                     duration=100.0, value=0.25)])
        inj = Injector(sim, hog, plan)
        inj.start()
        sim.run(until=sim.now + 50.0)
        assert hog.fabric._uplink_overrides["site0.edu"] == \
            pytest.approx(0.25 * base)
        sim.run(until=sim.now + 100.0)
        assert "site0.edu" not in hog.fabric._uplink_overrides
        actions = [e["action"] for e in inj.stream]
        assert actions == ["wan_degrade", "wan_restore"]

    def test_partition_mode_heals(self):
        sim, hog = make_hog()
        plan = FaultPlan([FaultEvent(5.0, "wan_degrade", "S1",
                                     duration=100.0, mode="partition")])
        inj = run_plan(sim, hog, plan, 300.0)
        actions = [e["action"] for e in inj.stream]
        assert actions == ["wan_partition", "wan_heal"]
        # Cross-site transfers work again after the heal.
        ev = hog.fabric.transfer(hosts_at(hog, "site1.edu")[0],
                                 hosts_at(hog, "site0.edu")[0], 1e6)
        assert sim.run_until(ev, sim.now + 60.0)


class TestNodeFaults:
    def test_node_wave_preempts_longest_running(self):
        sim, hog = make_hog(target=6)
        victims = sorted(site_named(hog, "S1").running_glideins(),
                         key=lambda g: g.glidein_id)
        plan = FaultPlan([FaultEvent(5.0, "node_wave", "S1", count=1)])
        inj = run_plan(sim, hog, plan, 10.0)
        assert inj.summary()["wave_preemptions"] == 1
        assert victims[0].state != victims[0].RUNNING

    def test_node_wave_short_site_counts_shortfall(self):
        sim, hog = make_hog(target=6)
        at_site = len(site_named(hog, "S2").running_glideins())
        plan = FaultPlan([FaultEvent(5.0, "node_wave", "S2", count=99)])
        inj = run_plan(sim, hog, plan, 10.0)
        assert inj.summary()["wave_preemptions"] == at_site
        assert inj.summary()["events_short"] == 99 - at_site

    def test_disk_fail_kills_media_not_daemon(self):
        sim, hog = make_hog()
        plan = FaultPlan([FaultEvent(5.0, "disk_fail", "S0", count=1)])
        inj = run_plan(sim, hog, plan, 10.0)
        assert inj.summary()["disks_failed"] == 1
        dead = [n for n in hog.nodes.values() if not n.disk.alive]
        assert len(dead) == 1
        # Media death alone: the daemon is still up (the self-check or a
        # failed transfer takes it down later).
        assert dead[0].host in hog.namenode.live_datanode_hosts()

    def test_straggler_window_slows_then_restores(self):
        sim, hog = make_hog()
        speeds = {h: n.tasktracker.speed for h, n in hog.nodes.items()}
        plan = FaultPlan([FaultEvent(5.0, "straggler", "S1",
                                     duration=100.0, count=2, value=4.0)])
        inj = Injector(sim, hog, plan)
        inj.start()
        sim.run(until=sim.now + 50.0)
        slowed = [h for h, n in hog.nodes.items()
                  if n.tasktracker.speed < speeds[h]]
        assert len(slowed) == 2
        assert all(h.endswith("site1.edu") for h in slowed)
        for h in slowed:
            assert hog.nodes[h].tasktracker.speed == \
                pytest.approx(speeds[h] / 4.0)
        sim.run(until=sim.now + 100.0)
        for h, n in hog.nodes.items():
            assert n.tasktracker.speed == pytest.approx(speeds[h])
        assert inj.summary()["stragglers_ended"] == 2

    def test_unknown_site_skipped_not_fatal(self):
        sim, hog = make_hog()
        plan = FaultPlan([FaultEvent(5.0, "disk_fail", "Atlantis", count=1)])
        inj = run_plan(sim, hog, plan, 10.0)
        assert inj.summary()["events_skipped"] == 1
        assert inj.stream[0]["action"] == "skip"


class TestStreamDeterminism:
    def test_same_seed_same_stream(self):
        plan = FaultPlan.fuzz(np.random.default_rng(11),
                              ["S0", "S1", "S2"], 600.0)
        streams = []
        for _ in range(2):
            sim, hog = make_hog(seed=4)
            inj = run_plan(sim, hog, plan, 1200.0)
            streams.append((json.dumps(inj.stream), inj.summary()))
        assert streams[0] == streams[1]
