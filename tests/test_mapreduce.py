"""Unit and integration tests for the MapReduce substrate."""

import pytest

from repro.hdfs import hog_config
from repro.mapreduce import (
    JobSpec,
    JobStatus,
    MRConfig,
    TaskStatus,
    hog_mr_config,
    stock_mr_config,
)

from helpers import MRHarness


class TestConfig:
    def test_stock_defaults(self):
        cfg = stock_mr_config()
        assert cfg.tracker_expiry == 600.0
        assert cfg.speculative_execution is True
        assert cfg.max_task_copies == 2  # "at most two copies" (§III-B2)
        cfg.validate()

    def test_hog_preset(self):
        cfg = hog_mr_config()
        assert cfg.tracker_expiry == 30.0  # §III-B
        cfg.validate()

    def test_speculation_slowness_is_one_third(self):
        # "slower tasks (1/3 slower than average)"
        assert MRConfig().speculation_slowness_factor == pytest.approx(4.0 / 3.0)

    @pytest.mark.parametrize("field,value", [
        ("heartbeat_interval", 0), ("max_task_copies", 0),
        ("reduce_slowstart", 2.0), ("parallel_shuffle_copies", 0),
        ("speculation_slowness_factor", 0.5), ("sort_rate", 0),
    ])
    def test_invalid_configs_rejected(self, field, value):
        cfg = MRConfig()
        setattr(cfg, field, value)
        with pytest.raises(ValueError):
            cfg.validate()


class TestJobSpec:
    def test_valid_spec(self):
        JobSpec("j", 4, 2, "/in").validate()

    @pytest.mark.parametrize("kwargs", [
        dict(num_maps=0), dict(num_reduces=-1),
        dict(map_cpu_per_block=-1), dict(map_output_ratio=-0.5),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        base = dict(name="j", num_maps=2, num_reduces=1, input_file="/in")
        base.update(kwargs)
        with pytest.raises(ValueError):
            JobSpec(**base).validate()


class TestJobExecution:
    def test_single_job_completes(self):
        h = MRHarness(n_nodes=4, n_sites=2)
        job = h.submit("wordcount", num_maps=4, num_reduces=2)
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED
        assert job.completed_maps == 4
        assert job.completed_reduces == 2
        assert job.response_time > 0

    def test_map_only_job_completes(self):
        h = MRHarness(n_nodes=4, n_sites=2)
        job = h.submit("maponly", num_maps=3, num_reduces=0)
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED

    def test_job_output_written_to_hdfs(self):
        h = MRHarness(n_nodes=4, n_sites=2)
        job = h.submit("out", num_maps=2, num_reduces=1)
        h.run_to_completion([job])
        assert any(name.startswith(f"/in/out.out/j{job.job_id}/")
                   for name in h.namenode._files)

    def test_fifo_ordering_respected(self):
        h = MRHarness(n_nodes=2, n_sites=2)
        j1 = h.submit("first", num_maps=4, num_reduces=1)
        j2 = h.submit("second", num_maps=4, num_reduces=1)
        h.run_to_completion([j1, j2])
        # FIFO: the first job must not finish after the second by much —
        # specifically it must have started first.
        assert j1.start_time <= j2.start_time
        assert j1.finish_time <= j2.finish_time

    def test_multiple_jobs_all_complete(self):
        h = MRHarness(n_nodes=6, n_sites=3)
        jobs = [h.submit(f"j{i}", num_maps=2, num_reduces=1) for i in range(5)]
        h.run_to_completion(jobs)
        assert all(j.status == JobStatus.SUCCEEDED for j in jobs)

    def test_submit_without_input_rejected(self):
        h = MRHarness(n_nodes=2)
        from repro.hdfs import HdfsError
        with pytest.raises(HdfsError):
            h.jobtracker.submit_job(JobSpec("x", 2, 1, "/missing"))

    def test_submit_with_too_few_blocks_rejected(self):
        h = MRHarness(n_nodes=2)
        h.client().preload_file("/small", h.hdfs_config.block_size)
        with pytest.raises(ValueError):
            h.jobtracker.submit_job(JobSpec("x", 5, 1, "/small"))

    def test_intermediate_data_freed_only_at_job_end(self):
        h = MRHarness(n_nodes=2, n_sites=1)
        job = h.submit("inter", num_maps=2, num_reduces=1,
                       map_output_ratio=0.5)
        h.run_to_completion([job])
        # After completion, no node may still hold intermediate data.
        label = f"intermediate:j{job.job_id}"
        for disk in h.disks.values():
            assert disk.usage_by_label().get(label, 0.0) == 0.0

    def test_locality_counters_sum_to_map_count(self):
        h = MRHarness(n_nodes=4, n_sites=2)
        job = h.submit("loc", num_maps=4, num_reduces=1)
        h.run_to_completion([job])
        assert sum(job.locality_counters.values()) >= 4


class TestSlots:
    def test_slot_limits_respected(self):
        h = MRHarness(n_nodes=2, n_sites=1, map_slots=1, reduce_slots=1)
        job = h.submit("slots", num_maps=8, num_reduces=1)
        max_running = [0]

        def sample(sim):
            while job.finish_time is None:
                running = sum(tt.running_maps for tt in h.tasktrackers.values())
                max_running[0] = max(max_running[0], running)
                for tt in h.tasktrackers.values():
                    assert tt.running_maps <= tt.map_slots
                    assert tt.running_reduces <= tt.reduce_slots
                yield sim.timeout(1.0)

        h.sim.process(sample(h.sim))
        h.run_to_completion([job])
        assert max_running[0] <= 2  # 2 nodes x 1 slot

    def test_heterogeneous_slots(self):
        h = MRHarness(n_nodes=2, n_sites=1, map_slots=4, reduce_slots=1)
        job = h.submit("het", num_maps=8, num_reduces=1)
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED


class TestReduceSlowstart:
    def test_reduces_wait_for_slowstart(self):
        h = MRHarness(n_nodes=4, n_sites=2,
                      mr_config=MRConfig(reduce_slowstart=1.0))
        job = h.submit("slow", num_maps=4, num_reduces=2,
                       map_cpu_per_block=20.0)
        first_reduce_start = []

        def watch(sim):
            while job.finish_time is None:
                if any(t.attempts for t in job.reduces) and not first_reduce_start:
                    first_reduce_start.append(sim.now)
                yield sim.timeout(1.0)

        h.sim.process(watch(h.sim))
        h.run_to_completion([job])
        last_map_finish = max(t.finish_time for t in job.maps)
        # With slowstart=1.0, no reduce may start before every map is done.
        assert first_reduce_start[0] >= last_map_finish - 3.0  # heartbeat slack


class TestFailureRecovery:
    def test_node_death_recovers_running_tasks(self):
        h = MRHarness(n_nodes=4, n_sites=2, hdfs_config=hog_config(replication=3),
                      mr_config=hog_mr_config())
        job = h.submit("recover", num_maps=6, num_reduces=1,
                       map_cpu_per_block=30.0)
        victim = h.hosts()[0]

        def preempt(sim):
            yield sim.timeout(20.0)
            h.preempt_node(victim)

        h.sim.process(preempt(h.sim))
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED
        assert h.jobtracker.counters.get("trackers_lost") == 1

    def test_completed_map_reexecuted_when_node_lost(self):
        # Kill a node after its maps are done but before the reduce
        # fetched everything: the map outputs must be re-executed.
        h = MRHarness(n_nodes=3, n_sites=1, hdfs_config=hog_config(replication=3),
                      mr_config=hog_mr_config(reduce_slowstart=1.0))
        job = h.submit("remap", num_maps=3, num_reduces=1,
                       map_cpu_per_block=5.0, map_output_ratio=4.0)

        def preempt(sim):
            # Kill an output holder the moment the last map finishes —
            # with slowstart=1.0 no reduce has been scheduled yet, so its
            # output cannot have been fetched.
            while job.completed_maps < 3:
                yield sim.timeout(0.05)
            holder = job.map_outputs[0].host
            h.preempt_node(holder)

        h.sim.process(preempt(h.sim))
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED
        assert h.jobtracker.counters.get("maps_reexecuted") >= 1

    def test_zombie_tracker_fails_tasks_then_blacklisted(self):
        h = MRHarness(n_nodes=3, n_sites=1, hdfs_config=hog_config(
                          replication=3, disk_check_interval=None),
                      mr_config=hog_mr_config())
        victim = h.hosts()[0]
        h.run(until=5.0)
        h.preempt_node(victim, zombie=True)
        job = h.submit("zombie", num_maps=6, num_reduces=1)
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED
        # The zombie must have eaten at least one attempt and been
        # blacklisted for the job.
        assert h.jobtracker.counters.get("attempts_failed") >= 1
        assert victim in job.blacklist

    def test_tracker_rejoin_reregisters(self):
        h = MRHarness(n_nodes=2, n_sites=1, mr_config=hog_mr_config())
        victim = h.hosts()[0]
        h.preempt_node(victim)
        h.run(until=60.0)
        assert h.jobtracker.live_tracker_count() == 1
        h.add_node(victim)
        h.run(until=70.0)
        assert h.jobtracker.live_tracker_count() == 2

    def test_stock_expiry_slower_than_hog(self):
        h_stock = MRHarness(n_nodes=2, n_sites=1, mr_config=stock_mr_config())
        h_stock.preempt_node(h_stock.hosts()[0])
        h_stock.run(until=120.0)
        assert h_stock.jobtracker.live_tracker_count() == 2  # still believed

        h_hog = MRHarness(n_nodes=2, n_sites=1, mr_config=hog_mr_config())
        h_hog.preempt_node(h_hog.hosts()[0])
        h_hog.run(until=120.0)
        assert h_hog.jobtracker.live_tracker_count() == 1  # detected


class TestSpeculation:
    def _slow_node_harness(self):
        h = MRHarness(n_nodes=4, n_sites=1,
                      mr_config=MRConfig(speculation_min_elapsed=5.0))
        # Make one node pathologically slow.
        slow = h.hosts()[0]
        h.tasktrackers[slow].speed = 0.05
        return h, slow

    def test_straggler_gets_backup_copy(self):
        h, slow = self._slow_node_harness()
        job = h.submit("spec", num_maps=8, num_reduces=1,
                       map_cpu_per_block=20.0)
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED
        assert h.jobtracker.counters.get("speculative_attempts") >= 1

    def test_speculation_disabled_no_backups(self):
        h = MRHarness(n_nodes=4, n_sites=1,
                      mr_config=MRConfig(speculative_execution=False))
        h.tasktrackers[h.hosts()[0]].speed = 0.2
        job = h.submit("nospec", num_maps=8, num_reduces=1,
                       map_cpu_per_block=20.0)
        h.run_to_completion([job])
        assert h.jobtracker.counters.get("speculative_attempts") == 0

    def test_at_most_two_copies(self):
        h, slow = self._slow_node_harness()
        job = h.submit("twocopies", num_maps=8, num_reduces=1,
                       map_cpu_per_block=20.0)

        def check(sim):
            while job.finish_time is None:
                for t in job.maps:
                    assert len(t.running_attempts) <= 2
                yield sim.timeout(1.0)

        h.sim.process(check(h.sim))
        h.run_to_completion([job])

    def test_losing_attempt_killed(self):
        h, slow = self._slow_node_harness()
        job = h.submit("kill", num_maps=8, num_reduces=1,
                       map_cpu_per_block=20.0)
        h.run_to_completion([job])
        if h.jobtracker.counters.get("speculative_attempts") > 0:
            assert h.jobtracker.counters.get("speculative_attempts_killed") >= 0
        # No attempt may still be running after the job is done.
        for t in job.maps + job.reduces:
            assert not t.running_attempts
