"""End-to-end reproduction of §IV-D2 "Disk Overflow".

"Our replication factor and the high latency between some nodes on the
grid caused the disk overflows.  It is also worth noting that Hadoop will
not delete map intermediate data until the entire job is done ...  This
leads to a buildup of intermediate map output on the worker nodes,
causing the nodes to fail due to lack of disk space."
"""

import pytest

from repro.hdfs import hog_config
from repro.mapreduce import JobStatus, hog_mr_config

from helpers import MRHarness


def tiny_disk_harness(disk_capacity, **kw):
    return MRHarness(n_nodes=4, n_sites=2,
                     hdfs_config=hog_config(replication=2),
                     mr_config=hog_mr_config(),
                     disk_capacity=disk_capacity, **kw)


class TestDiskOverflow:
    def test_intermediate_buildup_causes_out_of_disk_failures(self):
        # Disks sized so HDFS input + 4x intermediate cannot fit: map
        # attempts must fail with out-of-disk reports.
        h = tiny_disk_harness(disk_capacity=450e6)  # ~6.7 blocks worth
        job = h.submit("overflow", num_maps=8, num_reduces=2,
                       map_output_ratio=4.0, map_cpu_per_block=2.0)
        deadline = 20_000.0
        while h.sim.now < deadline and job.finish_time is None:
            h.sim.run(until=h.sim.now + 50.0)
        # At least one attempt must have died out-of-disk.
        assert h.jobtracker.counters.get("attempts_failed") >= 1

    def test_ample_disk_no_failures(self):
        h = tiny_disk_harness(disk_capacity=50e9)
        job = h.submit("fits", num_maps=8, num_reduces=2,
                       map_output_ratio=4.0, map_cpu_per_block=2.0)
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED
        assert h.jobtracker.counters.get("attempts_failed") == 0

    def test_job_level_failure_when_disks_hopeless(self):
        # Intermediate output alone exceeds every disk: the job must be
        # declared failed after max_attempts, not hang.
        h = tiny_disk_harness(disk_capacity=300e6)
        job = h.submit("doomed", num_maps=4, num_reduces=1,
                       map_output_ratio=50.0, map_cpu_per_block=1.0)
        deadline = 50_000.0
        while h.sim.now < deadline and job.finish_time is None:
            h.sim.run(until=h.sim.now + 50.0)
        assert job.status == JobStatus.FAILED
        assert h.jobtracker.counters.get("jobs_failed") == 1

    def test_intermediate_freed_after_job_allows_next_job(self):
        # Two jobs that each fit alone but not together: because
        # intermediate data is freed at job completion, the second job
        # must succeed after the first finishes.
        h = tiny_disk_harness(disk_capacity=1.2e9)
        j1 = h.submit("first", num_maps=4, num_reduces=1,
                      map_output_ratio=2.0, map_cpu_per_block=2.0)
        h.run_to_completion([j1])
        label = f"intermediate:j{j1.job_id}"
        assert all(d.usage_by_label().get(label, 0.0) == 0.0
                   for d in h.disks.values())
        j2 = h.submit("second", num_maps=4, num_reduces=1,
                      map_output_ratio=2.0, map_cpu_per_block=2.0)
        h.run_to_completion([j2])
        assert j2.status == JobStatus.SUCCEEDED
