"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Event,
    Interrupt,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == 5.0


def test_timeout_value_passed_through():
    sim = Simulator()
    seen = []

    def proc(sim):
        v = yield sim.timeout(1.0, value="payload")
        seen.append(v)

    sim.process(proc(sim))
    sim.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(sim, 3.0, "c"))
    sim.process(proc(sim, 1.0, "a"))
    sim.process(proc(sim, 2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcd":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list("abcd")


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return 42

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 42
    assert not p.is_alive


def test_process_waits_on_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(4.0)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return result

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "child-result"
    assert sim.now == 4.0


def test_run_until_time_stops_early():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.process(proc(sim))
    sim.run(until=3.0)
    assert sim.now == 3.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_event():
    sim = Simulator()

    def fast(sim):
        yield sim.timeout(1.0)

    def slow(sim):
        yield sim.timeout(100.0)

    p = sim.process(fast(sim))
    sim.process(slow(sim))
    sim.run(until=p)
    assert sim.now == 1.0


def test_run_until_past_raises():
    sim = Simulator(start=50.0)
    with pytest.raises(ValueError):
        sim.run(until=10.0)


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    results = []

    def waiter(sim, ev):
        v = yield ev
        results.append(v)

    def firer(sim, ev):
        yield sim.timeout(5.0)
        ev.succeed("fired")

    sim.process(waiter(sim, ev))
    sim.process(firer(sim, ev))
    sim.run()
    assert results == ["fired"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_failure_propagates_to_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim, ev))
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_crashes_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_defused_failure_does_not_crash():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("handled elsewhere"))
    ev.defused()
    sim.run()  # should not raise


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_exception_fails_its_event():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "caught inner"


def test_interrupt_wakes_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("slept full")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    def interrupter(sim, victim):
        yield sim.timeout(7.0)
        victim.interrupt("preempted")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [("interrupted", "preempted", 7.0)]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def worker(sim):
        try:
            yield sim.timeout(50.0)
        except Interrupt:
            pass
        yield sim.timeout(5.0)
        log.append(sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(10.0)
        victim.interrupt()

    victim = sim.process(worker(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [15.0]


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(3.0, value="fast")
        t2 = sim.timeout(9.0, value="slow")
        result = yield sim.any_of([t1, t2])
        return (sim.now, list(result.values()))

    p = sim.process(proc(sim))
    sim.run()
    when, vals = p.value
    assert when == 3.0
    assert vals == ["fast"]


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(3.0, value="a")
        t2 = sim.timeout(9.0, value="b")
        result = yield sim.all_of([t1, t2])
        return (sim.now, sorted(result.values()))

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (9.0, ["a", "b"])


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        result = yield sim.all_of([])
        return result

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == {}


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    p = sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="non-event"):
        sim.run()
    assert not p.ok


def test_yield_already_processed_event_continues_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run()  # process the event

    def proc(sim, ev):
        v = yield ev
        return (v, sim.now)

    p = sim.process(proc(sim, ev))
    sim.run()
    assert p.value == ("early", 0.0)


def test_step_on_empty_heap_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.5)
    assert sim.peek() == 4.5


def test_nested_processes_deep_chain():
    sim = Simulator()

    def chain(sim, depth):
        if depth == 0:
            yield sim.timeout(1.0)
            return 0
        sub = yield sim.process(chain(sim, depth - 1))
        return sub + 1

    p = sim.process(chain(sim, 20))
    sim.run()
    assert p.value == 20
    assert sim.now == 1.0


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def proc(sim, i):
        yield sim.timeout(float(i % 17))
        done.append(i)

    for i in range(2000):
        sim.process(proc(sim, i))
    sim.run()
    assert len(done) == 2000


def test_process_event_cross_simulator_rejected():
    sim1 = Simulator()
    sim2 = Simulator()

    def proc(sim1, sim2):
        yield sim2.timeout(1.0)

    p = sim1.process(proc(sim1, sim2))
    with pytest.raises(RuntimeError, match="foreign"):
        sim1.run()
    assert not p.ok
