"""Tests for the event-driven run helpers.

The polling implementations advanced simulated time on a fixed 5 s / 25 s
grid, so ``run_until_*`` returned times rounded *up* to the next step.  The
event-driven versions stop the engine at the exact simulated instant the
condition becomes true.
"""

import pytest

from repro.core import HOGConfig, HOGSystem
from repro.grid import GridSiteConfig, SitePolicy
from repro.mapreduce import JobSpec, JobStatus
from repro.sim import Simulator


def make_hog(target=6, n_sites=3, capacity=20, seed=1):
    policy = SitePolicy(preempt_rate=0.0, burst_rate=0.0,
                        scheduling_delay_mean=5.0)
    sites = [GridSiteConfig(f"SITE{i}", f"site{i}.edu", capacity, policy)
             for i in range(n_sites)]
    sim = Simulator()
    hog = HOGSystem(sim, HOGConfig(sites=sites, seed=seed,
                                   negotiation_interval=10.0))
    hog.start(target)
    return sim, hog


class TestRunUntilNodes:
    def test_fires_exactly_when_count_reached(self):
        sim, hog = make_hog(target=5)
        t = hog.run_until_nodes(5)
        assert hog.running_nodes() >= 5
        # The node series records every count change at its exact
        # timestamp; the helper must return the first instant the series
        # reached 5 — not a 5 s polling-grid point at or after it.
        times, values = hog.node_series.as_arrays()
        first_reached = times[values >= 5][0]
        assert t == first_reached

    def test_immediate_return_when_already_satisfied(self):
        sim, hog = make_hog(target=5)
        hog.run_until_nodes(5)
        before = sim.now
        assert hog.run_until_nodes(3) == before  # no time passes
        assert sim.now == before

    def test_timeout_still_raises(self):
        sim, hog = make_hog(target=4, n_sites=1, capacity=2)
        with pytest.raises(TimeoutError):
            hog.run_until_nodes(3, timeout=500.0)
        assert hog.running_nodes() == 2  # grid is simply full

    def test_when_running_event_api(self):
        sim, hog = make_hog(target=4)
        ev = hog.factory.when_running(4)
        assert not ev.triggered
        assert sim.run_until(ev, deadline=sim.now + 10_000.0)
        assert hog.running_nodes() >= 4
        # Already-satisfied waits fire immediately.
        assert hog.factory.when_running(2).triggered


class TestRunUntilJobsDone:
    def test_returns_exact_finish_timestamp(self):
        sim, hog = make_hog(target=6)
        hog.run_until_nodes(6)
        hog.preload_input("/in/exact", n_blocks=6)
        job = hog.submit(JobSpec("exact", 6, 2, "/in/exact",
                                 map_cpu_per_block=5.0))
        t = hog.run_until_jobs_done([job])
        assert job.status == JobStatus.SUCCEEDED
        # Exactly the job's finish time — the polling version returned the
        # next 25 s grid point instead.
        assert t == job.finish_time
        assert sim.now == job.finish_time

    def test_already_finished_jobs_return_immediately(self):
        sim, hog = make_hog(target=4)
        hog.run_until_nodes(4)
        hog.preload_input("/in/again", n_blocks=4)
        job = hog.submit(JobSpec("again", 4, 1, "/in/again",
                                 map_cpu_per_block=2.0))
        hog.run_until_jobs_done([job])
        before = sim.now
        assert hog.run_until_jobs_done([job]) == before
        assert sim.now == before

    def test_concurrent_waiters_both_fire(self):
        # Regression: a self-removing waiter used to skip the listener
        # registered after it (list mutated during iteration), leaving the
        # second waiter hung forever.
        sim, hog = make_hog(target=4)
        hog.run_until_nodes(4)
        hog.preload_input("/in/c", n_blocks=4)
        job = hog.submit(JobSpec("c", 4, 1, "/in/c", map_cpu_per_block=2.0))
        ev1 = hog.jobtracker.when_jobs_done([job])
        ev2 = hog.jobtracker.when_jobs_done([job])
        assert sim.run_until(ev1, deadline=sim.now + 100_000.0)
        assert ev2.triggered, "second waiter must fire on the same finish"
        assert not hog.jobtracker._job_waiters  # both listeners released

    def test_cancel_wait_releases_timed_out_listener(self):
        sim, hog = make_hog(target=4)
        hog.run_until_nodes(4)
        hog.preload_input("/in/t", n_blocks=4)
        job = hog.submit(JobSpec("t", 4, 1, "/in/t", map_cpu_per_block=50.0))
        before = len(hog.jobtracker.job_done_listeners)
        with pytest.raises(TimeoutError):
            hog.run_until_jobs_done([job], timeout=1.0)
        # The abandoned wait must not leak its listener.
        assert len(hog.jobtracker.job_done_listeners) == before

    def test_when_jobs_done_event_fires_for_all(self):
        sim, hog = make_hog(target=6)
        hog.run_until_nodes(6)
        hog.preload_input("/in/a", n_blocks=3)
        hog.preload_input("/in/b", n_blocks=3)
        j1 = hog.submit(JobSpec("a", 3, 1, "/in/a", map_cpu_per_block=2.0))
        j2 = hog.submit(JobSpec("b", 3, 1, "/in/b", map_cpu_per_block=9.0))
        done = hog.jobtracker.when_jobs_done([j1, j2])
        assert sim.run_until(done, deadline=sim.now + 100_000.0)
        assert j1.finish_time is not None and j2.finish_time is not None
        assert sim.now == max(j1.finish_time, j2.finish_time)


class TestSimulatorRunUntil:
    def test_stops_at_event_trigger_time(self):
        sim = Simulator()
        ev = sim.timeout(7.25)
        assert sim.run_until(ev)
        assert sim.now == 7.25

    def test_deadline_advances_time_and_returns_false(self):
        sim = Simulator()
        sim.timeout(50.0)
        never = sim.event()
        assert not sim.run_until(never, deadline=10.0)
        assert sim.now == 10.0

    def test_empty_schedule_returns_false(self):
        sim = Simulator()
        assert not sim.run_until(sim.event())

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.timeout(float(i))
        sim.run()
        assert sim.events_processed == 5
