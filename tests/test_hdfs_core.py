"""Unit and integration tests for the HDFS substrate."""

import numpy as np
import pytest

from repro.hdfs import (
    MB,
    BlockUnavailableError,
    HdfsConfig,
    HdfsError,
    RandomPolicy,
    SiteAwarePolicy,
    hog_config,
    stock_hadoop_config,
)
from repro.net import DnsSiteResolver, NetworkTopology

from helpers import HdfsHarness


class TestConfig:
    def test_defaults_are_stock_hadoop(self):
        cfg = stock_hadoop_config()
        assert cfg.replication == 3
        assert cfg.heartbeat_timeout == 15 * 60.0
        assert cfg.disk_check_interval is None
        cfg.validate()

    def test_hog_preset_matches_paper(self):
        cfg = hog_config()
        assert cfg.replication == 10          # §III-B1
        assert cfg.heartbeat_timeout == 30.0  # §III-B
        assert cfg.disk_check_interval == 180.0  # §IV-D1 "every 3 minutes"
        cfg.validate()

    def test_block_size_is_64mb(self):
        assert HdfsConfig().block_size == 64 * MB

    @pytest.mark.parametrize("field,value", [
        ("block_size", 0), ("replication", 0), ("heartbeat_interval", -1),
        ("disk_reserve_fraction", 1.5),
    ])
    def test_invalid_configs_rejected(self, field, value):
        cfg = HdfsConfig()
        setattr(cfg, field, value)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_timeout_must_exceed_interval(self):
        cfg = HdfsConfig(heartbeat_interval=10.0, heartbeat_timeout=5.0)
        with pytest.raises(ValueError):
            cfg.validate()


class TestNamespace:
    def test_file_split_into_blocks(self):
        h = HdfsHarness()
        fi = h.namenode.create_file("/data/in", 200 * MB)
        assert len(fi.blocks) == 4
        assert [b.size for b in fi.blocks] == [64 * MB, 64 * MB, 64 * MB, 8 * MB]
        assert fi.size == 200 * MB

    def test_exact_multiple_has_no_short_block(self):
        h = HdfsHarness()
        fi = h.namenode.create_file("/data/in", 128 * MB)
        assert [b.size for b in fi.blocks] == [64 * MB, 64 * MB]

    def test_duplicate_create_rejected(self):
        h = HdfsHarness()
        h.namenode.create_file("/f", MB)
        with pytest.raises(HdfsError):
            h.namenode.create_file("/f", MB)

    def test_get_missing_file_raises(self):
        h = HdfsHarness()
        with pytest.raises(HdfsError):
            h.namenode.get_file("/nope")

    def test_delete_frees_replica_space(self):
        h = HdfsHarness()
        client = h.client()
        fi = client.preload_file("/f", 64 * MB, replication=3)
        used_before = sum(dn.disk.used for dn in h.datanodes.values())
        assert used_before == 3 * 64 * MB
        h.namenode.delete_file("/f")
        assert sum(dn.disk.used for dn in h.datanodes.values()) == 0
        assert not h.namenode.exists("/f")

    def test_block_ids_unique_across_files(self):
        h = HdfsHarness()
        f1 = h.namenode.create_file("/a", 128 * MB)
        f2 = h.namenode.create_file("/b", 128 * MB)
        ids = [b.block_id for b in f1.blocks + f2.blocks]
        assert len(set(ids)) == len(ids)


class TestPlacement:
    def _policy(self, seed=0):
        topo = NetworkTopology(DnsSiteResolver())
        return topo, SiteAwarePolicy(topo, np.random.default_rng(seed))

    def test_writer_gets_first_replica(self):
        topo, pol = self._policy()
        hosts = [f"n{i}.s{i % 3}.edu" for i in range(9)]
        for hh in hosts:
            topo.add_host(hh)
        targets = pol.choose_targets(hosts[0], 3, set(), hosts, lambda h: True)
        assert targets[0] == hosts[0]
        assert len(targets) == 3

    def test_second_replica_different_site(self):
        topo, pol = self._policy()
        hosts = [f"n{i}.s{i % 3}.edu" for i in range(9)]
        for hh in hosts:
            topo.add_host(hh)
        targets = pol.choose_targets(hosts[0], 3, set(), hosts, lambda h: True)
        assert topo.site_of(targets[1]) != topo.site_of(targets[0])

    def test_replicas_spread_across_sites(self):
        topo, pol = self._policy()
        hosts = [f"n{i}.s{i % 3}.edu" for i in range(9)]
        for hh in hosts:
            topo.add_host(hh)
        targets = pol.choose_targets(hosts[0], 6, set(), hosts, lambda h: True)
        per_site = {}
        for t in targets:
            per_site[topo.site_of(t)] = per_site.get(topo.site_of(t), 0) + 1
        # 6 replicas over 3 sites must be 2 per site under even spread.
        assert sorted(per_site.values()) == [2, 2, 2]

    def test_existing_replicas_never_rechosen(self):
        topo, pol = self._policy()
        hosts = [f"n{i}.s{i % 3}.edu" for i in range(6)]
        for hh in hosts:
            topo.add_host(hh)
        existing = {hosts[0], hosts[1]}
        targets = pol.choose_targets(None, 2, existing, hosts, lambda h: True)
        assert not (set(targets) & existing)

    def test_space_constraint_respected(self):
        topo, pol = self._policy()
        hosts = [f"n{i}.s{i % 3}.edu" for i in range(6)]
        for hh in hosts:
            topo.add_host(hh)
        full = {hosts[0], hosts[2]}
        targets = pol.choose_targets(hosts[0], 4, set(), hosts,
                                     lambda h: h not in full)
        assert not (set(targets) & full)
        assert len(targets) == 4

    def test_fewer_candidates_than_replicas(self):
        topo, pol = self._policy()
        hosts = ["a.x.edu", "b.y.edu"]
        for hh in hosts:
            topo.add_host(hh)
        targets = pol.choose_targets(None, 10, set(), hosts, lambda h: True)
        assert sorted(targets) == sorted(hosts)

    def test_no_candidates_returns_empty(self):
        topo, pol = self._policy()
        assert pol.choose_targets(None, 3, set(), [], lambda h: True) == []

    def test_random_policy_count_and_exclusion(self):
        pol = RandomPolicy(np.random.default_rng(1))
        hosts = [f"n{i}.s.edu" for i in range(10)]
        targets = pol.choose_targets("n0.s.edu", 4, {"n1.s.edu"}, hosts,
                                     lambda h: True)
        assert len(targets) == 4
        assert targets[0] == "n0.s.edu"
        assert "n1.s.edu" not in targets


class TestLiveHostIndex:
    def _index(self, hosts):
        from repro.hdfs import LiveHostIndex
        topo = NetworkTopology(DnsSiteResolver())
        idx = LiveHostIndex(topo)
        for h in hosts:
            idx.add(h)
        return topo, idx

    def test_add_groups_by_site(self):
        hosts = [f"n{i}.s{i % 3}.edu" for i in range(9)]
        _, idx = self._index(hosts)
        assert len(idx) == 9
        assert sorted(idx.sites()) == ["s0.edu", "s1.edu", "s2.edu"]
        for site in idx.sites():
            assert idx.site_size(site) == 3
            assert all(idx.site_of(h) == site for h in idx.site_list(site))

    def test_add_is_idempotent(self):
        _, idx = self._index(["a.x.edu", "a.x.edu"])
        assert len(idx) == 1 and idx.site_size("x.edu") == 1

    def test_discard_swap_pop_keeps_positions_exact(self):
        hosts = [f"n{i}.s0.edu" for i in range(5)]
        _, idx = self._index(hosts)
        idx.discard("n1.s0.edu")  # middle removal: last host swaps in
        idx.discard("n4.s0.edu")  # the swapped-in host, by its new position
        assert "n1.s0.edu" not in idx and "n4.s0.edu" not in idx
        assert sorted(idx.site_list("s0.edu")) == \
            ["n0.s0.edu", "n2.s0.edu", "n3.s0.edu"]
        # Empty sites disappear entirely.
        for h in list(idx.site_list("s0.edu")):
            idx.discard(h)
        assert idx.sites() == [] and len(idx) == 0

    def test_swap_keeps_discard_working(self):
        hosts = [f"n{i}.s0.edu" for i in range(4)]
        _, idx = self._index(hosts)
        idx.swap("s0.edu", 0, 3)
        idx.swap("s0.edu", 1, 2)
        for h in hosts:
            assert h in idx
            idx.discard(h)
        assert len(idx) == 0


class TestPlacementWithIndex:
    """SiteAwarePolicy's cached-index fast path obeys the same selection
    rules as the per-call grouping path."""

    def _setup(self, n=9, n_sites=3, seed=0):
        from repro.hdfs import LiveHostIndex
        topo = NetworkTopology(DnsSiteResolver())
        pol = SiteAwarePolicy(topo, np.random.default_rng(seed))
        hosts = [f"n{i}.s{i % n_sites}.edu" for i in range(n)]
        idx = LiveHostIndex(topo)
        for h in hosts:
            idx.add(h)
        return topo, pol, hosts, idx

    def test_writer_gets_first_replica(self):
        topo, pol, hosts, idx = self._setup()
        targets = pol.choose_targets(hosts[0], 3, set(), hosts,
                                     lambda h: True, site_index=idx)
        assert targets[0] == hosts[0]
        assert len(targets) == 3

    def test_second_replica_different_site(self):
        topo, pol, hosts, idx = self._setup()
        targets = pol.choose_targets(hosts[0], 3, set(), hosts,
                                     lambda h: True, site_index=idx)
        assert topo.site_of(targets[1]) != topo.site_of(targets[0])

    def test_replicas_spread_across_sites(self):
        topo, pol, hosts, idx = self._setup()
        targets = pol.choose_targets(hosts[0], 6, set(), hosts,
                                     lambda h: True, site_index=idx)
        per_site = {}
        for t in targets:
            per_site[topo.site_of(t)] = per_site.get(topo.site_of(t), 0) + 1
        assert sorted(per_site.values()) == [2, 2, 2]

    def test_existing_replicas_never_rechosen(self):
        topo, pol, hosts, idx = self._setup(n=6)
        existing = {hosts[0], hosts[1]}
        targets = pol.choose_targets(None, 2, existing, hosts,
                                     lambda h: True, site_index=idx)
        assert len(targets) == 2
        assert not (set(targets) & existing)

    def test_space_constraint_respected(self):
        topo, pol, hosts, idx = self._setup(n=6)
        full = {hosts[0], hosts[2]}
        targets = pol.choose_targets(hosts[0], 4, set(), hosts,
                                     lambda h: h not in full, site_index=idx)
        assert not (set(targets) & full)
        assert len(targets) == 4

    def test_fewer_candidates_than_replicas(self):
        topo, pol, hosts, idx = self._setup(n=2, n_sites=2)
        targets = pol.choose_targets(None, 10, set(), hosts,
                                     lambda h: True, site_index=idx)
        assert sorted(targets) == sorted(hosts)

    def test_draws_never_duplicate_within_one_call(self):
        _, pol, hosts, idx = self._setup(n=30, n_sites=3, seed=5)
        for _ in range(50):
            targets = pol.choose_targets(None, 10, set(), hosts,
                                         lambda h: True, site_index=idx)
            assert len(targets) == len(set(targets)) == 10

    def test_namenode_index_tracks_deaths(self):
        """The cached index follows register → death → re-register, so
        placement never returns a believed-dead host."""
        from repro.hdfs import hog_config
        from helpers import HdfsHarness
        h = HdfsHarness(n_nodes=6, n_sites=3, config=hog_config(replication=2))
        victim = h.hosts()[0]
        assert victim in h.namenode._live_index
        h.datanodes[victim].kill()
        h.run(until=h.sim.now + 2 * h.config.heartbeat_timeout)
        assert victim not in h.namenode._live_index
        for _ in range(20):
            targets = h.namenode.choose_write_targets("central.unl.edu",
                                                      1.0, 3)
            assert victim not in targets


class TestWriteRead:
    def test_pipeline_write_places_replication_factor(self):
        h = HdfsHarness(n_nodes=6, n_sites=3)
        client = h.client()
        ev = client.write_file("/wl/in0", 64 * MB, replication=3)
        h.run(until=ev)
        fi = ev.value
        info = h.namenode.block_info(fi.blocks[0].block_id)
        assert info.live_replica_count == 3

    def test_write_spreads_blocks_of_large_file(self):
        h = HdfsHarness(n_nodes=6, n_sites=3)
        ev = h.client().write_file("/big", 256 * MB, replication=2)
        h.run(until=ev)
        fi = ev.value
        assert len(fi.blocks) == 4
        for b in fi.blocks:
            assert h.namenode.block_info(b.block_id).live_replica_count == 2

    def test_write_with_no_datanodes_fails(self):
        h = HdfsHarness(n_nodes=0)
        ev = h.client().write_file("/f", MB)
        h.run(until=ev)
        with pytest.raises(HdfsError):
            ev.result()

    def test_read_prefers_local_replica(self):
        h = HdfsHarness(n_nodes=6, n_sites=3)
        client_host = h.hosts()[0]
        client = h.client(client_host)
        fi = client.preload_file("/f", 64 * MB, replication=6)
        ev = client.read_block(fi.blocks[0].block_id)
        h.run(until=ev)
        assert ev.value.source == client_host
        assert ev.value.distance == 0

    def test_read_prefers_site_over_remote(self):
        h = HdfsHarness(n_nodes=6, n_sites=3)
        # Place replicas only on two specific nodes: one sharing a site
        # with the reader, one remote.
        fi = h.namenode.create_file("/f", 64 * MB)
        block = fi.blocks[0]
        same_site = "node003.site0.edu"   # same site as node000
        remote = "node004.site1.edu"
        h.datanodes[same_site].add_block_instant(block)
        h.datanodes[remote].add_block_instant(block)
        reader = h.client("node000.site0.edu")
        ev = reader.read_block(block.block_id)
        h.run(until=ev)
        assert ev.value.source == same_site
        assert ev.value.distance == 2

    def test_read_missing_block_fails(self):
        h = HdfsHarness()
        fi = h.namenode.create_file("/f", 64 * MB)
        ev = h.client().read_block(fi.blocks[0].block_id)
        h.run(until=ev)
        with pytest.raises(BlockUnavailableError):
            ev.result()

    def test_read_unknown_block_fails(self):
        h = HdfsHarness()
        ev = h.client().read_block(99999)
        h.run(until=ev)
        with pytest.raises(BlockUnavailableError):
            ev.result()

    def test_read_retries_next_replica_on_dead_node(self):
        h = HdfsHarness(n_nodes=6, n_sites=3, config=hog_config(replication=2))
        client = h.client()
        fi = client.preload_file("/f", 64 * MB, replication=2)
        block = fi.blocks[0]
        locs = h.namenode.locate(block.block_id)
        # Kill one replica holder abruptly; namenode does not know yet.
        h.datanodes[locs[0]].kill()
        reader = h.client(locs[0])  # reader co-located with the dead node
        ev = reader.read_block(block.block_id)
        h.run(until=ev)
        assert ev.value.source == locs[1]
        # The failed attempt must have been reported.
        assert h.namenode.counters.get("bad_replica_reports") == 1


class TestFailureDetection:
    def test_dead_node_detected_after_hog_timeout(self):
        h = HdfsHarness(config=hog_config())
        victim = h.hosts()[0]
        h.run(until=10.0)
        h.datanodes[victim].kill()
        h.run(until=10.0 + 30.0 + 5.0)  # timeout + recheck slack
        assert victim not in h.namenode.live_datanode_hosts()
        assert h.namenode.counters.get("datanodes_declared_dead") == 1

    def test_stock_timeout_is_much_slower(self):
        h = HdfsHarness(config=stock_hadoop_config())
        victim = h.hosts()[0]
        h.datanodes[victim].kill()
        h.run(until=120.0)
        # After 2 minutes, stock Hadoop still believes the node is alive.
        assert victim in h.namenode.live_datanode_hosts()

    def test_lost_blocks_rereplicated(self):
        h = HdfsHarness(n_nodes=6, n_sites=3, config=hog_config(replication=3))
        client = h.client()
        fi = client.preload_file("/f", 64 * MB, replication=3)
        block = fi.blocks[0]
        victim = h.namenode.locate(block.block_id)[0]
        h.datanodes[victim].kill()
        h.run(until=300.0)
        live = h.namenode.locate(block.block_id)
        assert victim not in live
        assert len(live) == 3  # repaired back to target
        assert h.namenode.counters.get("replications_completed") >= 1

    def test_rereplication_prefers_new_site_spread(self):
        h = HdfsHarness(n_nodes=9, n_sites=3, config=hog_config(replication=3))
        client = h.client()
        fi = client.preload_file("/f", 64 * MB, replication=3)
        block = fi.blocks[0]
        victim = h.namenode.locate(block.block_id)[0]
        h.datanodes[victim].kill()
        h.run(until=300.0)
        live = h.namenode.locate(block.block_id)
        sites = {h.topology.site_of(x) for x in live}
        assert len(sites) == 3  # replicas still span all three sites

    def test_node_rejoin_reregisters(self):
        h = HdfsHarness(config=hog_config())
        victim = h.hosts()[0]
        h.datanodes[victim].kill()
        h.run(until=60.0)
        assert victim not in h.namenode.live_datanode_hosts()
        # The same host comes back (fresh glidein).
        h.add_datanode(victim)
        h.run(until=70.0)
        assert victim in h.namenode.live_datanode_hosts()


class TestZombie:
    def test_zombie_without_fix_fools_namenode(self):
        # Stock config: no disk self-check.
        h = HdfsHarness(config=stock_hadoop_config(heartbeat_timeout=30.0,
                                                   heartbeat_recheck_period=3.0))
        client = h.client()
        fi = client.preload_file("/f", 64 * MB, replication=1)
        block = fi.blocks[0]
        holder = h.namenode.locate(block.block_id)[0]
        h.run(until=10.0)
        h.datanodes[holder].make_zombie()
        h.run(until=600.0)
        # Ten minutes later the namenode still believes the zombie holds it.
        assert holder in h.namenode.locate(block.block_id)
        # ...but a real read fails over to nothing.
        ev = h.client().read_block(block.block_id)
        h.run(until=ev)
        with pytest.raises(BlockUnavailableError):
            ev.result()

    def test_disk_check_shuts_down_zombie(self):
        # HOG config: 3-minute disk self-check + 30 s heartbeat timeout.
        h = HdfsHarness(config=hog_config())
        victim = h.hosts()[0]
        h.run(until=10.0)
        h.datanodes[victim].make_zombie()
        # Within disk_check (<=180 s) + heartbeat timeout (30 s) + slack the
        # namenode must have declared it dead.
        h.run(until=10.0 + 180.0 + 30.0 + 10.0)
        assert victim not in h.namenode.live_datanode_hosts()
        assert h.datanodes[victim].state == "dead"

    def test_zombie_data_recovered_with_fix(self):
        h = HdfsHarness(n_nodes=6, n_sites=3, config=hog_config(replication=3))
        client = h.client()
        fi = client.preload_file("/f", 64 * MB, replication=3)
        block = fi.blocks[0]
        victim = h.namenode.locate(block.block_id)[0]
        h.datanodes[victim].make_zombie()
        h.run(until=600.0)
        live = h.namenode.locate(block.block_id)
        assert victim not in live
        assert len(live) == 3


class TestOverReplication:
    def test_excess_replicas_invalidated(self):
        h = HdfsHarness(n_nodes=6, n_sites=3, config=hog_config(replication=2))
        client = h.client()
        fi = client.preload_file("/f", 64 * MB, replication=2)
        block = fi.blocks[0]
        extra = [x for x in h.hosts() if x not in h.namenode.locate(block.block_id)][0]
        h.datanodes[extra].add_block_instant(block)
        info = h.namenode.block_info(block.block_id)
        assert info.live_replica_count == 2
        assert h.namenode.counters.get("replicas_invalidated") == 1
