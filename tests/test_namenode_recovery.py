"""Namenode recovery-correctness regressions.

Three failure shapes the fault engine leans on:

- the replication retry backoff (an unschedulable block must NOT be
  hot-requeued by every monitor tick — the full-site-blackout loop);
- the terminal lost-set (a block with zero live replicas leaves the
  repair queue and is resurrected only by a replica resurfacing);
- the read-failure / dead-node → re-replication → ``block_received``
  pipeline under an injected disk failure.
"""

import pytest

from repro.hdfs import hog_config
from repro.hdfs.config import MB

from helpers import HdfsHarness


def wait_dead(h, host, timeout=120.0):
    """Advance until the namenode declares ``host`` dead."""
    deadline = h.sim.now + timeout
    while h.sim.now < deadline:
        if host not in h.namenode.live_datanode_hosts():
            return
        h.sim.run(until=h.sim.now + 5.0)
    raise AssertionError(f"{host} still believed alive after {timeout}s")


class TestReplicationRetryBackoff:
    def _wedged_cluster(self, backoff=300.0):
        """3 nodes, replication 3, one holder dead: every surviving block
        is under-replicated with NO eligible target (both live nodes
        already hold replicas) — the blackout-shaped wedge."""
        h = HdfsHarness(n_nodes=3, config=hog_config(
            replication=3, disk_check_interval=None,
            block_report_interval=None,
            replication_retry_backoff=backoff))
        h.client().preload_file("/f", 128 * MB)
        victim = h.hosts()[0]
        h.datanodes[victim].kill()
        wait_dead(h, victim)
        return h, victim

    def test_unschedulable_blocks_defer_not_hot_requeue(self):
        h, _ = self._wedged_cluster(backoff=300.0)
        nn = h.namenode
        h.sim.run(until=h.sim.now + 250.0)
        # Both blocks are short one replica and parked on the backoff —
        # not cycling through the work queue.
        assert nn.under_replicated_count() == 2
        assert nn.deferred_replication_count() == 2
        assert len(nn._repl_prio) == 0
        # The regression observable: pre-fix, the monitor re-queued the
        # blocked blocks EVERY tick (3 s), so 250 s of wedge meant ~80
        # retries per block.  With the backoff each block retries once
        # per 300 s window — the initial defer plus at most one more.
        assert 0 < nn.counters.get("replication_retries_deferred") <= 4

    def test_membership_event_rearms_immediately(self):
        h, _ = self._wedged_cluster(backoff=300.0)
        nn = h.namenode
        h.sim.run(until=h.sim.now + 100.0)
        assert nn.deferred_replication_count() == 2
        # A new datanode registers mid-backoff: the deferred blocks must
        # retry NOW (well inside the 300 s window), find the new target,
        # and repair.
        h.add_datanode("node099.site0.edu")
        h.sim.run(until=h.sim.now + 30.0)
        assert nn.under_replicated_count() == 0
        assert nn.deferred_replication_count() == 0
        assert nn.counters.get("replications_completed") == 2


class TestLostBlockSet:
    def _all_replicas_lost(self):
        h = HdfsHarness(n_nodes=2, config=hog_config(
            replication=2, disk_check_interval=None,
            block_report_interval=None))
        h.client().preload_file("/f", 64 * MB)
        for host in h.hosts():
            h.datanodes[host].kill()
        for host in h.hosts():
            wait_dead(h, host)
        return h

    def test_lost_blocks_leave_the_repair_queue(self):
        h = self._all_replicas_lost()
        nn = h.namenode
        assert nn.counters.get("blocks_all_replicas_lost") == 1
        assert nn.lost_block_count() == 1
        # Terminal means terminal: a long quiet period neither retries
        # nor re-queues the unrepairable block (pre-fix it sat in the
        # under-replication heap forever, popped every monitor tick).
        h.sim.run(until=h.sim.now + 500.0)
        assert nn.under_replicated_count() == 0
        assert nn.deferred_replication_count() == 0
        assert len(nn._repl_heap) == 0
        assert nn.counters.get("replication_retries_deferred") == 0

    def test_reregistration_resurrects_through_heal(self):
        h = self._all_replicas_lost()
        nn = h.namenode
        # Partial heal first: ONE daemon restarts with its disk intact and
        # its registration report resurfaces the replica.  The block must
        # leave the lost-set AND re-enter the repair pipeline (a
        # resurrected-but-still-short block that never re-queues is the
        # silent-stall regression).
        first, second = h.hosts()
        h.datanodes[first].start()
        h.sim.run(until=h.sim.now + 30.0)
        assert nn.counters.get("blocks_resurrected") == 1
        assert nn.lost_block_count() == 0
        assert nn.under_replicated_count() == 1
        # Full heal: the second replica resurfaces and the block map is
        # back at steady state.
        h.datanodes[second].start()
        h.sim.run(until=h.sim.now + 30.0)
        assert nn.lost_block_count() == 0
        assert nn.under_replicated_count() == 0
        assert nn.block_info(nn.get_file("/f").blocks[0].block_id) \
                 .live_replica_count == 2


class TestReadFailureAndDiskDeath:
    def test_note_read_failure_triggers_repair(self):
        h = HdfsHarness(n_nodes=4, config=hog_config(
            replication=2, disk_check_interval=None,
            block_report_interval=None))
        fi = h.client().preload_file("/f", 64 * MB)
        nn = h.namenode
        bid = fi.blocks[0].block_id
        bad_host = nn.locate(bid)[0]
        nn.note_read_failure(bid, bad_host)
        assert nn.counters.get("bad_replica_reports") == 1
        assert nn.under_replicated_count() == 1
        h.sim.run(until=h.sim.now + 60.0)
        info = nn.block_info(bid)
        assert info.live_replica_count == 2
        assert nn.counters.get("replications_completed") == 1
        # The corrupt copy was deleted on the datanode (trash path), so
        # its next report cannot re-credit the bad replica.  The host
        # itself may legitimately be re-chosen for the fresh copy.
        assert nn.counters.get("replicas_trashed") == 1

    def test_disk_failure_drives_full_repair_pipeline(self):
        """Injected media death → disk self-check shuts the daemon down →
        heartbeat timeout declares it dead → re-replication streams →
        ``block_received`` restores the target on surviving disks."""
        h = HdfsHarness(n_nodes=4, config=hog_config(
            replication=3, disk_check_interval=60.0,
            block_report_interval=None))
        fi = h.client().preload_file("/f", 64 * MB)
        nn = h.namenode
        bid = fi.blocks[0].block_id
        victim = nn.locate(bid)[0]
        h.datanodes[victim].disk.wipe()
        wait_dead(h, victim, timeout=150.0)
        h.sim.run(until=h.sim.now + 120.0)
        info = nn.block_info(bid)
        assert info.live_replica_count == 3
        assert victim not in info.replicas
        assert not info.pending_targets
        assert nn.counters.get("replications_started") >= 1
        assert nn.counters.get("replications_completed") >= 1
        assert nn.under_replicated_count() == 0
