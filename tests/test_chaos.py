"""Chaos harness (slow tier): randomized fault plans under fixed seeds.

Each case fuzzes a :class:`FaultPlan`, runs the same scenario twice, and
asserts the robustness contract end to end:

- determinism — byte-identical fault streams, event counts, and
  ScenarioResult payloads across the two runs;
- invariants — the runtime checker finds zero violations while the
  faults play out and through the settle phase;
- recovery — a blackout-and-heal run converges back to steady state
  (every surviving block at target, repair machinery drained).
"""

import json

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.grid.site import PAPER_SITE_NAMES
from repro.scenarios import registry
from repro.scenarios.runner import ScenarioRunner

SMOKE = dict(n_nodes=24, scale=0.04)


def chaos_spec(seed, n_events=5, horizon=900.0):
    """A baseline spec carrying a seed-fuzzed fault plan + the checker."""
    spec = registry.build("baseline", seed=seed, **SMOKE)
    spec.faults.plan = FaultPlan.fuzz(
        np.random.default_rng(seed), list(PAPER_SITE_NAMES), horizon,
        n_events=n_events)
    spec.obs.check_invariants = True
    spec.obs.invariant_interval = 120.0
    return spec


@pytest.mark.slow
class TestChaosDeterminism:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_fuzzed_plan_runs_are_byte_identical(self, seed):
        runs = []
        for _ in range(2):
            runner = ScenarioRunner(chaos_spec(seed))
            result = runner.run()
            runs.append({
                "events": result.events,
                "stream": json.dumps(runner.injector.stream),
                "summary": json.dumps(runner.injector.summary()),
                "payload": json.dumps(result.payload(), sort_keys=True),
                "violations": result.invariants["violations"],
            })
            assert result.invariants["violations"] == 0, \
                result.invariants["first_violations"]
        assert runs[0] == runs[1]

    def test_checker_is_decision_free_under_faults(self):
        """Off/on checker runs of the same chaos plan are payload- and
        event-count-identical — the zero-impact contract holds while
        faults are actively reshaping the cluster."""
        results = []
        for enabled in (False, True):
            spec = chaos_spec(seed=7)
            spec.obs.check_invariants = enabled
            spec.obs.invariant_interval = 60.0 if enabled else None
            results.append(ScenarioRunner(spec).run())
        off, on = results
        assert off.events == on.events
        assert off.payload() == on.payload()


@pytest.mark.slow
class TestLongHorizonRecovery:
    def test_blackout_and_heal_converges_to_steady_state(self):
        spec = registry.build("blackout", n_nodes=24, scale=0.1, seed=5)
        runner = ScenarioRunner(spec)
        result = runner.run()
        assert result.failed_jobs == 0
        inj = result.faults["injected"]
        assert inj["fired_site_blackout"] == 1
        assert inj["blackout_pauses"] > 0
        assert inj["blackout_resumes"] == inj["blackout_pauses"]
        conv = result.faults["convergence"]
        assert conv["under_replicated_final"] == 0
        assert conv["lost_blocks_final"] == 0
        assert conv["deferred_final"] == 0
        assert conv["invalidation_backlog_final"] == 0
        assert conv["repl_heap_final"] == 0
        assert result.invariants["violations"] == 0
        # The outage genuinely exercised the repair + reconcile paths:
        # off-site capacity re-replicated the dark site's blocks, the
        # healed daemons re-registered, and the surplus copies were
        # invalidated back down to target.
        nn = runner.system.namenode
        assert nn.counters.get("replications_completed") > 0
        assert nn.counters.get("replicas_invalidated") > 0
        assert nn.counters.get("datanodes_reregistered") > 0 or \
            nn.counters.get("datanodes_registered") > spec.cluster.n_nodes
