"""Tests for site-awareness topology resolution (paper §III-B1)."""

import pytest

from repro.net import (
    DEFAULT_SITE,
    DnsSiteResolver,
    FlatResolver,
    NetworkTopology,
)


class TestDnsSiteResolver:
    def test_paper_rule_last_two_labels(self):
        # "The worker nodes will be separated depending on the last two
        # groups, the site.edu."
        r = DnsSiteResolver()
        assert r.resolve("workername.site.edu") == "site.edu"

    def test_deep_hostname(self):
        r = DnsSiteResolver()
        assert r.resolve("node07.red.hcc.unl.edu") == "unl.edu"

    def test_same_site_same_result(self):
        r = DnsSiteResolver()
        assert r.resolve("a.fnal.gov") == r.resolve("b.fnal.gov") == "fnal.gov"

    def test_short_hostname_falls_back_to_default(self):
        r = DnsSiteResolver()
        assert r.resolve("localhost") == DEFAULT_SITE
        assert r.resolve("site.edu") == DEFAULT_SITE  # no worker label

    def test_trailing_dot_stripped(self):
        r = DnsSiteResolver()
        assert r.resolve("n1.ucsd.edu.") == "ucsd.edu"

    def test_custom_label_count(self):
        r = DnsSiteResolver(labels=3)
        assert r.resolve("n1.t2.mit.edu") == "t2.mit.edu"

    def test_invalid_label_count(self):
        with pytest.raises(ValueError):
            DnsSiteResolver(labels=0)


class TestFlatResolver:
    def test_everything_one_site(self):
        r = FlatResolver("rack0")
        assert r.resolve("a.x.edu") == "rack0"
        assert r.resolve("b.y.gov") == "rack0"


class TestNetworkTopology:
    def test_add_and_lookup(self):
        topo = NetworkTopology()
        site = topo.add_host("n1.unl.edu")
        assert site == "unl.edu"
        assert topo.site_of("n1.unl.edu") == "unl.edu"
        assert topo.knows("n1.unl.edu")

    def test_resolver_invoked_once_per_host(self):
        # The topology script "is executed each time a new node is
        # discovered" — i.e. once, then cached.
        topo = NetworkTopology()
        topo.add_host("n1.unl.edu")
        topo.add_host("n1.unl.edu")
        topo.site_of("n1.unl.edu")
        assert topo.resolutions == 1

    def test_lazy_registration_via_site_of(self):
        topo = NetworkTopology()
        assert topo.site_of("n9.mit.edu") == "mit.edu"
        assert topo.knows("n9.mit.edu")

    def test_same_site(self):
        topo = NetworkTopology()
        assert topo.same_site("a.fnal.gov", "b.fnal.gov")
        assert not topo.same_site("a.fnal.gov", "a.ucsd.edu")

    def test_sites_and_members(self):
        topo = NetworkTopology()
        for h in ["a.fnal.gov", "b.fnal.gov", "c.ucsd.edu"]:
            topo.add_host(h)
        assert topo.sites() == ["fnal.gov", "ucsd.edu"]
        assert sorted(topo.hosts_in("fnal.gov")) == ["a.fnal.gov", "b.fnal.gov"]
        assert topo.num_hosts() == 3

    def test_remove_host(self):
        topo = NetworkTopology()
        topo.add_host("a.fnal.gov")
        topo.add_host("b.fnal.gov")
        topo.remove_host("a.fnal.gov")
        assert not topo.knows("a.fnal.gov")
        assert topo.hosts_in("fnal.gov") == ["b.fnal.gov"]
        topo.remove_host("b.fnal.gov")
        assert topo.sites() == []

    def test_remove_unknown_host_is_noop(self):
        topo = NetworkTopology()
        topo.remove_host("ghost.site.edu")  # must not raise

    def test_hadoop_style_distance(self):
        topo = NetworkTopology()
        assert topo.distance("a.unl.edu", "a.unl.edu") == 0
        assert topo.distance("a.unl.edu", "b.unl.edu") == 2
        assert topo.distance("a.unl.edu", "b.mit.edu") == 4

    def test_five_paper_sites(self):
        # The evaluation restricted execution to 5 OSG sites.
        topo = NetworkTopology()
        sites = ["fnal.gov", "wc1.fnal.gov", "ucsd.edu", "aglt2.org", "mit.edu"]
        for i, s in enumerate(sites):
            topo.add_host(f"worker{i}.{s}")
        # wc1.fnal.gov workers resolve to fnal.gov (last two labels).
        assert len(topo.sites()) == 4
