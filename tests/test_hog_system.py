"""Integration tests for the assembled HOG system."""

import pytest

from repro.core import HOGConfig, HOGSystem, NodeConfig
from repro.grid import GridSiteConfig, SitePolicy
from repro.hdfs import hog_config
from repro.mapreduce import JobSpec, JobStatus, hog_mr_config
from repro.sim import Simulator


def small_config(n_sites=3, capacity=20, preempt_rate=0.0, burst_rate=0.0,
                 seed=1, **kw):
    policy = SitePolicy(preempt_rate=preempt_rate, burst_rate=burst_rate,
                        scheduling_delay_mean=5.0)
    sites = [GridSiteConfig(f"SITE{i}", f"site{i}.edu", capacity, policy)
             for i in range(n_sites)]
    return HOGConfig(sites=sites, seed=seed,
                     negotiation_interval=10.0, **kw)


def make_hog(target=6, **cfg_kwargs):
    sim = Simulator()
    hog = HOGSystem(sim, small_config(**cfg_kwargs))
    hog.start(target)
    return sim, hog


class TestProvisioning:
    def test_nodes_reach_target(self):
        sim, hog = make_hog(target=6)
        t = hog.run_until_nodes(6)
        assert hog.running_nodes() == 6
        assert t > 0  # provisioning takes time (queue + download + start)

    def test_workers_spread_over_sites(self):
        sim, hog = make_hog(target=9, n_sites=3)
        hog.run_until_nodes(9)
        used_sites = {hog.topology.site_of(h) for h in hog.nodes}
        assert len(used_sites) == 3

    def test_datanodes_and_trackers_registered(self):
        sim, hog = make_hog(target=4)
        hog.run_until_nodes(4)
        sim.run(until=sim.now + 10.0)
        assert hog.namenode.num_live_datanodes() == 4
        assert hog.jobtracker.live_tracker_count() == 4

    def test_elastic_grow(self):
        sim, hog = make_hog(target=3)
        hog.run_until_nodes(3)
        hog.set_target(8)
        hog.run_until_nodes(8)
        assert hog.running_nodes() == 8

    def test_elastic_shrink(self):
        sim, hog = make_hog(target=8)
        hog.run_until_nodes(8)
        hog.set_target(3)
        deadline = sim.now + 600.0
        while sim.now < deadline and hog.running_nodes() > 3:
            sim.run(until=sim.now + 10.0)
        assert hog.running_nodes() == 3

    def test_target_capped_by_grid_capacity(self):
        sim, hog = make_hog(target=1000, n_sites=2, capacity=5)
        with pytest.raises(TimeoutError):
            hog.run_until_nodes(11, timeout=2000.0)
        assert hog.running_nodes() == 10  # grid is simply full

    def test_node_series_records_growth(self):
        sim, hog = make_hog(target=5)
        hog.run_until_nodes(5)
        assert hog.node_series.max() == 5
        assert hog.node_series.values[0] == 0


class TestChurn:
    def test_preempted_nodes_replaced(self):
        # Aggressive per-node churn: mean lifetime 200 s.
        sim, hog = make_hog(target=6, preempt_rate=1 / 200.0)
        hog.run_until_nodes(6)
        start = sim.now
        sim.run(until=start + 2000.0)
        assert hog.factory.counters.get("glideins_preempted") > 0
        # The factory kept requesting replacements.
        assert hog.factory.counters.get("glideins_submitted") > 6
        # And the system is still near target.
        assert hog.running_nodes() >= 4

    def test_burst_preemption_hits_one_site(self):
        sim, hog = make_hog(target=9, n_sites=3, burst_rate=1 / 300.0)
        hog.run_until_nodes(9)
        sim.run(until=sim.now + 1500.0)
        assert hog.factory.counters.get("preemption_bursts") >= 1
        assert hog.factory.counters.get("glideins_preempted") >= 1

    def test_believed_count_lags_reality(self):
        # Kill nodes abruptly: masters believe them alive until the 30 s
        # timeout ("fluctuated above 55 momentarily", §IV-B).
        sim, hog = make_hog(target=5)
        hog.run_until_nodes(5)
        sim.run(until=sim.now + 20.0)
        victim = next(iter(hog.nodes.values()))
        victim.preempt(zombie=False)
        kill_time = sim.now
        sim.run(until=kill_time + 10.0)
        assert hog.jobtracker.live_tracker_count() == 5  # still believed
        sim.run(until=kill_time + 60.0)
        assert hog.jobtracker.live_tracker_count() == 4  # detected


class TestWorkloadOnHog:
    def test_job_runs_on_grid(self):
        sim, hog = make_hog(target=6)
        hog.run_until_nodes(6)
        hog.preload_input("/in/j0", n_blocks=6)
        job = hog.submit(JobSpec("grid-job", 6, 2, "/in/j0",
                                 map_cpu_per_block=5.0))
        hog.run_until_jobs_done([job])
        assert job.status == JobStatus.SUCCEEDED

    def test_job_survives_preemption_during_run(self):
        sim, hog = make_hog(target=8, preempt_rate=1 / 400.0, seed=3)
        hog.run_until_nodes(8)
        hog.preload_input("/in/churny", n_blocks=8)
        job = hog.submit(JobSpec("churny", 8, 2, "/in/churny",
                                 map_cpu_per_block=30.0))
        hog.run_until_jobs_done([job], timeout=100_000.0)
        assert job.status == JobStatus.SUCCEEDED

    def test_replication_10_spreads_input(self):
        sim, hog = make_hog(target=12, n_sites=3, capacity=10)
        hog.run_until_nodes(12)
        hog.preload_input("/in/wide", n_blocks=2)
        fi = hog.namenode.get_file("/in/wide")
        for block in fi.blocks:
            locs = hog.namenode.locate(block.block_id)
            assert len(locs) == 10  # replication factor 10 (§III-B1)
            sites = {hog.topology.site_of(x) for x in locs}
            assert len(sites) == 3  # spread over all sites


class TestConfigValidation:
    def test_default_config_valid(self):
        HOGConfig().validate()

    def test_no_sites_rejected(self):
        with pytest.raises(ValueError):
            HOGConfig(sites=[]).validate()

    def test_package_host_forced_to_central(self):
        cfg = HOGConfig()
        cfg.wrapper.package_host = "elsewhere.org"
        cfg.validate()
        assert cfg.wrapper.package_host == cfg.central_host

    def test_total_capacity(self):
        cfg = small_config(n_sites=3, capacity=20)
        assert cfg.total_grid_capacity == 60

    def test_node_config_validation(self):
        with pytest.raises(ValueError):
            NodeConfig(speed_min=2.0, speed_max=1.0).validate()
        with pytest.raises(ValueError):
            NodeConfig(disk_capacity=0).validate()
