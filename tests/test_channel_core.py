"""Tests for the unified max-min fair channel core (`repro.sim.channel`).

The centrepiece is a randomized property test comparing the incremental
engine's allocations against a brute-force O(n²) progressive-filling
reference over random constraint topologies, plus exact-timestamp tests
for multi-bottleneck completions, uniform (virtual-clock) groups, the
slack-constraint shortcut, and per-site partition decoupling.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import FairQueue, Simulator


def reference_max_min(demand_links, capacities):
    """Brute-force progressive filling.

    ``demand_links``: list of constraint-index lists (one per demand).
    ``capacities``: constraint capacities by index.
    Returns the max-min fair rate per demand.
    """
    rates = [0.0] * len(demand_links)
    frozen = [False] * len(demand_links)
    residual = list(capacities)
    while not all(frozen):
        # Fair share offered by each constraint to its unfrozen demands.
        best_share, best_c = None, None
        for c, cap in enumerate(capacities):
            users = [i for i, links in enumerate(demand_links)
                     if not frozen[i] and c in links]
            if not users:
                continue
            share = residual[c] / len(users)
            if best_share is None or share < best_share:
                best_share, best_c = share, c
        if best_c is None:  # unconstrained leftovers (cannot happen here)
            break
        for i, links in enumerate(demand_links):
            if not frozen[i] and best_c in links:
                frozen[i] = True
                rates[i] = best_share
                for c in links:
                    residual[c] -= best_share
    return rates


def start_demands(queue, constraints, demand_links, size=1e9):
    """Submit one large demand per constraint-index list; returns demands."""
    return [queue.submit(size, [constraints[c] for c in links])
            for links in demand_links]


class TestAgainstBruteForceReference:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_topology_allocations_match(self, data):
        n_constraints = data.draw(st.integers(2, 8), label="constraints")
        capacities = data.draw(
            st.lists(st.floats(min_value=10.0, max_value=1000.0),
                     min_size=n_constraints, max_size=n_constraints),
            label="capacities")
        n_demands = data.draw(st.integers(1, 14), label="demands")
        demand_links = [
            sorted(data.draw(
                st.sets(st.integers(0, n_constraints - 1), min_size=1,
                        max_size=min(4, n_constraints)),
                label=f"links{i}"))
            for i in range(n_demands)]

        sim = Simulator()
        queue = FairQueue(sim)
        cons = [queue.constraint(f"c{i}", cap)
                for i, cap in enumerate(capacities)]
        demands = start_demands(queue, cons, demand_links)
        sim.run(until=0.0)  # process the t=0 filling pass only

        expected = reference_max_min(demand_links, capacities)
        for d, want in zip(demands, expected):
            have = d.rate if d._group is None else d._group.share()
            assert have == pytest.approx(want, rel=1e-9), (
                f"{demand_links}: got {[x.rate for x in demands]}, "
                f"want {expected}")

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_arrivals_in_stages_still_match_reference(self, data):
        """Max-min must hold after incremental arrivals, not only for a
        single batch: later arrivals force partial re-rating."""
        caps = data.draw(st.lists(st.floats(50.0, 500.0), min_size=3,
                                  max_size=5), label="caps")
        n = len(caps)
        first = [sorted(data.draw(st.sets(st.integers(0, n - 1), min_size=1,
                                          max_size=2), label=f"f{i}"))
                 for i in range(data.draw(st.integers(1, 5), label="nf"))]
        second = [sorted(data.draw(st.sets(st.integers(0, n - 1), min_size=1,
                                           max_size=2), label=f"s{i}"))
                  for i in range(data.draw(st.integers(1, 5), label="ns"))]

        sim = Simulator()
        queue = FairQueue(sim)
        cons = [queue.constraint(f"c{i}", cap) for i, cap in enumerate(caps)]
        d1 = start_demands(queue, cons, first)
        sim.run(until=0.5)
        d2 = start_demands(queue, cons, second, size=1e9)
        sim.run(until=0.5)  # flush the second filling pass (same instant)

        expected = reference_max_min(first + second, caps)
        for d, want in zip(d1 + d2, expected):
            have = d.rate if d._group is None else d._group.share()
            assert have == pytest.approx(want, rel=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_interleaved_arrivals_departures_match_reference(self, data):
        """Single-demand arrivals and departures — the sub-component
        fast-path surface — interleaved at distinct instants.  After every
        change the live allocation must equal the brute-force reference,
        across slack-bound flips as constraints load up and drain out."""
        caps = data.draw(st.lists(st.floats(20.0, 800.0), min_size=3,
                                  max_size=6), label="caps")
        n = len(caps)
        sim = Simulator()
        q = FairQueue(sim)
        cons = [q.constraint(f"c{i}", cap) for i, cap in enumerate(caps)]
        live = []  # (demand, constraint-index list)
        n_ops = data.draw(st.integers(4, 12), label="ops")
        for op in range(n_ops):
            depart = live and data.draw(st.booleans(), label=f"dep{op}")
            if depart:
                victim = data.draw(st.integers(0, len(live) - 1),
                                   label=f"v{op}")
                d, _ = live.pop(victim)
                q.abort(d, RuntimeError("preempted"))
            else:
                links = sorted(data.draw(
                    st.sets(st.integers(0, n - 1), min_size=1,
                            max_size=min(3, n)), label=f"l{op}"))
                d = q.submit(1e12, [cons[c] for c in links])
                d.done.defused()
                live.append((d, links))
            sim.run(until=sim.now)  # flush any same-instant pass
            expected = reference_max_min([l for _, l in live], caps)
            for (d, _), want in zip(live, expected):
                have = d.rate if d._group is None else d._group.share()
                assert have == pytest.approx(want, rel=1e-9), (
                    f"after op {op}: {[l for _, l in live]}")
            sim.run(until=sim.now + 0.25)  # advance between ops


class TestSubComponentFastPaths:
    """Arrival/departure re-rating without a filling pass, where exact."""

    def test_arrival_rated_from_residuals_without_a_pass(self):
        sim = Simulator()
        q = FairQueue(sim)
        c1 = q.constraint("c1", 100.0)
        c2 = q.constraint("c2", 30.0)
        a = q.submit(1e6, [c1, c2])   # alone: min residual = 30
        b = q.submit(1e6, [c1])       # residual 70 >= a's 30: exact
        sim.run(until=0.0)
        assert q.arrival_fast_paths == 2
        assert q.rebalances == 0
        assert a.rate == pytest.approx(30.0)
        assert b.rate == pytest.approx(70.0)

    def test_arrival_that_must_squeeze_incumbents_takes_a_pass(self):
        sim = Simulator()
        q = FairQueue(sim)
        c1 = q.constraint("c1", 100.0)
        a = q.submit(1e6, [c1])       # fast path: 100 B/s
        b = q.submit(1e6, [c1])       # saturated: must halve a
        sim.run(until=0.0)
        assert q.arrival_fast_paths == 1
        assert q.rebalances == 1
        assert a.rate == pytest.approx(50.0)
        assert b.rate == pytest.approx(50.0)

    def test_departure_that_frees_nobody_skips_the_pass(self):
        """b leaves c1 saturated, but a is pinned by c2 and was strictly
        slower — freeing b's share re-rates nobody, so no pass runs."""
        sim = Simulator()
        q = FairQueue(sim)
        c1 = q.constraint("c1", 100.0)
        c2 = q.constraint("c2", 30.0)
        a = q.submit(1e6, [c1, c2])
        b = q.submit(1e6, [c1])
        sim.run(until=1.0)
        passes = q.rebalances
        q.abort(b, RuntimeError("cancelled"))
        sim.run(until=1.0)
        assert q.departure_fast_paths == 1
        assert q.rebalances == passes
        assert a.rate == pytest.approx(30.0)

    def test_departure_of_the_binding_demand_takes_a_pass(self):
        """a's exit unsaturates c2 and frees c1 capacity b can claim."""
        sim = Simulator()
        q = FairQueue(sim)
        c1 = q.constraint("c1", 100.0)
        c2 = q.constraint("c2", 30.0)
        a = q.submit(1e6, [c1, c2])
        b = q.submit(1e6, [c1])
        sim.run(until=1.0)
        q.abort(a, RuntimeError("cancelled"))
        sim.run(until=1.0)
        assert q.departure_fast_paths == 0
        assert b.rate == pytest.approx(100.0)

    def test_witness_grouped_slack_bound_sees_fanout_sources(self):
        """Many flows fanning out of a few tight source disks cannot fill
        a big WAN leg: the witness-grouped bound (sum of *distinct*
        witness capacities) keeps it provably slack where the per-demand
        sum would have coupled both sides into one component."""
        sim = Simulator()
        q = FairQueue(sim)
        wan = q.constraint("wan", 500.0)
        srcs = [q.constraint(f"src{i}", 100.0) for i in range(3)]
        # 9 flows, 3 per source: per-demand bound 9 x 100 > 500, but the
        # witness-grouped bound is 3 x 100 = 300 < 500 -> wan stays slack.
        flows = [q.submit(1e6, [srcs[i % 3], wan]) for i in range(9)]
        sim.run(until=0.0)
        assert wan.slack
        for f in flows:
            have = f.rate if f._group is None else f._group.share()
            assert have == pytest.approx(100.0 / 3)
        # No pass ever walked through the wan: each source formed its own
        # single-bottleneck component (or group) independently.
        assert q.cross_partition_passes == 0


class TestMultiBottleneckExactTimestamps:
    def test_two_bottlenecks_complete_at_exact_times(self):
        """A(c1) vs B(c1,c2): c2 caps B at 30, A mops up c1's rest."""
        sim = Simulator()
        q = FairQueue(sim)
        c1 = q.constraint("c1", 100.0)
        c2 = q.constraint("c2", 30.0)
        a = q.submit(700.0, [c1])
        b = q.submit(300.0, [c1, c2])
        sim.run(until=a.done)
        assert sim.now == pytest.approx(10.0)  # 700 / 70
        sim.run(until=b.done)
        assert sim.now == pytest.approx(10.0)  # 300 / 30

    def test_freed_capacity_speeds_survivor_at_exact_instant(self):
        """Multi-bottleneck handoff: when A drains, B is still c2-capped,
        but C (c1-only) absorbs the freed bandwidth."""
        sim = Simulator()
        q = FairQueue(sim)
        c1 = q.constraint("c1", 100.0)
        c2 = q.constraint("c2", 20.0)
        a = q.submit(200.0, [c1])       # 40 B/s alongside c
        b = q.submit(100.0, [c1, c2])   # pinned to 20 B/s by c2
        c = q.submit(400.0, [c1])       # 40 B/s, then 80 B/s after a
        sim.run(until=a.done)
        assert sim.now == pytest.approx(5.0)    # 200 / 40
        sim.run(until=b.done)
        assert sim.now == pytest.approx(5.0)    # 100 / 20
        sim.run(until=c.done)
        # c: 5 s at 40 B/s (200 B left), then 200 B at 80 B/s (c2 still
        # holds b? no - b finished at 5.0 too) ... after t=5, c is alone:
        # 200 B at 100 B/s -> 7.0 s total.
        assert sim.now == pytest.approx(7.0)

    def test_three_tier_progressive_fill_timestamps(self):
        sim = Simulator()
        q = FairQueue(sim)
        c1 = q.constraint("c1", 90.0)
        c2 = q.constraint("c2", 10.0)
        c3 = q.constraint("c3", 25.0)
        slow = q.submit(100.0, [c1, c2])    # 10 B/s (c2)
        mid = q.submit(250.0, [c1, c3])     # 25 B/s (c3)
        fast = q.submit(550.0, [c1])        # 90 - 10 - 25 = 55 B/s
        sim.run(until=slow.done)
        assert sim.now == pytest.approx(10.0)
        sim.run(until=mid.done)
        assert sim.now == pytest.approx(10.0)
        sim.run(until=fast.done)
        assert sim.now == pytest.approx(10.0)


class TestUniformGroups:
    def test_flood_forms_group_and_completes_exactly(self):
        """n demands through one bottleneck with private, no-tighter side
        constraints: one virtual clock, exact staggered completions."""
        sim = Simulator()
        q = FairQueue(sim)
        src = q.constraint("src", 100.0)
        privates = [q.constraint(f"p{i}", 100.0) for i in range(4)]
        sizes = [100.0, 200.0, 300.0, 400.0]
        demands = [q.submit(s, [src, privates[i]])
                   for i, s in enumerate(sizes)]
        sim.run(until=0.0)
        assert q.uniform_groups == 1
        assert all(d._group is not None for d in demands)
        done_at = []
        for d in demands:
            sim.run(until=d.done)
            done_at.append(sim.now)
        # 4 flows at 25 each: first done at t=4 (100B); then 3 at 33.3:
        # next at 4 + 100/ (100/3) = 7; then 7 + 100/50 = 9; then 9 + 100/100 = 10.
        assert done_at == pytest.approx([4.0, 7.0, 9.0, 10.0])
        # The whole cascade ran on the group clock: one filling pass.
        assert q.rebalances == 1
        assert q.uniform_completions == 4

    def test_arrival_joins_group_without_a_pass(self):
        sim = Simulator()
        q = FairQueue(sim)
        src = q.constraint("src", 100.0)
        p = [q.constraint(f"p{i}", 100.0) for i in range(3)]
        a = q.submit(1000.0, [src, p[0]])
        b = q.submit(1000.0, [src, p[1]])
        sim.run(until=2.0)
        assert a._group is not None
        passes_before = q.rebalances
        c = q.submit(400.0, [src, p[2]])
        sim.run(until=2.0)
        # The newcomer joined the live group in place: no dissolve, no
        # filling pass, share re-split three ways on the virtual clock.
        assert c._group is not None and c._group is a._group
        assert q.rebalances == passes_before
        assert q.uniform_joins == 1
        assert a._group.share() == pytest.approx(100.0 / 3)
        # a and b drained 100 B each before c arrived.
        assert (a.remaining_now(sim.now) + b.remaining_now(sim.now)
                == pytest.approx(1800.0))

    def test_single_constraint_ops_use_virtual_clock(self):
        """Disk-style ops (one shared constraint) always group."""
        sim = Simulator()
        q = FairQueue(sim)
        ch = q.constraint("disk", 50.0)
        evs = [q.request(100.0, [ch]) for _ in range(5)]
        sim.run(until=sim.all_of(evs))
        assert sim.now == pytest.approx(10.0)  # 500 B / 50 B/s
        assert q.rebalances == 1  # all completions via the clock


class TestSlackShortcut:
    def test_undersubscribed_shared_constraint_does_not_couple(self):
        """Two demands share a big constraint that cannot bind: passes must
        not chain their components through it."""
        sim = Simulator()
        q = FairQueue(sim)
        wan = q.constraint("wan", 1000.0)   # 2 x 100 << 1000: slack
        n1 = q.constraint("n1", 100.0)
        n2 = q.constraint("n2", 100.0)
        a = q.submit(500.0, [n1, wan])
        b = q.submit(1000.0, [n2, wan])
        sim.run(until=0.0)
        # Both arrivals are rated straight from local residuals (the
        # shared wan is provably slack and never saturates): no filling
        # pass at all, and certainly no coupled one.
        assert q.rebalances == 0
        assert q.arrival_fast_paths == 2
        assert a.rate == pytest.approx(100.0)
        assert b.rate == pytest.approx(100.0)
        sim.run(until=a.done)
        assert sim.now == pytest.approx(5.0)
        sim.run(until=b.done)
        assert sim.now == pytest.approx(10.0)

    def test_saturated_shared_constraint_still_couples(self):
        sim = Simulator()
        q = FairQueue(sim)
        wan = q.constraint("wan", 150.0)    # 2 x 100 > 150: can bind
        n1 = q.constraint("n1", 100.0)
        n2 = q.constraint("n2", 100.0)
        a = q.submit(750.0, [n1, wan])
        b = q.submit(750.0, [n2, wan])
        done = sim.all_of([a.done, b.done])
        sim.run(until=done)
        # Max-min: 75 B/s each through the shared wan.
        assert sim.now == pytest.approx(10.0)

    def test_slack_flips_to_binding_when_load_grows(self):
        sim = Simulator()
        q = FairQueue(sim)
        wan = q.constraint("wan", 150.0)
        nics = [q.constraint(f"n{i}", 100.0) for i in range(3)]
        a = q.submit(1000.0, [nics[0], wan])   # alone: slack wan, 100 B/s
        sim.run(until=2.0)
        assert a.remaining_now(sim.now) == pytest.approx(800.0)
        b = q.submit(500.0, [nics[1], wan])
        c = q.submit(500.0, [nics[2], wan])
        sim.run(until=4.0)
        # 3 x 100 > 150: wan binds at 50 B/s each.
        assert a.remaining_now(sim.now) == pytest.approx(800.0 - 2 * 50.0)
        assert b.remaining_now(sim.now) == pytest.approx(500.0 - 2 * 50.0)
        assert c.remaining_now(sim.now) == pytest.approx(500.0 - 2 * 50.0)


class TestPartitionDecoupling:
    def test_intra_partition_churn_is_decoupled_while_wan_idle(self):
        sim = Simulator()
        q = FairQueue(sim)
        a1 = q.constraint("a1", 100.0, partition="siteA")
        a2 = q.constraint("a2", 100.0, partition="siteA")
        b1 = q.constraint("b1", 100.0, partition="siteB")
        q.submit(1000.0, [a1, a2])
        q.submit(1000.0, [b1])
        sim.run(until=0.0)
        assert q.partition_decoupled("siteA")
        assert q.partition_decoupled("siteB")
        assert q.cross_partition_passes == 0

    def test_cross_site_demand_bridges_partitions(self):
        sim = Simulator()
        q = FairQueue(sim)
        a1 = q.constraint("a1", 100.0, partition="siteA")
        wan_a = q.constraint("wanA", 120.0, partition="siteA")
        wan_b = q.constraint("wanB", 120.0, partition="siteB")
        b1 = q.constraint("b1", 100.0, partition="siteB")
        d = q.submit(1000.0, [a1, wan_a, wan_b, b1])
        sim.run(until=0.0)
        assert not q.partition_decoupled("siteA")
        assert not q.partition_decoupled("siteB")
        sim.run(until=d.done)
        # Bridge gone: both sites decoupled again.
        assert q.partition_decoupled("siteA")
        assert q.partition_decoupled("siteB")


class TestGroupCoexistence:
    """Uniform groups surviving member aborts and foreign traffic on
    their span (the delta-leave and pinned-fill paths)."""

    def test_member_abort_leaves_group_without_dissolve(self):
        """Aborting one member re-splits the clock share in place: no
        dissolve, no filling pass, survivors complete at exact times."""
        sim = Simulator()
        q = FairQueue(sim)
        src = q.constraint("src", 100.0)
        privates = [q.constraint(f"p{i}", 100.0) for i in range(4)]
        sizes = [100.0, 200.0, 300.0, 400.0]
        demands = [q.submit(s, [src, privates[i]])
                   for i, s in enumerate(sizes)]
        for d in demands:
            d.done.defused()
        sim.run(until=2.0)
        assert demands[0]._group is not None
        q.abort(demands[0], RuntimeError("preempted"))
        assert q.uniform_leaves == 1
        assert q.rebalances == 1  # formation pass only; the leave was O(log n)
        assert demands[1]._group is not None
        assert demands[1]._group.share() == pytest.approx(100.0 / 3)
        # At t=2 each had drained 50 B; survivors now run the cascade
        # 150/33.3 -> 6.5, then 100/50 -> 8.5, then 100/100 -> 9.5.
        done_at = []
        for d in demands[1:]:
            sim.run(until=d.done)
            done_at.append(sim.now)
        assert done_at == pytest.approx([6.5, 8.5, 9.5])

    def test_foreign_flow_coexists_with_pinned_group(self):
        """A foreign demand sharing a span constraint is rated into the
        residual capacity; the group neither dissolves nor re-rates."""
        sim = Simulator()
        q = FairQueue(sim)
        src = q.constraint("src", 100.0)
        site = q.constraint("site", 250.0)
        privates = [q.constraint(f"p{i}", 100.0) for i in range(4)]
        members = [q.submit(1000.0, [src, site, privates[i]])
                   for i in range(4)]
        sim.run(until=1.0)
        group = members[0]._group
        assert group is not None
        fp = q.constraint("fp", 300.0)
        foreign = q.submit(900.0, [site, fp])
        sim.run(until=1.0)
        # The group survived with the members clock-pinned at 25 B/s;
        # the foreign demand got the site residual 250 - 4*25 = 150.
        assert members[0]._group is group
        assert q.uniform_pins == 1
        assert foreign.rate == pytest.approx(150.0)
        sim.run(until=foreign.done)
        assert sim.now == pytest.approx(1.0 + 900.0 / 150.0)
        for m in members:
            sim.run(until=m.done)
        assert sim.now == pytest.approx(40.0)  # 4000 B / 100 B/s, unperturbed

    def test_arrival_joins_contested_group(self):
        """try_join admits a newcomer while foreign traffic shares the
        span, provided members and the foreign allocation still fit."""
        sim = Simulator()
        q = FairQueue(sim)
        src = q.constraint("src", 100.0)
        site = q.constraint("site", 250.0)
        privates = [q.constraint(f"p{i}", 100.0) for i in range(4)]
        members = [q.submit(1000.0, [src, site, privates[i]])
                   for i in range(4)]
        sim.run(until=1.0)
        group = members[0]._group
        fp = q.constraint("fp", 300.0)
        foreign = q.submit(900.0, [site, fp])
        sim.run(until=2.0)
        joins_before = q.uniform_joins
        p4 = q.constraint("p4", 100.0)
        late = q.submit(1000.0, [src, site, p4])
        sim.run(until=2.0)
        assert late._group is group
        assert q.uniform_joins == joins_before + 1
        assert group.share() == pytest.approx(20.0)
        # The foreign flow still fits in the residual (250 - 5*20 = 150).
        assert foreign.rate == pytest.approx(150.0)

    def test_foreign_squeeze_dissolves_group(self):
        """When joint max-min would push members below the clock share,
        the pin is not exact: the pass dissolves the group and the whole
        component is filled generically."""
        sim = Simulator()
        q = FairQueue(sim)
        src = q.constraint("src", 100.0)
        site = q.constraint("site", 120.0)
        privates = [q.constraint(f"p{i}", 100.0) for i in range(4)]
        members = [q.submit(1000.0, [src, site, privates[i]])
                   for i in range(4)]
        sim.run(until=1.0)
        group = members[0]._group
        assert group is not None
        fp = q.constraint("fp", 300.0)
        foreign = q.submit(900.0, [site, fp])
        sim.run(until=1.0)
        # site fair share 120/5 = 24 < the clock share 25: everyone on
        # the site link equalizes at 24 B/s.  The src-bottlenecked group
        # had to go (the refill may then group everyone on the site).
        assert members[0]._group is not group
        for d in members + [foreign]:
            assert d.rate == pytest.approx(24.0)


class TestLifecycle:
    def test_zero_byte_demand_completes_immediately(self):
        sim = Simulator()
        q = FairQueue(sim)
        c = q.constraint("c", 10.0)
        d = q.submit(0.0, [c])
        assert d.done.triggered
        assert q.active_demands == 0

    def test_negative_size_rejected(self):
        sim = Simulator()
        q = FairQueue(sim)
        c = q.constraint("c", 10.0)
        with pytest.raises(ValueError):
            q.submit(-1.0, [c])

    def test_abort_constraint_fails_all_and_rerates_survivors(self):
        sim = Simulator()
        q = FairQueue(sim)
        shared = q.constraint("shared", 100.0)
        other = q.constraint("other", 100.0)
        doomed = q.submit(1000.0, [shared, other])
        doomed.done.defused()
        survivor = q.submit(500.0, [shared])
        sim.run(until=2.0)
        assert q.abort_constraint(other, RuntimeError("wiped")) == 1
        sim.run(until=survivor.done)
        assert not doomed.done.ok
        # survivor: 2 s at 50 B/s, then 400 B at 100 B/s.
        assert sim.now == pytest.approx(6.0)

    def test_work_conservation_random_sizes(self):
        sim = Simulator()
        q = FairQueue(sim)
        ch = q.constraint("ch", 100.0)
        sizes = [37.0, 240.0, 101.5, 999.0, 5.0]
        evs = [q.request(s, [ch]) for s in sizes]
        sim.run(until=sim.all_of(evs))
        assert sim.now == pytest.approx(sum(sizes) / 100.0)
