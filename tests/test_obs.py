"""Tests for the unified telemetry subsystem (``repro.obs``).

The load-bearing assertion is the **zero-impact contract**: enabling any
combination of registry probes, causal tracing, and engine profiling —
at any sampling cadence — must leave the determinism-guard payload
byte-identical to an instrumentation-free run, including the reported
event count.  The rest covers the registry/probe/tracer primitives, the
Chrome trace export's validity, and the run-diff engine behind
``python -m repro.obs.inspect --diff`` and the bench regression gate.
"""

import json

import pytest

from repro.obs.diff import (Thresholds, diff_records, diff_reports,
                            fast_path_rate, flatten_numeric)
from repro.obs.inspect import main as inspect_main
from repro.obs.registry import Histogram, Registry, trim_hist
from repro.obs.probes import ProbeSet
from repro.obs.trace import CATEGORIES, Tracer
from repro.scenarios import ScenarioRunner, registry
from repro.sim.engine import Simulator
from repro.sim.events import EngineProfile

SMOKE = dict(n_nodes=24, scale=0.04)

#: (label, obs overrides) — the instrumentation configurations the
#: zero-impact contract is asserted across.
OBS_CONFIGS = [
    ("off", {}),
    ("full", {"sample_interval": 7.0, "trace": True,
              "profile_engine": True}),
    ("cadence2", {"sample_interval": 25.0}),
]


def _run(name: str, overrides: dict):
    spec = registry.build(name, seed=42, **SMOKE)
    for key, value in overrides.items():
        setattr(spec.obs, key, value)
    runner = ScenarioRunner(spec)
    result = runner.run()
    return runner, result


@pytest.fixture(scope="module")
def obs_matrix():
    """Each scenario run once per obs configuration (module-cached)."""
    out = {}
    for scenario in ("wan_staging", "churn_heavy"):
        out[scenario] = {label: _run(scenario, overrides)
                         for label, overrides in OBS_CONFIGS}
    return out


class TestZeroImpactContract:
    @pytest.mark.parametrize("scenario", ["wan_staging", "churn_heavy"])
    def test_payloads_byte_identical_across_obs_configs(self, obs_matrix,
                                                        scenario):
        runs = obs_matrix[scenario]
        baseline = json.dumps(runs["off"][1].payload(), sort_keys=True)
        for label, (_, result) in runs.items():
            got = json.dumps(result.payload(), sort_keys=True)
            assert got == baseline, f"payload drift with obs={label}"

    @pytest.mark.parametrize("scenario", ["wan_staging", "churn_heavy"])
    def test_event_counts_identical(self, obs_matrix, scenario):
        runs = obs_matrix[scenario]
        events = {label: result.events
                  for label, (_, result) in runs.items()}
        assert len(set(events.values())) == 1, events

    def test_obs_sections_present_only_when_enabled(self, obs_matrix):
        _, off = obs_matrix["churn_heavy"]["off"]
        _, full = obs_matrix["churn_heavy"]["full"]
        assert off.timelines is None and off.engine is None \
            and off.trace is None
        assert full.timelines and full.engine and full.trace
        assert full.engine["dispatched"] > 0
        assert full.trace["recorded"] > 0

    def test_timelines_sliced_per_phase(self, obs_matrix):
        _, full = obs_matrix["churn_heavy"]["full"]
        # Phases long enough to catch a 7 s cadence tick carry every
        # registered gauge, with sample times inside the phase.
        assert "workload" in full.timelines
        gauges = full.timelines["workload"]
        for name in ("running_nodes", "active_flows", "pending_maps",
                     "event_heap_depth"):
            assert name in gauges
            series = gauges[name]
            assert len(series["t"]) == len(series["v"]) > 0
            assert series["t"] == sorted(series["t"])


class TestChromeExport:
    def test_export_is_valid_and_causal(self, obs_matrix):
        tracer = obs_matrix["churn_heavy"]["full"][0].tracer
        doc = tracer.to_chrome()
        events = doc["traceEvents"]
        assert events, "trace export is empty"
        meta = [e for e in events if e["ph"] == "M"]
        body = [e for e in events if e["ph"] != "M"]
        # Schema: every record fully formed, durations non-negative.
        tids = set()
        for e in body:
            assert e["ph"] in ("X", "i")
            assert isinstance(e["name"], str) and e["cat"] in CATEGORIES
            assert e["pid"] == 1
            assert e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 0
            tids.add(e["tid"])
        # Monotone timestamps (the exporter sorts by (ts, tid)).
        ts = [e["ts"] for e in body]
        assert ts == sorted(ts)
        # Every tid is named by a thread_name metadata record.
        named = {e["tid"] for e in meta
                 if e["args"].get("name")}
        assert tids <= named
        # Causal edges resolve: every parent ref names an exported span.
        ids = {e["args"]["id"] for e in body
               if "args" in e and "id" in e["args"]}
        parents = {e["args"]["parent"] for e in body
                   if "args" in e and "parent" in e["args"]}
        assert parents and parents <= ids
        # The whole document round-trips through JSON.
        json.loads(json.dumps(doc))

    def test_ring_buffer_bounds_and_category_filter(self):
        tracer = Tracer(capacity=10, categories=["task"])
        for i in range(25):
            tracer.span("task", f"t{i}", float(i), float(i + 1), track="h")
            tracer.instant("channel", "pass", float(i), track="ch")
        assert len(tracer) == 10
        assert tracer.recorded == 25
        assert tracer.dropped == 15
        assert tracer.stats()["by_category"] == {"task": 25}
        assert not tracer.wants("channel")
        # Oldest records were evicted; the newest 10 survive.
        assert [r[3] for r in tracer.records()] == \
            [f"t{i}" for i in range(15, 25)]


class TestRegistryPrimitives:
    def test_bind_attrs_and_snapshot(self):
        class Obj:
            hits = 7
            hist = [1, 2, 0, 0]

        reg = Registry()
        reg.bind_attrs("ns", Obj(), ("hits", "hist"),
                       rename={"hits": "fast_hits"})
        reg.bind_snapshot("ns", lambda: {"extra": 3})
        snap = reg.snapshot()
        assert snap == {"ns": {"fast_hits": 7, "hist": [1, 2], "extra": 3}}
        assert reg.namespaces() == ("ns",)

    def test_gauges_and_probes_sample_on_cadence(self):
        sim = Simulator()
        reg = Registry()
        reg.gauge("depth", lambda: len(sim._heap))
        probes = ProbeSet(sim, reg.gauges(), interval=5.0)
        probes.start()
        sim.run(until=22.0)
        probes.stop()
        # Immediate sample at t=0 plus ticks at 5/10/15/20.
        assert probes.samples == 5
        assert probes.events_injected == 4
        series = probes.series["depth"]
        assert list(series.times) == [0.0, 5.0, 10.0, 15.0, 20.0]
        timelines = probes.timelines(max_points=3)
        assert timelines["depth"]["t"] == [0.0, 10.0, 20.0]

    def test_histogram_power_of_two_buckets(self):
        h = Histogram("sizes", n_buckets=5)
        for v in (0, 1, 2, 3, 4, 100):
            h.observe(v)
        assert h.count == 6 and h.total == 110
        # 0→b0, 1→b1, {2,3}→b2, 4→b3, 100 clamps into the last bucket.
        assert h.buckets == [1, 1, 2, 1, 1]
        assert trim_hist([1, 0, 2, 0, 0]) == [1, 0, 2]

    def test_engine_profile_counts_dispatches(self):
        sim = Simulator()
        sim.profile = EngineProfile()

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        done = sim.process(proc())
        sim.timeout(50.0)  # a second pending event, so the heap has depth
        sim.run_until(done, 100.0)
        d = sim.profile.as_dict()
        assert d["dispatched"] >= 3
        assert d["dispatch_by_kind"].get("Timeout", 0) >= 2
        assert d["process_resumes"] >= 2
        assert d["heap_high_water"] >= 1


class TestDiffEngine:
    def _record(self, **over):
        base = {
            "scenario": "baseline", "wall_seconds": 10.0,
            "events_per_second": 100_000, "makespan_seconds": 4000.0,
            "failed_jobs": 0,
            "channel": {"rebalances": 100, "arrival_fast_paths": 700,
                        "departure_fast_paths": 100,
                        "completion_fast_paths": 100},
        }
        base.update(over)
        return base

    def test_clean_pair_not_flagged(self):
        old, new = self._record(), self._record(wall_seconds=11.0)
        entries = diff_records(old, new)
        assert all(e.flag is None for e in entries)

    def test_wall_regression_flagged_only_past_tolerance(self):
        old = self._record()
        entries = diff_records(old, self._record(wall_seconds=16.0))
        flagged = {e.key: e.flag for e in entries if e.flag}
        assert "wall_seconds" in flagged
        entries = diff_records(old, self._record(wall_seconds=14.0))
        assert not [e for e in entries if e.flag]

    def test_eps_floor_and_behaviour_shift(self):
        old = self._record()
        new = self._record(events_per_second=50_000,
                           makespan_seconds=4500.0, failed_jobs=2)
        flags = {e.key: e.flag for e in diff_records(old, new) if e.flag}
        assert "events_per_second" in flags
        assert "makespan_seconds" in flags
        assert "failed_jobs" in flags

    def test_fast_path_rate_derived_and_gated(self):
        flat = flatten_numeric(self._record())
        assert fast_path_rate(flat) == pytest.approx(0.9)
        # Drop the rate by 10 absolute points: flagged.
        worse = self._record(channel={
            "rebalances": 200, "arrival_fast_paths": 700,
            "departure_fast_paths": 100, "completion_fast_paths": 100})
        entries = diff_records(self._record(), worse)
        rate = [e for e in entries if e.key == "fast_path_rate"]
        assert rate and rate[0].flag

    def test_fault_metric_any_increase_flagged(self):
        """Recovery-health leaves get zero tolerance: any increase flags,
        regardless of the ±5% behaviour band."""
        old = self._record(hdfs={"blocks_all_replicas_lost": 0,
                                 "replications_completed": 40})
        new = self._record(hdfs={"blocks_all_replicas_lost": 1,
                                 "replications_completed": 90})
        flags = {e.key: e.flag for e in diff_records(old, new) if e.flag}
        assert flags.get("hdfs.blocks_all_replicas_lost") == \
            "fault metric increased (recovery regression)"
        # More repair traffic is activity, not a regression.
        assert "hdfs.replications_completed" not in flags

    def test_fault_metric_appearing_from_absent_flagged(self):
        """A no-fault scenario suddenly reporting lost blocks must flag
        even one-sided (the old record predates the counter)."""
        old = self._record()
        new = self._record(hdfs={"blocks_all_replicas_lost": 1})
        entries = [e for e in diff_records(old, new)
                   if e.key == "hdfs.blocks_all_replicas_lost"]
        assert entries and entries[0].flag

    def test_fault_metric_decrease_not_flagged(self):
        old = self._record(
            faults={"convergence": {"under_replicated_final": 3}})
        new = self._record(
            faults={"convergence": {"under_replicated_final": 0}})
        assert not [e for e in diff_records(old, new) if e.flag]

    def test_bench_report_shape_and_notes(self):
        old = {"benchmark": "bench_scale_sweep",
               "points": [self._record(nodes=100)],
               "scenarios": {"wan_staging": self._record()}}
        new = {"benchmark": "bench_scale_sweep",
               "points": [self._record(nodes=100, wall_seconds=25.0)],
               "scenarios": {}}
        entries, notes = diff_reports(old, new)
        assert any(e.flag for e in entries
                   if e.key.startswith("points[baseline@100]"))
        assert notes == ["only in old: scenarios[wan_staging]"]


class TestInspectCli:
    def _write(self, tmp_path, name, record):
        p = tmp_path / name
        p.write_text(json.dumps(record))
        return str(p)

    def _result_record(self, **over):
        rec = {
            "schema_version": 2, "scenario": "baseline", "nodes": 24,
            "seed": 0, "scale": 0.04, "makespan_seconds": 4000.0,
            "sim_seconds": 5000.0, "wall_seconds": 2.0, "events": 100000,
            "events_per_second": 50000,
            "phases": [{"name": "ramp", "wall_seconds": 0.5,
                        "sim_seconds": 700.0}],
            "channel": {"rebalances": 10, "arrival_fast_paths": 90,
                        "departure_fast_paths": 0,
                        "completion_fast_paths": 0},
            "control": {"heartbeat_rounds": 42},
            "locality": {}, "preemptions": {}, "failed_jobs": 0,
            "jobs_completed": 7, "node_area": None, "balancer": None,
            "timelines": {"ramp": {"running_nodes":
                                   {"t": [0.0, 50.0, 100.0],
                                    "v": [0.0, 12.0, 24.0]}}},
            "engine": None, "trace": None,
        }
        rec.update(over)
        return rec

    def test_render_single_result(self, tmp_path, capsys):
        path = self._write(tmp_path, "r.json", self._result_record())
        assert inspect_main([path]) == 0
        out = capsys.readouterr().out
        assert "scenario 'baseline'" in out
        assert "[channel]" in out and "heartbeat_rounds" in out
        assert "running_nodes" in out  # the timeline plot rendered

    def test_diff_flags_injected_regression(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", self._result_record())
        new = self._write(tmp_path, "new.json", self._result_record(
            makespan_seconds=5000.0, events_per_second=20000))
        assert inspect_main([new, "--diff", old]) == 1
        out = capsys.readouterr().out
        assert "behaviour shift" in out
        assert "events/s below" in out

    def test_diff_clean_pair_exits_zero(self, tmp_path):
        old = self._write(tmp_path, "old.json", self._result_record())
        new = self._write(tmp_path, "new.json",
                          self._result_record(wall_seconds=2.2))
        assert inspect_main([new, "--diff", old]) == 0

    def test_diff_threshold_knobs_apply(self, tmp_path):
        old = self._write(tmp_path, "old.json", self._result_record())
        # +10% wall: clean at the default ±50%, flagged at ±5%.
        new = self._write(tmp_path, "new.json",
                          self._result_record(wall_seconds=2.2))
        assert inspect_main([new, "--diff", old,
                             "--wall-tolerance", "0.05"]) == 1
