"""Tests for the declarative scenario subsystem (spec / registry / runner /
CLI) plus the determinism guard."""

import json

import numpy as np
import pytest

from repro.grid.preemption import PreemptionEvent, PreemptionTrace
from repro.grid.site import PAPER_SITE_DOMAINS, PAPER_SITE_NAMES, SitePolicy
from repro.mapreduce.job import JobSpec
from repro.scenarios import (
    ClusterSpec,
    FaultSpec,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
    registry,
    run_specs_parallel,
)
from repro.scenarios.run import main as cli_main
from repro.workload.schedule import ScheduledJob, SubmissionSchedule

ALL_SCENARIOS = ("baseline", "contended", "wan_staging", "hetero_tiers",
                 "rebalance_under_load", "churn_heavy")

#: Tiny sizing shared by every end-to-end test in this file.
SMOKE = dict(n_nodes=24, scale=0.04)


class TestRegistry:
    def test_all_builtins_registered(self):
        assert set(ALL_SCENARIOS) <= set(registry.names())

    def test_descriptions_are_one_liners(self):
        for name, desc in registry.describe().items():
            assert desc and "\n" not in desc, name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            registry.build("nonsense")

    def test_builders_honour_overrides(self):
        spec = registry.build("baseline", n_nodes=17, scale=0.5, seed=9)
        assert spec.cluster.n_nodes == 17
        assert spec.workload.scale == 0.5
        assert spec.seed == 9

    def test_contended_is_disk_throttled_and_shuffle_heavy(self):
        from repro.scenarios import calibration
        spec = registry.build("contended")
        base = calibration.default_loadgen()
        assert spec.cluster.node.disk_read_rate < 90e6
        assert spec.workload.loadgen.map_output_ratio > base.map_output_ratio

    def test_wan_staging_caps_every_site_uplink(self):
        spec = registry.build("wan_staging")
        for domain in PAPER_SITE_DOMAINS:
            assert spec.cluster.uplink_caps[domain] < 1250e6

    def test_hetero_tiers_mixes_disk_speeds(self):
        spec = registry.build("hetero_tiers")
        rates = {n.disk_read_rate for n in spec.cluster.site_tiers.values()}
        assert len(rates) >= 2  # at least two distinct tiers

    def test_rebalance_scenario_grows_and_balances(self):
        spec = registry.build("rebalance_under_load", n_nodes=20)
        assert spec.grow_to > 20
        assert spec.balance_during_run

    def test_churn_heavy_trace_is_sorted_and_sited(self):
        spec = registry.build("churn_heavy")
        trace = spec.faults.trace
        assert len(trace) > 0
        times = [e.time for e in trace.events]
        assert times == sorted(times)
        assert all(e.site in PAPER_SITE_NAMES for e in trace.events)


class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_registry_specs_round_trip(self, name):
        spec = registry.build(name, n_nodes=30, scale=0.1, seed=3)
        d = spec.to_dict()
        clone = ScenarioSpec.from_dict(d)
        assert clone.to_dict() == d
        # And through actual JSON text.
        assert ScenarioSpec.from_json(spec.to_json()).to_dict() == d

    def test_explicit_schedule_round_trips(self):
        sched = SubmissionSchedule(
            [ScheduledJob(0.0, JobSpec("j0", 2, 1, "/in/a"), 1),
             ScheduledJob(5.0, JobSpec("j1", 4, 2, "/in/b"), 2)],
            {"/in/a": 2, "/in/b": 4})
        spec = ScenarioSpec(name="pinned",
                            workload=WorkloadSpec(schedule=sched))
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert len(clone.workload.schedule) == 2
        assert clone.workload.schedule.inputs == sched.inputs
        assert clone.workload.schedule.jobs[1].spec.num_maps == 4

    def test_trace_round_trips(self):
        trace = PreemptionTrace([PreemptionEvent(10.0, "UCSDT2", 2, True)])
        spec = ScenarioSpec(name="t", faults=FaultSpec(trace=trace))
        clone = ScenarioSpec.from_dict(spec.to_dict())
        ev = clone.faults.trace.events[0]
        assert (ev.time, ev.site, ev.count, ev.zombie) == \
            (10.0, "UCSDT2", 2, True)

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", scheduler="cosmic").validate()
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", cluster=ClusterSpec(n_nodes=10),
                         grow_to=5).validate()
        with pytest.raises(ValueError):
            ScenarioSpec(name="x",
                         workload=WorkloadSpec(scale=1.5)).validate()
        with pytest.raises(ValueError):
            ScenarioSpec(name="").validate()


class TestRunnerConfig:
    """build_config resolves specs without running anything."""

    def test_wan_caps_reach_the_fabric(self):
        cfg = ScenarioRunner(registry.build("wan_staging")).build_config()
        assert cfg.fabric.site_uplink_overrides["fnal.gov"] == 150e6

    def test_site_tiers_reach_the_hog_config(self):
        cfg = ScenarioRunner(registry.build("hetero_tiers")).build_config()
        assert set(cfg.site_nodes) == set(
            registry.build("hetero_tiers").cluster.site_tiers)

    def test_scheduler_choice_overrides_mr_config(self):
        spec = registry.build("baseline")
        spec.scheduler = "delay"
        cfg = ScenarioRunner(spec).build_config()
        assert cfg.mr.scheduler == "delay"

    def test_trace_without_policy_means_churn_free_sites(self):
        spec = ScenarioSpec(
            name="t", faults=FaultSpec(trace=PreemptionTrace(
                [PreemptionEvent(10.0, PAPER_SITE_NAMES[0])])))
        cfg = ScenarioRunner(spec).build_config()
        for site in cfg.sites:
            assert site.policy.preempt_rate == 0.0
            assert site.policy.burst_rate == 0.0

    def test_grow_to_sizes_the_grid(self):
        spec = registry.build("rebalance_under_load", n_nodes=20)
        cfg = ScenarioRunner(spec).build_config()
        assert cfg.total_grid_capacity >= spec.grow_to

    def test_uplink_caps_apply_to_wan_links(self):
        """The override must reach the actual Link capacity."""
        from repro.net.fabric import FabricConfig, NetworkFabric
        from repro.net.topology import DnsSiteResolver, NetworkTopology
        from repro.sim.engine import Simulator
        fab = NetworkFabric(
            Simulator(), NetworkTopology(DnsSiteResolver()),
            FabricConfig(site_uplink_overrides={"slow.edu": 10e6}))
        assert fab._wan("slow.edu", "tx").capacity == 10e6
        assert fab._wan("fast.edu", "tx").capacity == 1250e6


class TestRunnerEndToEnd:
    def test_rebalance_under_load_runs_all_phases(self):
        spec = registry.build("rebalance_under_load", seed=5, **SMOKE)
        runner = ScenarioRunner(spec)
        result = runner.run()
        phase_names = [p.name for p in result.phases]
        assert phase_names[:3] == ["ramp", "preload", "grow"]
        assert "workload" in phase_names
        assert result.failed_jobs == 0
        assert result.jobs_completed > 0
        # The concurrent balancer genuinely moved data off the preloaded
        # nodes while jobs ran.
        assert result.balancer is not None
        assert result.balancer["moved_blocks"] > 0
        # Growth happened: more workers started than the initial target.
        assert result.preemptions["glideins_started"] >= spec.grow_to

    def test_result_json_is_self_describing(self):
        spec = registry.build("hetero_tiers", seed=2, **SMOKE)
        result = ScenarioRunner(spec).run()
        record = json.loads(result.to_json())
        for key in ("schema_version", "scenario", "makespan_seconds",
                    "sim_seconds", "events", "phases", "channel",
                    "locality", "preemptions", "failed_jobs",
                    "timelines", "engine", "trace"):
            assert key in record
        assert record["schema_version"] == 3
        assert record["scenario"] == "hetero_tiers"
        assert record["channel"]["rebalances"] > 0
        assert record["events"] > 0


class TestDeterminismGuard:
    """Same spec + same seed ⇒ identical event counts and payloads."""

    @pytest.mark.parametrize("name", ["wan_staging", "churn_heavy"])
    def test_same_seed_same_payload(self, name):
        results = []
        for _ in range(2):
            runner = ScenarioRunner(registry.build(name, seed=42, **SMOKE))
            result = runner.run()
            results.append((result.events, result.payload()))
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]

    def test_serial_and_parallel_payloads_byte_identical(self):
        """A multiprocessing sweep must be simulation-identical to the
        serial loop: same spec, same seed, byte-identical payload JSON
        (only wall-clock fields may differ across the two paths)."""
        spec = registry.build("baseline", seed=42, **SMOKE)

        serial = ScenarioRunner(spec).run()
        # Two copies through a real two-worker pool (a single spec would
        # degrade to the in-process fallback and test nothing).
        parallel_recs = run_specs_parallel([spec, spec], workers=2)

        def payload_bytes(record: dict) -> bytes:
            d = dict(record)
            d.pop("wall_seconds")
            d.pop("events_per_second")
            # Telemetry sections vary with obs settings, not the sim.
            d.pop("timelines")
            d.pop("engine")
            d.pop("trace")
            d.pop("invariants")
            d["phases"] = [{"name": p["name"],
                            "sim_seconds": p["sim_seconds"]}
                           for p in d["phases"]]
            return json.dumps(d, sort_keys=True).encode()

        for rec in parallel_recs:
            assert payload_bytes(rec) == payload_bytes(serial.to_dict())
        # And the reduced dict agrees with ScenarioResult.payload().
        assert json.loads(payload_bytes(parallel_recs[0])) == \
            json.loads(json.dumps(serial.payload(), sort_keys=True))


class TestCli:
    def test_list_prints_catalogue(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_SCENARIOS:
            assert name in out

    def test_show_spec_emits_valid_json(self, capsys):
        assert cli_main(["churn_heavy", "--show-spec"]) == 0
        spec = ScenarioSpec.from_json(capsys.readouterr().out)
        assert spec.name == "churn_heavy"

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["not-a-scenario"])

    def test_smoke_run_writes_result_json(self, tmp_path):
        out = tmp_path / "result.json"
        assert cli_main(["baseline", "--smoke", "--output", str(out)]) == 0
        record = json.loads(out.read_text())
        assert record["scenario"] == "baseline"
        assert record["failed_jobs"] == 0
        assert record["events"] > 0
        assert [p["name"] for p in record["phases"]] == \
            ["ramp", "preload", "workload"]
