"""Tests for the scheduler family: FIFO (HOG's choice), delay scheduling
[3], and matchmaking [20]."""

import pytest

from repro.mapreduce import (
    DelayScheduler,
    FifoScheduler,
    JobStatus,
    MatchmakingScheduler,
    MRConfig,
)

from helpers import MRHarness


def harness_with(scheduler_factory, n_nodes=4, n_sites=2, **mr_kwargs):
    cfg = MRConfig(**mr_kwargs)
    h = MRHarness(n_nodes=n_nodes, n_sites=n_sites, mr_config=cfg)
    # Swap the scheduler in place (same jobtracker).
    h.jobtracker.scheduler = scheduler_factory(h.jobtracker)
    return h


class TestDelayScheduler:
    def test_job_completes(self):
        h = harness_with(DelayScheduler)
        job = h.submit("dj", num_maps=6, num_reduces=2)
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED

    def test_multiple_jobs_complete(self):
        h = harness_with(DelayScheduler)
        jobs = [h.submit(f"dj{i}", num_maps=4, num_reduces=1)
                for i in range(4)]
        h.run_to_completion(jobs)
        assert all(j.status == JobStatus.SUCCEEDED for j in jobs)

    def test_waits_for_locality(self):
        # One job whose input lives only on node B; tracker A heartbeats
        # first.  Delay scheduling should hold the task for B.
        h = harness_with(DelayScheduler, n_nodes=2, n_sites=2)
        sched = h.jobtracker.scheduler
        sched.node_local_delay = 1e9  # never settle for non-local
        hosts = h.hosts()
        target = hosts[1]
        fi = h.namenode.create_file("/pinned", h.hdfs_config.block_size)
        h.datanodes[target].add_block_instant(fi.blocks[0])
        from repro.mapreduce import JobSpec
        job = h.jobtracker.submit_job(JobSpec("pin", 1, 0, "/pinned"))
        h.run_to_completion([job])
        assert job.maps[0].completed_on == target
        assert job.locality_counters["data_local"] == 1

    def test_eventually_settles_for_remote(self):
        h = harness_with(DelayScheduler, n_nodes=2, n_sites=2)
        sched = h.jobtracker.scheduler
        sched.node_local_delay = 5.0
        sched.site_local_delay = 5.0
        # Input exists only as namenode metadata on a node we then kill —
        # no tracker will ever be local.
        hosts = h.hosts()
        fi = h.namenode.create_file("/gone", h.hdfs_config.block_size)
        h.datanodes[hosts[0]].add_block_instant(fi.blocks[0])
        from repro.mapreduce import JobSpec
        job = h.jobtracker.submit_job(JobSpec("settle", 1, 0, "/gone"))
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED


class TestMatchmakingScheduler:
    def test_job_completes(self):
        h = harness_with(MatchmakingScheduler)
        job = h.submit("mm", num_maps=6, num_reduces=2)
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED

    def test_multiple_jobs_complete(self):
        h = harness_with(MatchmakingScheduler)
        jobs = [h.submit(f"mm{i}", num_maps=4, num_reduces=1)
                for i in range(4)]
        h.run_to_completion(jobs)
        assert all(j.status == JobStatus.SUCCEEDED for j in jobs)

    def test_node_marked_then_served(self):
        # With no local task anywhere, a node is refused once (marker)
        # and served a remote task on the next heartbeat.
        h = harness_with(MatchmakingScheduler, n_nodes=2, n_sites=2)
        hosts = h.hosts()
        fi = h.namenode.create_file("/only-meta", h.hdfs_config.block_size)
        h.datanodes[hosts[0]].add_block_instant(fi.blocks[0])
        from repro.mapreduce import JobSpec
        job = h.jobtracker.submit_job(JobSpec("mark", 1, 0, "/only-meta"))
        h.run_to_completion([job])
        assert job.status == JobStatus.SUCCEEDED

    def test_all_jobs_get_local_chance(self):
        # Matchmaking scans every job for locality, not just the head:
        # job2's local task on an otherwise busy node must launch locally.
        h = harness_with(MatchmakingScheduler, n_nodes=3, n_sites=3)
        j1 = h.submit("head", num_maps=3, num_reduces=0,
                      map_cpu_per_block=30.0)
        j2 = h.submit("tail", num_maps=3, num_reduces=0,
                      map_cpu_per_block=30.0)
        h.run_to_completion([j1, j2])
        total2 = sum(j2.locality_counters.values())
        assert j2.locality_counters["data_local"] >= total2 * 0.5


class TestLocalityComparison:
    @pytest.mark.slow
    def test_delay_scheduling_improves_locality_over_fifo(self):
        # Few replicas + several jobs: FIFO launches non-local maps
        # eagerly; delay scheduling waits and gets better locality.
        from repro.hdfs import HdfsConfig

        def run(factory):
            h = MRHarness(n_nodes=6, n_sites=3,
                          hdfs_config=HdfsConfig(replication=1),
                          mr_config=MRConfig())
            h.jobtracker.scheduler = factory(h.jobtracker)
            jobs = [h.submit(f"j{i}", num_maps=6, num_reduces=1,
                             map_cpu_per_block=8.0) for i in range(4)]
            h.run_to_completion(jobs)
            local = sum(j.locality_counters["data_local"] for j in jobs)
            total = sum(sum(j.locality_counters.values()) for j in jobs)
            return local / total

        fifo = run(FifoScheduler)
        delay = run(DelayScheduler)
        assert delay >= fifo


class TestMatchmakingMarkerReset:
    """Regression: locality markers must track *submissions*, not
    ``len(jobs)``.

    The old reset keyed off the active-job count, so a job finishing
    cleared every marker (count changed — nodes lost their earned right
    to a non-local task), while a submit landing at the same instant as
    a finish cleared none (count unchanged — the fresh job never got its
    locality grace round).  Both tests fail against that code.
    """

    def _harness(self):
        h = harness_with(MatchmakingScheduler, n_nodes=2, n_sites=2)
        return h, h.jobtracker.scheduler

    def test_job_finish_keeps_markers(self):
        h, sched = self._harness()
        j1 = h.submit("m1", num_maps=1, num_reduces=0)
        h.submit("m2", num_maps=1, num_reduces=0)
        sched._maybe_reset_markers()  # sync to the two submissions
        sched._marker["node000.site0.edu"] = True
        h.jobtracker._fail_job(j1, "test: job departs, no new submission")
        sched._maybe_reset_markers()  # len(jobs) changed; submit seq did not
        assert sched._marker == {"node000.site0.edu": True}

    def test_submit_coinciding_with_finish_clears_markers(self):
        h, sched = self._harness()
        j1 = h.submit("m1", num_maps=1, num_reduces=0)
        sched._maybe_reset_markers()
        sched._marker["node000.site0.edu"] = True
        h.jobtracker._fail_job(j1, "test: departs as another job arrives")
        h.submit("m2", num_maps=1, num_reduces=0)  # len(jobs) is back to 1
        sched._maybe_reset_markers()
        assert sched._marker == {}
