"""Fast-tier coverage for the scale-sweep benchmark harness.

Runs ``bench_scale_sweep.py --smoke`` (one tiny point per scenario) so the
benchmark script itself — argument parsing, both workload scenarios, the
channel-core stats it records, and the JSON report shape — cannot rot
between the real (slow) sweeps.
"""

import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench_module():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_scale_sweep
        return bench_scale_sweep
    finally:
        sys.path.remove(str(BENCH_DIR))


class TestSmokeMode:
    def test_smoke_sweep_runs_both_scenarios(self, tmp_path):
        bench = _load_bench_module()
        out = tmp_path / "report.json"
        assert bench.main(["--smoke", "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "bench_scale_sweep"
        assert len(report["points"]) == 1
        assert len(report["contended_points"]) == 1

        base = report["points"][0]
        cont = report["contended_points"][0]
        assert base["scenario"] == "baseline"
        assert cont["scenario"] == "contended"
        for record in (base, cont):
            assert record["failed_jobs"] == 0
            assert record["events"] > 0
            assert record["fabric_rebalances"] > 0
            assert record["workload_response_seconds"] > 0
            # Periodic datanode block reports must actually carry replicas
            # (the counter sat at zero while reports only fired at
            # registration, when nodes are still empty).
            assert record["control"]["nn_block_reports"] > 0
            assert record["control"]["nn_block_report_blocks"] > 0
            # Channel-core fast paths: arrivals rated without a filling
            # pass, and the pass-size histogram carries every pass taken.
            assert record["arrival_fast_paths"] > 0
            assert record["completion_fast_paths"] > 0
            assert sum(record["pass_size_hist"]) > 0
        # The contended scenario doubles the shuffled bytes on half-speed
        # disks: it must produce strictly more concurrent demand pressure.
        assert cont["peak_demands"] >= base["peak_demands"]

        # The per-scenario coverage section: every registry scenario that
        # the sweep itself does not already exercise gets a full
        # ScenarioResult record.
        section = report["scenarios"]
        assert set(section) >= {"wan_staging", "hetero_tiers",
                                "rebalance_under_load", "churn_heavy",
                                "blackout", "flaky_wan"}
        for name, record in section.items():
            assert record["scenario"] == name
            assert record["events"] > 0
            assert record["makespan_seconds"] > 0
            assert [p["name"] for p in record["phases"]][:2] == \
                ["ramp", "preload"]
        # rebalance_under_load must really have balanced under load.
        assert section["rebalance_under_load"]["balancer"]["moved_blocks"] > 0

        # The fault scenarios ran their plans and recovered to steady
        # state: every surviving block back at target, repair machinery
        # drained, zero invariant violations.
        for name in ("blackout", "flaky_wan"):
            record = section[name]
            assert record["faults"]["injected"]["events_fired"] > 0
            conv = record["faults"]["convergence"]
            assert conv["under_replicated_final"] == 0
            assert conv["deferred_final"] == 0
            assert conv["invalidation_backlog_final"] == 0
            assert record["invariants"]["violations"] == 0

        # Each sweep point carries the obs sections the diff/inspect
        # tooling reads: the full registry snapshot and sampled per-phase
        # gauge timelines.
        assert base["registry"]["channel"]["rebalances"] == \
            base["fabric_rebalances"]
        assert base["registry"]["control"] == base["control"]
        assert base["timelines"]
        workload = base["timelines"].get("workload", {})
        assert "running_nodes" in workload and "active_flows" in workload
        for record in section.values():
            assert record["schema_version"] == 3

        # --check-against: a self-diff gates clean ...
        import argparse
        ns = argparse.Namespace(check_against=out, check_wall_tolerance=None,
                                check_eps_floor=None,
                                check_fastpath_drop=None)
        assert bench._check_against(ns, report) == 0
        # ... while an injected throughput regression (baseline claims 10x
        # the fresh events/s) trips the floor and exits non-zero.
        tampered = json.loads(out.read_text())
        tampered["points"][0]["events_per_second"] *= 10
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(tampered))
        ns.check_against = baseline
        assert bench._check_against(ns, report) == 1

    def test_contended_scenario_is_disk_throttled(self):
        bench = _load_bench_module()
        node = bench.contended_node()
        default_read = 90e6
        assert node.disk_read_rate < default_read
        loadgen = bench.contended_loadgen()
        base = bench.calibration.default_loadgen()
        assert loadgen.map_output_ratio > base.map_output_ratio
