"""Unit tests for the cluster pending index (the PR 6 scheduler layer)."""

import pytest

from repro.hdfs.namenode import HdfsError
from repro.mapreduce.pending_index import JobLocalityIndex

from helpers import MRHarness


class TestLocalityBuildErrors:
    """``namenode.locate`` failures during index construction.

    Only :class:`HdfsError` (the block genuinely has no locations any
    more) is an expected condition — the map degrades to no locality
    preference and the event is counted.  Anything else is a bug in the
    metadata path and must propagate, not be silently eaten.
    """

    def test_hdfs_error_degrades_and_counts(self):
        h = MRHarness(n_nodes=3, n_sites=2)
        job = h.submit("lj", num_maps=2, num_reduces=0)

        def all_replicas_lost(block_id):
            raise HdfsError(f"no live replicas of {block_id}")

        h.namenode.locate = all_replicas_lost
        idx = JobLocalityIndex(job, h.jobtracker)
        assert idx.host_maps == {}
        assert idx.site_maps == {}
        assert idx.locations == {}
        assert h.jobtracker.counters.get(
            "map_input_blocks_unlocatable") == 2

    def test_unexpected_error_propagates(self):
        h = MRHarness(n_nodes=3, n_sites=2)
        job = h.submit("lj", num_maps=2, num_reduces=0)

        def metadata_bug(block_id):
            raise RuntimeError("bug, not an HDFS condition")

        h.namenode.locate = metadata_bug
        with pytest.raises(RuntimeError):
            JobLocalityIndex(job, h.jobtracker)
        assert h.jobtracker.counters.get(
            "map_input_blocks_unlocatable") == 0

    def test_healthy_build_has_locations(self):
        h = MRHarness(n_nodes=3, n_sites=2)
        job = h.submit("lj", num_maps=2, num_reduces=0)
        idx = JobLocalityIndex(job, h.jobtracker)
        assert len(idx.locations) == 2
        assert idx.host_maps
