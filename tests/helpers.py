"""Shared fixtures/builders for the test suite."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.hdfs import Datanode, HdfsClient, HdfsConfig, Namenode, SiteAwarePolicy
from repro.mapreduce import JobSpec, JobTracker, MRConfig, TaskTracker
from repro.net import DnsSiteResolver, FabricConfig, NetworkFabric, NetworkTopology
from repro.sim import Simulator
from repro.storage import Disk


class HdfsHarness:
    """A small in-memory HDFS cluster for unit/integration tests."""

    def __init__(self, n_nodes: int = 6, n_sites: int = 3,
                 config: Optional[HdfsConfig] = None,
                 disk_capacity: float = 100e9,
                 fabric_config: Optional[FabricConfig] = None,
                 shared_channel: bool = False,
                 seed: int = 7) -> None:
        self.sim = Simulator()
        self.topology = NetworkTopology(DnsSiteResolver())
        self.fabric = NetworkFabric(
            self.sim, self.topology,
            fabric_config or FabricConfig(
                nic_bandwidth=100e6, site_uplink_bandwidth=500e6,
                intra_site_latency=0.0005, inter_site_latency=0.04))
        self.config = config or HdfsConfig()
        #: True = disks drain through the fabric's channel (the HOG worker
        #: wiring), enabling joint disk+network streaming demands.
        self.shared_channel = shared_channel
        rng = np.random.default_rng(seed)
        self.namenode = Namenode(
            self.sim, self.topology,
            SiteAwarePolicy(self.topology, rng), self.config)
        self.namenode.start()
        self.datanodes: Dict[str, Datanode] = {}
        self.disk_capacity = disk_capacity
        for i in range(n_nodes):
            site = f"site{i % n_sites}.edu"
            self.add_datanode(f"node{i:03d}.{site}")

    def add_datanode(self, host: str, read_rate: float = 90e6,
                     write_rate: float = 70e6) -> Datanode:
        kwargs = {}
        if self.shared_channel:
            kwargs = dict(channel=self.fabric.channel,
                          partition=self.topology.site_of(host))
        disk = Disk(self.sim, host, self.disk_capacity,
                    read_rate, write_rate, **kwargs)
        dn = Datanode(self.sim, host, disk, self.fabric, self.namenode, self.config)
        dn.start()
        self.datanodes[host] = dn
        return dn

    def client(self, host: Optional[str] = None) -> HdfsClient:
        return HdfsClient(self.sim, self.namenode, self.fabric,
                          host or "central.unl.edu")

    def hosts(self) -> List[str]:
        return sorted(self.datanodes)

    def run(self, until=None) -> None:
        self.sim.run(until=until)


class MRHarness:
    """A small full-stack cluster: each node runs a datanode + tasktracker
    sharing one local disk (the HOG worker-node shape)."""

    def __init__(self, n_nodes: int = 6, n_sites: int = 3,
                 hdfs_config: Optional[HdfsConfig] = None,
                 mr_config: Optional[MRConfig] = None,
                 map_slots: int = 1, reduce_slots: int = 1,
                 disk_capacity: float = 200e9,
                 fabric_config: Optional[FabricConfig] = None,
                 seed: int = 7) -> None:
        self.sim = Simulator()
        self.topology = NetworkTopology(DnsSiteResolver())
        self.fabric = NetworkFabric(
            self.sim, self.topology,
            fabric_config or FabricConfig(
                nic_bandwidth=100e6, site_uplink_bandwidth=500e6,
                intra_site_latency=0.0005, inter_site_latency=0.04))
        self.hdfs_config = hdfs_config or HdfsConfig()
        self.mr_config = mr_config or MRConfig()
        rng = np.random.default_rng(seed)
        self.namenode = Namenode(self.sim, self.topology,
                                 SiteAwarePolicy(self.topology, rng),
                                 self.hdfs_config)
        self.namenode.start()
        self.jobtracker = JobTracker(self.sim, self.namenode, self.topology,
                                     self.mr_config)
        self.jobtracker.start()
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.disk_capacity = disk_capacity
        self.datanodes: Dict[str, Datanode] = {}
        self.tasktrackers: Dict[str, TaskTracker] = {}
        self.disks: Dict[str, Disk] = {}
        for i in range(n_nodes):
            site = f"site{i % n_sites}.edu"
            self.add_node(f"node{i:03d}.{site}")

    def add_node(self, host: str, speed: float = 1.0) -> None:
        disk = Disk(self.sim, host, self.disk_capacity)
        dn = Datanode(self.sim, host, disk, self.fabric, self.namenode,
                      self.hdfs_config)
        dn.start()
        tt = TaskTracker(self.sim, host, disk, self.fabric, self.namenode,
                         self.jobtracker, self.map_slots, self.reduce_slots,
                         speed, self.mr_config)
        tt.start()
        self.disks[host] = disk
        self.datanodes[host] = dn
        self.tasktrackers[host] = tt

    def preempt_node(self, host: str, zombie: bool = False) -> None:
        """Site preemption: kill (or zombify) both daemons on a node."""
        if zombie:
            self.disks[host].wipe()
            self.datanodes[host].make_zombie()
            self.tasktrackers[host].make_zombie()
        else:
            self.datanodes[host].kill()
            self.tasktrackers[host].kill()

    def client(self, host: Optional[str] = None) -> HdfsClient:
        return HdfsClient(self.sim, self.namenode, self.fabric,
                          host or "central.unl.edu")

    def submit(self, name: str = "job", num_maps: int = 2, num_reduces: int = 1,
               input_file: Optional[str] = None, **spec_kwargs):
        """Preload an input file sized for ``num_maps`` blocks and submit."""
        from repro.hdfs.config import MB
        input_file = input_file or f"/in/{name}"
        if not self.namenode.exists(input_file):
            self.client().preload_file(input_file,
                                       num_maps * self.hdfs_config.block_size)
        spec = JobSpec(name=name, num_maps=num_maps, num_reduces=num_reduces,
                       input_file=input_file, **spec_kwargs)
        return self.jobtracker.submit_job(spec)

    def hosts(self) -> List[str]:
        return sorted(self.tasktrackers)

    def run(self, until=None) -> None:
        self.sim.run(until=until)

    def run_to_completion(self, jobs, timeout: float = 50_000.0) -> None:
        """Advance until all ``jobs`` are finished or ``timeout`` sim-seconds."""
        done = self.jobtracker.when_jobs_done(jobs)
        if self.sim.run_until(done, timeout):
            return
        self.jobtracker.cancel_wait(done)
        raise AssertionError(
            f"jobs not finished by t={timeout}: "
            f"{[(j.job_id, j.status) for j in jobs if j.finish_time is None]}")
