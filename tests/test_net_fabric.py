"""Tests for the max-min fair fluid network fabric."""

import pytest

from repro.net import FabricConfig, NetworkFabric, NetworkTopology, TransferFailed
from repro.sim import Simulator


def make_fabric(**overrides):
    kwargs = dict(
        nic_bandwidth=100.0,        # 100 B/s for easy arithmetic
        site_uplink_bandwidth=150.0,
        intra_site_latency=0.0,
        inter_site_latency=0.0,
    )
    kwargs.update(overrides)
    cfg = FabricConfig(**kwargs)
    sim = Simulator()
    topo = NetworkTopology()
    return sim, NetworkFabric(sim, topo, cfg)


def run_transfer(sim, fabric, src, dst, nbytes):
    ev = fabric.transfer(src, dst, nbytes)
    sim.run(until=ev)
    return sim.now


class TestSingleFlow:
    def test_intra_site_rate_is_nic_limited(self):
        sim, fabric = make_fabric()
        t = run_transfer(sim, fabric, "a.unl.edu", "b.unl.edu", 1000.0)
        assert t == pytest.approx(10.0)

    def test_inter_site_rate_still_nic_limited_when_uplink_larger(self):
        sim, fabric = make_fabric()
        t = run_transfer(sim, fabric, "a.unl.edu", "b.mit.edu", 1000.0)
        assert t == pytest.approx(10.0)

    def test_uplink_bottleneck(self):
        sim, fabric = make_fabric(site_uplink_bandwidth=50.0)
        t = run_transfer(sim, fabric, "a.unl.edu", "b.mit.edu", 1000.0)
        assert t == pytest.approx(20.0)

    def test_latency_added_once(self):
        cfg = FabricConfig(nic_bandwidth=100.0, site_uplink_bandwidth=1000.0,
                           intra_site_latency=0.5, inter_site_latency=2.0)
        sim = Simulator()
        fabric = NetworkFabric(sim, NetworkTopology(), cfg)
        t = run_transfer(sim, fabric, "a.unl.edu", "b.mit.edu", 100.0)
        assert t == pytest.approx(2.0 + 1.0)

    def test_loopback_is_instant(self):
        sim, fabric = make_fabric()
        t = run_transfer(sim, fabric, "a.unl.edu", "a.unl.edu", 1e9)
        assert t == 0.0

    def test_zero_bytes_is_instant(self):
        sim, fabric = make_fabric()
        t = run_transfer(sim, fabric, "a.unl.edu", "b.unl.edu", 0.0)
        assert t == 0.0

    def test_negative_bytes_rejected(self):
        sim, fabric = make_fabric()
        with pytest.raises(ValueError):
            fabric.transfer("a.unl.edu", "b.unl.edu", -1.0)


class TestSharing:
    def test_two_flows_same_source_share_nic(self):
        sim, fabric = make_fabric()
        e1 = fabric.transfer("src.unl.edu", "d1.unl.edu", 500.0)
        e2 = fabric.transfer("src.unl.edu", "d2.unl.edu", 500.0)
        sim.run(until=sim.all_of([e1, e2]))
        # Both share the 100 B/s tx NIC: 50 B/s each -> 10 s.
        assert sim.now == pytest.approx(10.0)

    def test_flow_speeds_up_when_competitor_finishes(self):
        sim, fabric = make_fabric()
        e1 = fabric.transfer("src.unl.edu", "d1.unl.edu", 250.0)   # done at 5s
        e2 = fabric.transfer("src.unl.edu", "d2.unl.edu", 750.0)
        sim.run(until=e1)
        t1 = sim.now
        sim.run(until=e2)
        t2 = sim.now
        assert t1 == pytest.approx(5.0)
        # e2 drained 250B in the first 5s (50 B/s), then 500B at 100 B/s.
        assert t2 == pytest.approx(10.0)

    def test_disjoint_flows_do_not_interact(self):
        sim, fabric = make_fabric()
        e1 = fabric.transfer("a.unl.edu", "b.unl.edu", 1000.0)
        e2 = fabric.transfer("c.unl.edu", "d.unl.edu", 1000.0)
        sim.run(until=sim.all_of([e1, e2]))
        assert sim.now == pytest.approx(10.0)

    def test_wan_uplink_shared_across_site_flows(self):
        sim, fabric = make_fabric(site_uplink_bandwidth=100.0)
        # Three different sources in one site all sending cross-site:
        evs = [fabric.transfer(f"s{i}.unl.edu", f"d{i}.mit.edu", 300.0)
               for i in range(3)]
        sim.run(until=sim.all_of(evs))
        # WAN uplink 100 B/s split 3 ways -> 33.3 B/s each -> 9 s... but the
        # mit.edu downlink is also 100 shared by 3.  Max-min share = 100/3.
        assert sim.now == pytest.approx(9.0)

    def test_max_min_unequal_bottlenecks(self):
        # One flow NIC-limited to 100, another shares a 150 uplink.
        sim, fabric = make_fabric(site_uplink_bandwidth=150.0)
        # f1: a->x cross-site; f2: b->y cross-site, same source site.
        # Uplink 150 shared: each gets 75 (below NIC 100).
        e1 = fabric.transfer("a.unl.edu", "x.mit.edu", 750.0)
        e2 = fabric.transfer("b.unl.edu", "y.mit.edu", 750.0)
        sim.run(until=sim.all_of([e1, e2]))
        assert sim.now == pytest.approx(10.0)

    def test_intra_vs_inter_byte_accounting(self):
        sim, fabric = make_fabric()
        run_transfer(sim, fabric, "a.unl.edu", "b.unl.edu", 100.0)
        run_transfer(sim, fabric, "a.unl.edu", "b.mit.edu", 200.0)
        assert fabric.bytes_intra_site == 100.0
        assert fabric.bytes_inter_site == 200.0


class TestAborts:
    def test_abort_host_fails_flow(self):
        sim, fabric = make_fabric()
        ev = fabric.transfer("a.unl.edu", "b.unl.edu", 1000.0)
        caught = []

        def watcher(sim):
            try:
                yield ev
            except TransferFailed as exc:
                caught.append(str(exc))

        sim.process(watcher(sim))

        def killer(sim):
            yield sim.timeout(2.0)
            fabric.abort_host_flows("b.unl.edu")

        sim.process(killer(sim))
        sim.run()
        assert len(caught) == 1
        assert fabric.active_flows == 0

    def test_abort_unrelated_host_harmless(self):
        sim, fabric = make_fabric()
        ev = fabric.transfer("a.unl.edu", "b.unl.edu", 1000.0)

        def killer(sim):
            yield sim.timeout(2.0)
            n = fabric.abort_host_flows("ghost.mit.edu")
            assert n == 0

        sim.process(killer(sim))
        sim.run(until=ev)
        assert sim.now == pytest.approx(10.0)

    def test_surviving_flows_rebalance_after_abort(self):
        sim, fabric = make_fabric()
        fabric.transfer("src.unl.edu", "d1.unl.edu", 10_000.0)  # victim
        e2 = fabric.transfer("src.unl.edu", "d2.unl.edu", 750.0)

        def killer(sim):
            yield sim.timeout(5.0)
            fabric.abort_host_flows("d1.unl.edu")

        sim.process(killer(sim))
        sim.run(until=e2)
        # e2: 5s at 50 B/s = 250B, then 500B at 100 B/s = 5s -> 10s total.
        assert sim.now == pytest.approx(10.0)


class TestSetupPhaseAbort:
    """Regression: a transfer still in its latency/handshake setup phase to
    or from a dead host must fail, not silently start and deliver bytes to
    a dead endpoint (the pre-fix ``abort_host_flows`` only scanned flows
    already in the fluid phase)."""

    def _fabric_with_latency(self):
        cfg = FabricConfig(nic_bandwidth=100.0, site_uplink_bandwidth=1000.0,
                           intra_site_latency=0.5, inter_site_latency=2.0)
        sim = Simulator()
        return sim, NetworkFabric(sim, NetworkTopology(), cfg)

    def test_preemption_during_setup_fails_transfer(self):
        sim, fabric = self._fabric_with_latency()
        # Cross-site: the setup (one-way latency) phase lasts 2.0 s.
        ev = fabric.transfer("a.unl.edu", "b.mit.edu", 1000.0)
        caught = []

        def watcher(sim):
            try:
                yield ev
            except TransferFailed as exc:
                caught.append(str(exc))

        def preempt(sim):
            # The destination node is preempted 1 s in — mid-setup, before
            # the flow reaches the fluid phase.
            yield sim.timeout(1.0)
            n = fabric.abort_host_flows("b.mit.edu")
            assert n == 1  # the pending transfer was found and aborted

        sim.process(watcher(sim))
        sim.process(preempt(sim))
        sim.run()
        assert caught, "transfer to a dead host must fail, not deliver"
        # The setup timer firing later must not resurrect the flow.
        assert fabric.active_flows == 0

    def test_src_side_death_during_setup_also_aborts(self):
        sim, fabric = self._fabric_with_latency()
        ev = fabric.transfer("a.unl.edu", "b.mit.edu", 1000.0)
        ev.defused()

        def preempt(sim):
            yield sim.timeout(0.5)
            assert fabric.abort_host_flows("a.unl.edu") == 1

        sim.process(preempt(sim))
        sim.run()
        assert not ev.ok
        assert fabric.active_flows == 0

    def test_disk_wipe_during_setup_fails_joint_stream(self):
        """Regression: a joint disk+network stream registers on the disk's
        constraint only after the network setup delay, so a wipe inside
        that window used to be invisible — the fetch then 'succeeded' from
        a zombie whose files are gone.  The validate re-check closes it."""
        from repro.storage import Disk
        sim, fabric = self._fabric_with_latency()
        disk = Disk(sim, "a.unl.edu", 1e9, read_rate=50.0,
                    channel=fabric.channel,
                    partition=fabric.topology.site_of("a.unl.edu"))
        ev = fabric.serve_stream("a.unl.edu", "b.mit.edu", 1000.0, disk)
        ev.defused()

        def wiper(sim):
            yield sim.timeout(1.0)  # mid-setup (2.0 s inter-site latency)
            disk.wipe()

        sim.process(wiper(sim))
        sim.run()
        assert ev.triggered and not ev.ok
        assert fabric.active_flows == 0
        assert fabric.channel.active_demands == 0

    def test_abort_after_setup_still_counts_fluid_flow(self):
        sim, fabric = self._fabric_with_latency()
        fabric.transfer("a.unl.edu", "b.mit.edu", 1000.0).defused()

        def preempt(sim):
            yield sim.timeout(3.0)  # past the 2.0 s setup: fluid phase
            assert fabric.abort_host_flows("b.mit.edu") == 1

        sim.process(preempt(sim))
        sim.run()
        assert fabric.active_flows == 0


class TestStarvationGuard:
    """Regression: a flow left with ``rate == 0`` by a degenerate
    progressive-filling pass used to wait for "the next rebalance" — which
    never comes if no other flow starts or finishes, deadlocking
    ``sim.run()``.  The guard forces a retry pass that re-rates it."""

    def test_zero_rate_flow_recovers_and_completes(self):
        sim, fabric = make_fabric()
        ev = fabric.transfer("a.unl.edu", "b.unl.edu", 1000.0)
        sim.run(until=0.0)  # let the flow enter the fluid phase
        assert fabric.active_flows == 1
        flow = next(iter(fabric._flows))
        # Emulate the degenerate filling outcome: starved, every timer
        # cancelled (uniform group dissolved, bottleneck timers stale).
        if flow._group is not None:
            flow._group.dissolve()
        flow.rate = 0.0
        for link in flow.links:
            link._timer_version += 1
            link._timer_at = None
        fabric.channel.ensure_progress(flow)
        # Pre-fix this deadlocks ("ran out of events"); post-fix the retry
        # pass re-rates the flow and the transfer completes: 1 s retry
        # delay + 1000 B at the full 100 B/s NIC.
        sim.run(until=ev)
        assert ev.ok
        assert sim.now == pytest.approx(fabric.STARVATION_RETRY + 10.0)
        assert fabric.active_flows == 0

    def test_normal_filling_never_starves(self):
        sim, fabric = make_fabric()
        evs = [fabric.transfer(f"s{i}.unl.edu", f"d{i % 2}.mit.edu", 300.0)
               for i in range(6)]
        sim.run(until=sim.all_of(evs))
        assert fabric.starvation_rescues == 0
        assert fabric.active_flows == 0


class TestEstimates:
    def test_estimate_matches_uncontended_run(self):
        sim, fabric = make_fabric()
        est = fabric.transfer_time_estimate("a.unl.edu", "b.unl.edu", 1000.0)
        t = run_transfer(sim, fabric, "a.unl.edu", "b.unl.edu", 1000.0)
        assert t == pytest.approx(est)

    def test_estimate_loopback_zero(self):
        sim, fabric = make_fabric()
        assert fabric.transfer_time_estimate("a.unl.edu", "a.unl.edu", 1e9) == 0.0


class TestConfig:
    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(nic_bandwidth=0).validate()

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(inter_site_latency=-1).validate()

    def test_default_config_valid_and_asymmetric(self):
        cfg = FabricConfig()
        cfg.validate()
        # LAN latency must be far below WAN latency (core paper assumption).
        assert cfg.intra_site_latency < cfg.inter_site_latency / 10
