"""The engine dispatch frontier: callback timers, pooling, batching.

Covers the fast paths introduced for raw event throughput — the
``call_at``/``call_after``/``call_soon`` callback-timer primitives, the
``Timeout``/``CallbackTimer`` free lists, and batched same-instant
dispatch — plus the ordering contracts those paths rely on (FIFO
tie-break, URGENT before NORMAL, split-run equivalence) and the engine
bugfixes shipped alongside (``wakeup_at`` identity-guarded cleanup,
late-child-failure defusing, ``Interrupt().cause`` without args).
"""

import pytest

from repro.sim import CallbackTimer, Event, Interrupt, Simulator
from repro.sim.events import EngineProfile, Timeout


# -- callback-timer primitives -------------------------------------------------

def test_call_after_fires_fn_with_arg():
    sim = Simulator()
    seen = []
    sim.call_after(3.0, seen.append, "hello")
    sim.run()
    assert seen == ["hello"]
    assert sim.now == 3.0


def test_call_after_default_arg_is_none():
    sim = Simulator()
    seen = []
    sim.call_after(1.0, seen.append)
    sim.run()
    assert seen == [None]


def test_call_after_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.call_after(-1.0, lambda _a: None)


def test_call_at_coalesces_same_timestamp():
    sim = Simulator()
    seen = []
    t1 = sim.call_at(5.0, lambda _a: seen.append("first"))
    t2 = sim.call_at(5.0, lambda _a: seen.append("second"))
    assert t1 is t2  # one shared timer, one heap entry
    sim.run()
    assert seen == ["first", "second"]  # registration order


def test_call_at_in_the_past_fires_now():
    sim = Simulator(start=10.0)
    seen = []
    sim.call_at(3.0, seen.append, "late")
    sim.run()
    assert seen == ["late"]
    assert sim.now == 10.0


def test_call_at_and_wakeup_at_share_one_timer():
    sim = Simulator()
    order = []
    ev = sim.wakeup_at(4.0)
    t = sim.call_at(4.0, lambda _a: order.append("fn"))
    assert ev is t
    ev.callbacks.append(lambda _e: order.append("cb"))
    sim.run()
    # call_at pairs run before wakeup_at-style waiters on a shared timer.
    assert order == ["fn", "cb"]


def test_call_soon_runs_before_normal_events_at_same_instant():
    sim = Simulator()
    order = []
    sim.call_after(0.0, lambda _a: order.append("normal"))
    sim.call_soon(lambda _a: order.append("urgent"))
    sim.run()
    assert order == ["urgent", "normal"]


def test_timer_registry_key_removed_before_callbacks_run():
    # A callback firing at instant T that asks for a NEW timer at key T
    # must get a fresh one, not the timer currently dispatching.
    sim = Simulator()
    seen = {}

    def register_again(_a):
        seen["successor"] = sim.call_at(2.0, lambda _x: seen.setdefault("fired", sim.now))

    first = sim.call_at(2.0, register_again)
    sim.run()
    assert seen["successor"] is not first
    assert seen["fired"] == 2.0


# -- bugfix: wakeup_at cleanup identity guard ---------------------------------

def test_wakeup_at_successor_not_evicted_by_stale_cleanup():
    """A successor timer registered under a reused timestamp key must
    survive the predecessor's cleanup (the dict-aliasing pitfall): the
    cleanup checks identity before popping the key.  Failed before the
    fix — the predecessor's dispatch blindly popped the key, so the
    successor was evicted while still pending and later same-key callers
    got a THIRD timer instead of sharing the live one.
    """
    sim = Simulator()
    seen = {}

    def hijack(_a):
        # Simulate the alias: the key vanishes (e.g. an earlier cleanup
        # path) and a successor registers under the same timestamp while
        # the predecessor's timer is still about to dispatch its cleanup.
        del sim._wakeups[5.0]
        seen["successor"] = sim.wakeup_at(5.0)

    ev1 = sim.wakeup_at(5.0)
    ev1.callbacks.append(lambda _e: seen.setdefault("shared", sim.wakeup_at(5.0)))
    sim.call_after(4.0, hijack)
    sim.run()
    # After ev1 fires (and cleans up), a same-instant caller must share
    # the still-pending successor — not get a fresh third timer.
    assert seen["shared"] is seen["successor"]


# -- bugfix: late child failure is defused ------------------------------------

def test_condition_defuses_child_failing_after_fire():
    sim = Simulator()

    def fast(sim):
        yield sim.timeout(1.0)
        return "fast"

    def slow_fail(sim):
        yield sim.timeout(2.0)
        raise RuntimeError("late failure")

    p_fast = sim.process(fast(sim))
    p_slow = sim.process(slow_fail(sim))
    results = {}

    def waiter(sim):
        got = yield sim.any_of([p_fast, p_slow])
        results["value"] = got

    sim.process(waiter(sim))
    # Pre-fix: p_slow's failure at t=2 crashed the run even though the
    # (already-fired) condition had been a waiter.
    sim.run()
    assert results["value"] == {p_fast: "fast"}
    assert not p_slow.ok


def test_unwaited_failure_still_crashes_the_run():
    # The defuse is scoped to condition children: a genuinely unwaited
    # failure must still surface.
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("nobody is waiting")

    sim.process(boom(sim))
    with pytest.raises(RuntimeError, match="nobody is waiting"):
        sim.run()


# -- bugfix: Interrupt().cause without args -----------------------------------

def test_interrupt_cause_none_when_constructed_bare():
    assert Interrupt().cause is None


def test_interrupt_cause_roundtrip():
    assert Interrupt("reason").cause == "reason"


def test_interrupt_without_cause_through_process():
    sim = Simulator()
    seen = {}

    def sleeper(sim):
        try:
            yield sim.timeout(10.0)
        except Interrupt as exc:
            seen["cause"] = exc.cause

    p = sim.process(sleeper(sim))

    def interruptor(sim):
        yield sim.timeout(1.0)
        p.interrupt()

    sim.process(interruptor(sim))
    sim.run()
    assert seen["cause"] is None


# -- ordering contracts --------------------------------------------------------

def test_fifo_tie_break_among_same_instant_same_priority():
    sim = Simulator()
    order = []
    for i in range(8):
        sim.call_after(2.0, order.append, i)
    sim.run()
    assert order == list(range(8))


def test_fifo_tie_break_mixed_timeout_and_timer():
    sim = Simulator()
    order = []
    sim.timeout(1.0).callbacks.append(lambda _e: order.append("timeout-a"))
    sim.call_after(1.0, lambda _a: order.append("timer"))
    sim.timeout(1.0).callbacks.append(lambda _e: order.append("timeout-b"))
    sim.run()
    assert order == ["timeout-a", "timer", "timeout-b"]


def test_urgent_before_normal_at_same_instant():
    sim = Simulator()
    order = []
    sim.call_after(0.0, lambda _a: order.append("n1"))
    sim.call_after(0.0, lambda _a: order.append("n2"))
    # Registered LAST but URGENT: must still dispatch before the NORMAL
    # events sharing the instant.
    sim.call_soon(lambda _a: order.append("urgent"))
    sim.run()
    assert order == ["urgent", "n1", "n2"]


def test_split_run_equals_uninterrupted_run():
    def build():
        sim = Simulator()
        order = []

        def worker(sim, tag):
            for i in range(3):
                yield sim.timeout(1.5)
                order.append((tag, i, sim.now))

        sim.process(worker(sim, "a"))
        sim.process(worker(sim, "b"))
        sim.call_at(3.0, lambda _x: order.append(("timer", 3.0, sim.now)))
        return sim, order

    sim1, order1 = build()
    sim1.run()

    sim2, order2 = build()
    sim2.run(until=2.0)
    assert sim2.now == 2.0
    sim2.run(until=3.0)
    sim2.run()

    assert order1 == order2
    assert sim1.now == sim2.now
    assert sim1.events_processed == sim2.events_processed


# -- pooling -------------------------------------------------------------------

def test_timeout_pool_recycles_process_sleeps():
    sim = Simulator()

    def sleeper(sim):
        for _ in range(50):
            yield sim.timeout(1.0)

    sim.process(sleeper(sim))
    sim.profile = EngineProfile()
    sim.run()
    # The resume allocates the next sleep *before* the fired timeout is
    # recycled, so steady state alternates between exactly two objects:
    # 50 sleeps cost 2 allocations and 48 pool hits.
    assert sim.profile.timeout_pool_reuses == 48
    assert len(sim._timeout_pool) == 2


def test_timeout_with_extra_callback_is_not_pooled():
    sim = Simulator()
    kept = []

    def sleeper(sim):
        t = sim.timeout(1.0)
        t.callbacks.append(lambda _e: None)  # second waiter
        kept.append(t)
        yield t

    sim.process(sleeper(sim))
    sim.run()
    assert not sim._timeout_pool  # multi-waiter timeouts keep their identity
    assert kept[0].processed


def test_pooled_timeout_value_reset():
    sim = Simulator()
    values = []

    def proc(sim):
        got = yield sim.timeout(1.0, "first")
        values.append(got)
        got = yield sim.timeout(1.0)  # recycled object, no stale value
        values.append(got)

    sim.process(proc(sim))
    sim.run()
    assert values == ["first", None]


def test_timer_pool_recycles_callback_timers():
    sim = Simulator()
    fired = []

    def tick(i):
        fired.append(i)
        if i < 20:
            sim.call_after(1.0, tick, i + 1)

    sim.call_after(1.0, tick, 1)
    sim.profile = EngineProfile()
    sim.run()
    assert fired == list(range(1, 21))
    # Each tick re-arms before its own timer is recycled, so the cadence
    # alternates between two pooled objects: 20 fires, 18 pool hits.
    assert sim.profile.timer_pool_reuses == 18
    assert len(sim._timer_pool) == 2


def test_pooling_disabled_keeps_no_free_lists():
    sim = Simulator(pooling=False)

    def sleeper(sim):
        for _ in range(5):
            yield sim.timeout(1.0)

    sim.process(sleeper(sim))
    sim.call_after(2.0, lambda _a: None)
    sim.call_after(4.0, lambda _a: None)
    sim.run()
    assert sim._timeout_pool == []
    assert sim._timer_pool == []


# -- batched dispatch ----------------------------------------------------------

def test_batch_processes_all_same_instant_events():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_after(1.0, seen.append, i)
    sim.profile = EngineProfile()
    sim.run()
    assert seen == list(range(10))
    assert sim.events_processed == 10
    # One batch of 10 (bucket 16).
    assert sim.profile.batches == 1
    assert sim.profile.batch_size_hist == {16: 1}


def test_batch_respects_priority_boundary():
    sim = Simulator()
    order = []

    def arm_urgent(_a):
        order.append("n1")
        sim.call_soon(lambda _x: order.append("urgent"))

    sim.call_after(1.0, arm_urgent)
    sim.call_after(1.0, lambda _a: order.append("n2"))
    sim.run()
    # Strict heap order: the URGENT event scheduled mid-instant jumps
    # ahead of the remaining NORMAL events — batching must break at the
    # priority boundary rather than drain the NORMAL run to completion.
    assert order == ["n1", "urgent", "n2"]


def test_run_until_event_stops_mid_batch():
    sim = Simulator()
    seen = []
    sim.call_after(1.0, seen.append, "before")
    stop = sim.event()

    def fire_stop(_a):
        stop.succeed()
        # Scheduled after `stop` got its heap slot: same instant, higher
        # counter — must NOT run before the until-event halts the run.
        sim.call_after(0.0, seen.append, "after")

    sim.call_after(1.0, fire_stop)
    sim.run(until=stop)
    assert seen == ["before"]
    sim.run()
    assert seen == ["before", "after"]


def test_run_until_deadline_advances_time_between_batches():
    sim = Simulator()
    seen = []
    sim.call_after(1.0, seen.append, 1)
    sim.call_after(5.0, seen.append, 5)
    done = sim.run_until(sim.event(), deadline=3.0)
    assert done is False
    assert sim.now == 3.0
    assert seen == [1]


def test_step_remains_single_event():
    sim = Simulator()
    seen = []
    sim.call_after(1.0, seen.append, "a")
    sim.call_after(1.0, seen.append, "b")
    sim.step()
    assert seen == ["a"]
    sim.step()
    assert seen == ["a", "b"]


# -- profile evidence ----------------------------------------------------------

def test_profile_counts_callback_timer_fires():
    sim = Simulator()
    sim.profile = EngineProfile()
    sim.call_after(1.0, lambda _a: None)
    sim.call_at(2.0, lambda _a: None)
    sim.call_at(2.0, lambda _a: None)  # coalesced: same timer
    sim.run()
    assert sim.profile.callback_timer_fires == 2
    assert sim.profile.timer_callbacks_run == 3
    d = sim.profile.as_dict()
    assert d["callback_timer_fires"] == 2
    assert "batch_size_hist" in d
