"""Tests for time series (area under curve), counters, and reports."""

import numpy as np
import pytest

from repro.metrics import CounterSet, EventLog, StepSeries, WorkloadResult, format_table


class TestStepSeries:
    def test_record_and_query(self):
        s = StepSeries("n", initial=0.0)
        s.record(10.0, 5.0)
        s.record(20.0, 3.0)
        assert s.value_at(0.0) == 0.0
        assert s.value_at(10.0) == 5.0
        assert s.value_at(15.0) == 5.0
        assert s.value_at(25.0) == 3.0

    def test_non_monotonic_rejected(self):
        s = StepSeries(initial=0.0)
        s.record(10.0, 1.0)
        with pytest.raises(ValueError):
            s.record(5.0, 2.0)

    def test_same_time_overwrites(self):
        s = StepSeries(initial=0.0)
        s.record(10.0, 1.0)
        s.record(10.0, 2.0)
        assert s.value_at(10.0) == 2.0
        assert len(s) == 2  # t=0 and t=10

    def test_area_constant_function(self):
        s = StepSeries(initial=55.0)
        assert s.integrate(0.0, 100.0) == pytest.approx(5500.0)

    def test_area_step_function(self):
        s = StepSeries(initial=0.0)
        s.record(10.0, 50.0)   # 50 nodes from t=10
        s.record(20.0, 30.0)   # dip to 30 at t=20
        s.record(30.0, 50.0)   # recover at t=30
        # [0,10): 0, [10,20): 50, [20,30): 30, [30,40): 50
        assert s.integrate(0.0, 40.0) == pytest.approx(0 + 500 + 300 + 500)

    def test_area_partial_window(self):
        s = StepSeries(initial=10.0)
        s.record(10.0, 20.0)
        assert s.integrate(5.0, 15.0) == pytest.approx(10 * 5 + 20 * 5)

    def test_area_window_between_points(self):
        s = StepSeries(initial=10.0)
        assert s.integrate(3.0, 7.0) == pytest.approx(40.0)

    def test_area_empty_window(self):
        s = StepSeries(initial=10.0)
        assert s.integrate(5.0, 5.0) == 0.0

    def test_area_inverted_window_rejected(self):
        s = StepSeries(initial=10.0)
        with pytest.raises(ValueError):
            s.integrate(10.0, 5.0)

    def test_mean(self):
        s = StepSeries(initial=0.0)
        s.record(50.0, 100.0)
        assert s.mean(0.0, 100.0) == pytest.approx(50.0)

    def test_min_max(self):
        s = StepSeries(initial=5.0)
        s.record(1.0, 55.0)
        s.record(2.0, 20.0)
        assert s.max() == 55.0
        assert s.min() == 5.0

    def test_table4_style_area(self):
        # A synthetic 55-node run with a dip reproduces the area
        # arithmetic of Table IV: area/response = mean nodes.
        s = StepSeries(initial=55.0)
        s.record(1000.0, 20.0)
        s.record(2000.0, 55.0)
        area = s.integrate(0.0, 4000.0)
        assert area == pytest.approx(55 * 1000 + 20 * 1000 + 55 * 2000)
        assert area / 4000.0 == pytest.approx((55 + 20 + 110) / 4)

    def test_as_arrays(self):
        s = StepSeries(initial=1.0)
        s.record(5.0, 2.0)
        t, v = s.as_arrays()
        assert list(t) == [0.0, 5.0]
        assert list(v) == [1.0, 2.0]


class TestDownsample:
    def _series(self, n):
        s = StepSeries("g")
        for i in range(n):
            s.record(float(i), float(i * i))
        return s

    def test_short_series_returned_whole(self):
        s = self._series(5)
        t, v = s.downsample(10)
        assert t == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert v == [0.0, 1.0, 4.0, 9.0, 16.0]

    def test_thinning_keeps_first_and_last(self):
        s = self._series(1000)
        t, v = s.downsample(16)
        assert len(t) == len(v) == 16
        assert t[0] == 0.0 and t[-1] == 999.0
        assert v[0] == 0.0 and v[-1] == 999.0 ** 2
        assert t == sorted(t)

    def test_thinning_is_deterministic(self):
        s = self._series(333)
        assert s.downsample(7) == s.downsample(7)

    def test_rejects_degenerate_budget(self):
        with pytest.raises(ValueError):
            self._series(5).downsample(1)

    def test_returns_copies(self):
        s = self._series(3)
        t, _ = s.downsample(10)
        t.append(99.0)
        assert len(s) == 3


class TestCounters:
    def test_incr_and_get(self):
        c = CounterSet()
        assert c.get("x") == 0
        c.incr("x")
        c.incr("x", 4)
        assert c.get("x") == 5
        assert c.as_dict() == {"x": 5}


class TestEventLog:
    def test_append_and_filter(self):
        log = EventLog()
        log.log(1.0, "preempt", host="a")
        log.log(2.0, "preempt", host="b")
        log.log(3.0, "join", host="c")
        assert len(log) == 3
        assert log.count("preempt") == 2
        assert [e[2]["host"] for e in log.entries("preempt")] == ["a", "b"]

    def test_capacity_bound(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.log(float(i), "e", i=i)
        assert len(log) == 2
        assert [e[2]["i"] for e in log.entries()] == [3, 4]

    def test_bounded_by_default(self):
        log = EventLog()
        assert EventLog.DEFAULT_CAPACITY == 65536
        for i in range(EventLog.DEFAULT_CAPACITY + 10):
            log.log(float(i), "e", i=i)
        assert len(log) == EventLog.DEFAULT_CAPACITY
        # The newest entries win.
        assert log.entries()[-1][2]["i"] == EventLog.DEFAULT_CAPACITY + 9

    def test_explicit_none_is_unbounded(self):
        log = EventLog(capacity=None)
        for i in range(EventLog.DEFAULT_CAPACITY + 10):
            log.log(float(i), "e")
        assert len(log) == EventLog.DEFAULT_CAPACITY + 10


class TestWorkloadResult:
    def _result(self):
        return WorkloadResult(system="HOG", nodes=55, start_time=100.0,
                              end_time=4496.0, node_area=181020.0)

    def test_response_time(self):
        assert self._result().response_time == pytest.approx(4396.0)

    def test_mean_nodes_matches_table4_arithmetic(self):
        # Table IV row 5a: 181020 / 4396 =~ 41.2 mean nodes.
        assert self._result().mean_nodes == pytest.approx(41.18, abs=0.01)

    def test_summary_mentions_key_numbers(self):
        s = self._result().summary()
        assert "4396" in s and "HOG" in s


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5
