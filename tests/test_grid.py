"""Tests for the grid substrate: submit files, sites, glidein lifecycle,
preemption."""

import numpy as np
import pytest

from repro.grid import (
    PAPER_SITES,
    CondorSchedd,
    GridSite,
    GridSiteConfig,
    SitePolicy,
    SubmissionFile,
    WrapperConfig,
)


class TestSubmissionFile:
    def _listing1(self):
        return SubmissionFile(
            requirements=("FNAL_FERMIGRID", "USCMS-FNAL-WC1", "UCSDT2",
                          "AGLT2", "MIT_CMS"),
            queue=1000)

    def test_listing1_defaults(self):
        sub = self._listing1()
        assert sub.universe == "vanilla"
        assert sub.executable == "wrapper.sh"
        assert sub.when_to_transfer_output == "ON_EXIT_OR_EVICT"
        assert sub.on_exit_remove is False
        sub.validate()

    def test_render_contains_all_sites(self):
        text = self._listing1().render()
        for site in ("FNAL_FERMIGRID", "USCMS-FNAL-WC1", "UCSDT2",
                     "AGLT2", "MIT_CMS"):
            assert f'GLIDEIN_ResourceName =?= "{site}"' in text
        assert text.strip().endswith("queue 1000")

    def test_render_parse_roundtrip(self):
        sub = self._listing1()
        parsed = SubmissionFile.parse(sub.render())
        assert parsed == sub

    def test_parse_listing1_verbatim(self):
        # Listing 1, transcribed (line-wrapped quotes joined).
        text = '''
universe = vanilla
requirements = GLIDEIN_ResourceName =?= "FNAL_FERMIGRID" || GLIDEIN_ResourceName =?= "USCMS-FNAL-WC1" || GLIDEIN_ResourceName =?= "UCSDT2" || GLIDEIN_ResourceName =?= "AGLT2" || GLIDEIN_ResourceName =?= "MIT_CMS"
executable = wrapper.sh
output = condor_out/out.$(CLUSTER).$(PROCESS)
error = condor_out/err.$(CLUSTER).$(PROCESS)
log = hadoop-grid.log
should_transfer_files = YES
when_to_transfer_output = ON_EXIT_OR_EVICT
OnExitRemove = FALSE
PeriodicHold = false
x509userproxy = /tmp/x509up_u1384
queue 1000
'''
        sub = SubmissionFile.parse(text)
        assert sub.queue == 1000
        assert len(sub.requirements) == 5
        assert sub.x509userproxy == "/tmp/x509up_u1384"

    def test_empty_requirements_rejected(self):
        with pytest.raises(ValueError):
            SubmissionFile(requirements=(), queue=1).validate()

    def test_negative_queue_rejected(self):
        with pytest.raises(ValueError):
            SubmissionFile(requirements=("X",), queue=-1).validate()


class TestSitePolicy:
    def test_valid_policy(self):
        SitePolicy(preempt_rate=0.001, burst_rate=0.0005).validate()

    @pytest.mark.parametrize("kwargs", [
        dict(preempt_rate=-1), dict(burst_fraction=1.5),
        dict(scheduling_delay_mean=-1),
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SitePolicy(**kwargs).validate()


class TestGridSite:
    def test_capacity_accounting(self):
        site = GridSite(GridSiteConfig("X", "x.edu", capacity=2))
        assert site.free_slots == 2
        site.attach("g1")
        site.attach("g2")
        assert site.free_slots == 0
        with pytest.raises(RuntimeError):
            site.attach("g3")
        site.detach("g1")
        assert site.free_slots == 1

    def test_hostnames_unique_and_in_domain(self):
        site = GridSite(GridSiteConfig("X", "x.edu", capacity=10))
        names = {site.next_hostname() for _ in range(100)}
        assert len(names) == 100
        assert all(n.endswith(".x.edu") for n in names)

    def test_single_label_domain_rejected(self):
        with pytest.raises(ValueError):
            GridSiteConfig("X", "localhost", capacity=1).validate()

    def test_paper_sites_are_five_distinct_domains(self):
        sites = PAPER_SITES()
        assert len(sites) == 5
        names = {s.name for s in sites}
        assert names == {"FNAL_FERMIGRID", "USCMS-FNAL-WC1", "UCSDT2",
                         "AGLT2", "MIT_CMS"}
        assert len({s.domain for s in sites}) == 5


class TestWrapperConfig:
    def test_paper_package_size(self):
        assert WrapperConfig().package_bytes == 75 * 1024 * 1024

    def test_zombie_fix_default_on(self):
        assert WrapperConfig().zombie_fix is True

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            WrapperConfig(package_bytes=-1).validate()


class TestCondorSchedd:
    def test_submit_assigns_cluster_ids(self):
        schedd = CondorSchedd()

        class FakeJob:
            state = "idle"
            cluster_id = None

            def removed(self):
                self.state = "removed"

        jobs = [FakeJob() for _ in range(3)]
        c1 = schedd.submit(SubmissionFile(requirements=("X",), queue=3), jobs)
        assert all(j.cluster_id == c1 for j in jobs)
        assert schedd.queue_size() == 3
        assert len(schedd.idle_jobs()) == 3

        more = [FakeJob()]
        c2 = schedd.submit(SubmissionFile(requirements=("X",), queue=1), more)
        assert c2 == c1 + 1

    def test_remove(self):
        schedd = CondorSchedd()

        class FakeJob:
            state = "idle"
            cluster_id = None

            def removed(self):
                self.state = "removed"

        j = FakeJob()
        schedd.submit(SubmissionFile(requirements=("X",), queue=1), [j])
        schedd.remove(j)
        assert schedd.queue_size() == 0
        assert j.state == "removed"
