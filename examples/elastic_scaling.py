#!/usr/bin/env python
"""Elastic grow/shrink (§IV-C) and the HDFS balancer.

"If users want to increase the number of nodes in the HOG, they can submit
more Condor jobs for extra nodes.  They can use the HDFS balancer to
balance the data distribution."

This example grows a HOG deployment mid-run, shows that fresh nodes join
empty, runs the balancer, and prints utilization before/after.

Run:  python examples/elastic_scaling.py
"""

import numpy as np

from repro.core import HOGConfig, HOGSystem, NodeConfig
from repro.grid import GridSiteConfig, SitePolicy
from repro.hdfs import GB, Balancer
from repro.sim import Simulator


def utilization_spread(balancer: Balancer) -> str:
    util = balancer.utilization()
    vals = np.array(sorted(util.values()))
    return (f"min={vals.min():.1%} mean={vals.mean():.1%} "
            f"max={vals.max():.1%} imbalance={balancer.imbalance():.1%}")


def main() -> None:
    policy = SitePolicy(scheduling_delay_mean=10.0)  # no churn, clean demo
    config = HOGConfig(
        sites=[GridSiteConfig(f"SITE{i}", f"site{i}.edu", 20, policy)
               for i in range(3)],
        node=NodeConfig(disk_capacity=20 * GB),
        seed=7,
    )
    sim = Simulator()
    hog = HOGSystem(sim, config)

    print("Phase 1: start with 8 nodes and load data...")
    hog.start(target_nodes=8)
    hog.run_until_nodes(8)
    for i in range(6):
        hog.preload_input(f"/data/part{i}", n_blocks=4)
    balancer = Balancer(sim, hog.namenode, threshold=0.02)
    print(f"  utilization: {utilization_spread(balancer)}")

    print("Phase 2: grow elastically to 16 nodes (submit more Condor jobs)...")
    hog.set_target(16)
    hog.run_until_nodes(16)
    print(f"  now {hog.running_nodes()} nodes; fresh nodes joined empty:")
    print(f"  utilization: {utilization_spread(balancer)}")

    print("Phase 3: run the HDFS balancer...")
    report_ev = balancer.run()
    sim.run(until=report_ev)
    report = report_ev.value
    print(f"  moved {report.moved_blocks} blocks "
          f"({report.moved_bytes / 2**20:.0f} MiB) in "
          f"{report.iterations} iterations, converged={report.converged}")
    print(f"  utilization: {utilization_spread(balancer)}")

    print("Phase 4: shrink back to 10 nodes (condor_rm)...")
    hog.set_target(10)
    deadline = sim.now + 600
    while sim.now < deadline and hog.running_nodes() > 10:
        sim.run(until=sim.now + 10)
    print(f"  now {hog.running_nodes()} nodes; "
          f"node-count series max={hog.node_series.max():.0f}")


if __name__ == "__main__":
    main()
