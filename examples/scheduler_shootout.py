#!/usr/bin/env python
"""Scheduler shootout: FIFO vs delay scheduling vs matchmaking.

HOG ships with Hadoop's FIFO scheduler (§III-B2), but the paper's
bibliography carries two locality-aware alternatives: delay scheduling
(Zaharia et al. [3] — the source of the evaluation workload) and
matchmaking (He et al. [20] — the HOG authors' own scheduler).  All three
are implemented in ``repro.mapreduce``; this example runs a small
low-replication workload under each and compares map locality.

Run:  python examples/scheduler_shootout.py
"""

import numpy as np

from repro.hdfs import HdfsConfig, Namenode, SiteAwarePolicy
from repro.mapreduce import JobSpec, MRConfig
from repro.metrics import format_table
from repro.sim import Simulator


def run_with(scheduler_name: str, seed: int = 5):
    # Small fixed cluster, replication 1: locality is a real contest.
    import sys, pathlib
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tests"))
    from helpers import MRHarness

    h = MRHarness(n_nodes=9, n_sites=3,
                  hdfs_config=HdfsConfig(replication=1),
                  mr_config=MRConfig(scheduler=scheduler_name),
                  seed=seed)
    jobs = [h.submit(f"{scheduler_name}-{i}", num_maps=9, num_reduces=2,
                     map_cpu_per_block=10.0) for i in range(4)]
    h.run_to_completion(jobs)
    local = sum(j.locality_counters["data_local"] for j in jobs)
    total = sum(sum(j.locality_counters.values()) for j in jobs)
    makespan = max(j.finish_time for j in jobs) - min(j.submit_time for j in jobs)
    return local / total, makespan


def main() -> None:
    rows = []
    for name in ("fifo", "delay", "matchmaking"):
        locality, makespan = run_with(name)
        rows.append([name, f"{100 * locality:.0f}%", f"{makespan:.0f}s"])
    print(format_table(
        ["scheduler", "data-local maps", "workload makespan"], rows,
        title="Scheduler shootout (9 nodes, replication 1, 4 jobs)"))
    print("\nFIFO grabs any slot immediately; the locality schedulers wait"
          "\nbriefly and convert non-local launches into local ones.")


if __name__ == "__main__":
    main()
