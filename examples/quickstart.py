#!/usr/bin/env python
"""Quickstart: stand up a small HOG deployment and run one MapReduce job.

This walks the same path as the paper's §III: request worker nodes through
Condor/GlideinWMS, wait for them to join, put data into the grid-wide
HDFS, and run a job against it — all inside the discrete-event simulator,
so it finishes in a second or two of wall-clock time.

Run:  python examples/quickstart.py
"""

from repro.core import HOGConfig, HOGSystem
from repro.grid import GridSiteConfig, SitePolicy
from repro.mapreduce import JobSpec
from repro.sim import Simulator


def main() -> None:
    # Three small OSG-like sites; worker nodes can be preempted at any
    # time (mean lifetime ~1 hour here).
    policy = SitePolicy(preempt_rate=1 / 3600.0, scheduling_delay_mean=10.0)
    config = HOGConfig(
        sites=[
            GridSiteConfig("FNAL_FERMIGRID", "fnal.gov", 10, policy),
            GridSiteConfig("UCSDT2", "ucsd.edu", 10, policy),
            GridSiteConfig("MIT_CMS", "mit.edu", 10, policy),
        ],
        seed=42,
    )
    sim = Simulator()
    hog = HOGSystem(sim, config)

    print("Requesting 12 worker nodes from the grid...")
    hog.start(target_nodes=12)
    t = hog.run_until_nodes(12)
    print(f"  {hog.running_nodes()} nodes up at t={t:.0f}s "
          f"(queueing + 75MB package download + daemon start)")

    print("Uploading input data (8 blocks x 64MB, replication 10)...")
    hog.preload_input("/user/alice/input", n_blocks=8)
    fi = hog.namenode.get_file("/user/alice/input")
    locs = hog.namenode.locate(fi.blocks[0].block_id)
    sites = {hog.topology.site_of(h) for h in locs}
    print(f"  block 0 has {len(locs)} replicas across sites: {sorted(sites)}")

    print("Submitting a MapReduce job (8 maps, 3 reduces)...")
    job = hog.submit(JobSpec(
        name="quickstart", num_maps=8, num_reduces=3,
        input_file="/user/alice/input",
        map_cpu_per_block=20.0, reduce_cpu=10.0))
    hog.run_until_jobs_done([job])

    print(f"  job finished: status={job.status} "
          f"response={job.response_time:.0f}s")
    print(f"  map locality: {job.locality_counters}")
    print(f"  grid events:  {hog.factory.counters.as_dict()}")


if __name__ == "__main__":
    main()
