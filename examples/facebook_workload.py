#!/usr/bin/env python
"""Run the paper's Facebook workload (Table II) on HOG and on the
dedicated Table III cluster, and compare response times.

This is a scaled-down version of the Figure 4 experiment: one HOG size
vs the 100-core cluster baseline.  Use ``--scale 1.0 --nodes 100`` for the
paper-sized run (takes a minute or two of wall-clock time).

Run:  python examples/facebook_workload.py [--nodes N] [--scale S]
"""

import argparse

from repro.experiments import calibration
from repro.experiments.common import (
    HogRunSettings,
    run_facebook_on_cluster,
    run_facebook_on_hog,
)
from repro.metrics import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=55,
                        help="HOG worker-node target (paper sweeps 40-1101)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="fraction of the 88-job workload to run")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Running {int(88 * args.scale)}-ish jobs on the dedicated "
          "100-core cluster...")
    cluster = run_facebook_on_cluster(seed=args.seed, scale=args.scale)
    print(f"  {cluster.summary()}")

    print(f"Running the same workload on HOG with {args.nodes} grid nodes...")
    hog = run_facebook_on_hog(HogRunSettings(
        n_nodes=args.nodes, seed=args.seed, scale=args.scale,
        policy=calibration.default_grid_policy()))
    print(f"  {hog.summary()}")

    rows = []
    for bin_id in sorted(set(cluster.bin_responses) | set(hog.bin_responses)):
        c = cluster.bin_responses.get(bin_id, [])
        h = hog.bin_responses.get(bin_id, [])
        rows.append([
            bin_id,
            f"{sum(c) / len(c):.0f}" if c else "-",
            f"{sum(h) / len(h):.0f}" if h else "-",
        ])
    print()
    print(format_table(
        ["Bin", "cluster mean resp (s)", "HOG mean resp (s)"], rows,
        title="Per-bin job response times"))

    ratio = hog.response_time / cluster.response_time
    print(f"\nHOG[{args.nodes}] / cluster response ratio: {ratio:.2f} "
          f"(1.0 = the paper's 'equivalent performance')")
    print(f"HOG map locality: {hog.locality}")


if __name__ == "__main__":
    main()
