#!/usr/bin/env python
"""Fault tolerance on the grid: preemption, re-replication, and the
zombie-datanode problem (§III-B, §IV-D1).

The demo preempts nodes two ways and watches the system respond:

1. a *clean* preemption (the fixed HOG: daemons die with the process
   tree) — detected after the 30 s heartbeat timeout, blocks
   re-replicated, replacement glidein requested;
2. a *zombie* preemption (the original double-fork bug, fix disabled) —
   the node keeps heartbeating over a wiped working directory, poisoning
   reads and eating tasks, until the periodic disk self-check would have
   caught it.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.core import HOGConfig, HOGSystem
from repro.grid import GridSiteConfig, SitePolicy, WrapperConfig
from repro.hdfs import hog_config
from repro.sim import Simulator


def build(zombie_fix: bool, disk_check: bool, seed: int = 3):
    policy = SitePolicy(scheduling_delay_mean=10.0)  # we preempt manually
    config = HOGConfig(
        sites=[GridSiteConfig(f"SITE{i}", f"site{i}.edu", 10, policy)
               for i in range(3)],
        hdfs=hog_config(replication=3,
                        disk_check_interval=180.0 if disk_check else None),
        wrapper=WrapperConfig(zombie_fix=zombie_fix),
        seed=seed,
    )
    sim = Simulator()
    hog = HOGSystem(sim, config)
    hog.start(9)
    hog.run_until_nodes(9)
    hog.preload_input("/demo/data", n_blocks=6)
    return sim, hog


def clean_preemption() -> None:
    print("=== clean preemption (zombie fix ON) ===")
    sim, hog = build(zombie_fix=True, disk_check=True)
    fi = hog.namenode.get_file("/demo/data")
    victim_host = hog.namenode.locate(fi.blocks[0].block_id)[0]
    victim = hog.nodes[victim_host]
    t0 = sim.now
    print(f"t={t0:.0f}s: site preempts {victim_host} "
          f"(holds {victim.datanode.num_blocks()} block replicas)")
    hog.preempt_host(victim_host)

    sim.run(until=t0 + 45)
    believed = victim_host in hog.namenode.live_datanode_hosts()
    print(f"t={sim.now:.0f}s: namenode believes it alive? {believed} "
          "(30s heartbeat timeout has fired)")
    sim.run(until=t0 + 400)
    locs = hog.namenode.locate(fi.blocks[0].block_id)
    print(f"t={sim.now:.0f}s: block 0 back to {len(locs)} replicas "
          f"(re-replicated); victim among them? {victim_host in locs}")
    extra = hog.factory.counters.get("glideins_submitted") - 9
    print(f"          replacement glideins requested: {extra} extra, "
          f"{hog.running_nodes()} nodes running\n")


def zombie_preemption() -> None:
    print("=== zombie preemption (double-fork bug, fix OFF) ===")
    sim, hog = build(zombie_fix=False, disk_check=False)
    fi = hog.namenode.get_file("/demo/data")
    victim_host = hog.namenode.locate(fi.blocks[0].block_id)[0]
    t0 = sim.now
    print(f"t={t0:.0f}s: site kills the wrapper of {victim_host}; "
          "daemons escape the process tree")
    hog.preempt_host(victim_host, zombie=True)

    sim.run(until=t0 + 600)
    believed = victim_host in hog.namenode.live_datanode_hosts()
    print(f"t={sim.now:.0f}s: ten minutes later the namenode still "
          f"believes it alive? {believed}")
    reads = hog.namenode.counters.get("bad_replica_reports")
    print(f"          bad-replica reports so far: {reads}")

    # A client read against the zombie-held replica fails over and
    # triggers repair.
    client = hog.client()
    ev = client.read_block(fi.blocks[0].block_id)
    sim.run(until=ev)
    print(f"t={sim.now:.0f}s: client read succeeded from "
          f"{ev.value.source} after reporting the zombie replica")
    print(f"          the fix (wrapper keeps daemons in-tree + 3-minute "
          "disk self-check) prevents this state entirely")


if __name__ == "__main__":
    clean_preemption()
    zombie_preemption()
