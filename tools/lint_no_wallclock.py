#!/usr/bin/env python3
"""AST lint: forbid wall-clock reads in the decision-path modules.

The observability contract (ISSUE 8) extends the determinism rule: no
module under ``src/repro/{sim,net,mapreduce,hdfs,grid,storage}`` may read
the host's wall clock.  Simulated components must take time from
``sim.now`` only — a stray ``time.time()`` or ``perf_counter()`` in a
decision path silently couples outcomes to host speed and breaks the
byte-identical determinism guard.  Wall-clock measurement belongs in the
harness layers (``scenarios/``, ``benchmarks/``, ``experiments/``), which
this lint deliberately does not scan.

Flagged calls (as ``module.name`` or bare names imported from those
modules):

- ``time.time``, ``time.monotonic``, ``time.perf_counter``,
  ``time.process_time``, ``time.time_ns`` (and the ``_ns`` variants),
- ``datetime.now``, ``datetime.utcnow``, ``datetime.today``
  (via ``datetime.datetime`` or a bare ``datetime`` name).

A line may carry a ``# wallclock-ok`` comment to waive a finding whose
harmlessness has been audited (say why in a nearby comment).

Usage: ``python tools/lint_no_wallclock.py [src-root]`` — prints
findings, exits 1 if any.  The fast test tier runs this via
``tests/test_lint.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Tuple

CHECKED_PACKAGES = ("sim", "net", "mapreduce", "hdfs", "grid", "storage", "faults")
WAIVER = "wallclock-ok"

#: ``time`` module functions that read the host clock.
_TIME_FUNCS = {"time", "monotonic", "perf_counter", "process_time",
               "time_ns", "monotonic_ns", "perf_counter_ns",
               "process_time_ns"}
#: ``datetime``/``date`` constructors that read the host clock.
_DATETIME_FUNCS = {"now", "utcnow", "today"}


def _call_name(func: ast.expr) -> Tuple[str, str]:
    """``(qualifier, name)`` of a call target; qualifier may be ''."""
    if isinstance(func, ast.Name):
        return "", func.id
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id, func.attr
        if isinstance(value, ast.Attribute):
            # e.g. datetime.datetime.now — keep the innermost qualifier.
            return value.attr, func.attr
    return "", ""


def _is_wallclock(qualifier: str, name: str) -> bool:
    if qualifier == "time" and name in _TIME_FUNCS:
        return True
    if qualifier in ("datetime", "date") and name in _DATETIME_FUNCS:
        return True
    # Bare names cover ``from time import perf_counter`` style imports;
    # ``time`` alone is too generic (sim code says ``sim.now`` anyway,
    # and a local helper called ``time()`` would be a finding only if
    # imported from the stdlib — conservatively flag the known names).
    if qualifier == "" and name in ("perf_counter", "monotonic",
                                    "process_time", "time_ns",
                                    "perf_counter_ns", "monotonic_ns",
                                    "process_time_ns", "utcnow"):
        return True
    return False


def lint_file(path: Path) -> List[Tuple[int, str]]:
    """All wall-clock findings in one file as (line, message)."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    findings: List[Tuple[int, str]] = []

    def waived(lineno: int) -> bool:
        return 0 < lineno <= len(lines) and WAIVER in lines[lineno - 1]

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        qualifier, name = _call_name(node.func)
        if _is_wallclock(qualifier, name) and not waived(node.lineno):
            shown = f"{qualifier}.{name}" if qualifier else name
            findings.append(
                (node.lineno,
                 f"wall-clock read ({shown}()) in a decision-path module "
                 f"— simulated components must use sim.now"))
    return findings


def lint_tree(src_root: Path) -> List[str]:
    """Lint every checked package below ``src_root``; returns messages."""
    messages: List[str] = []
    for pkg in CHECKED_PACKAGES:
        pkg_dir = src_root / "repro" / pkg
        for path in sorted(pkg_dir.rglob("*.py")):
            for lineno, msg in lint_file(path):
                rel = path.relative_to(src_root)
                messages.append(f"{rel}:{lineno}: {msg}")
    return messages


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parent.parent / "src"
    messages = lint_tree(src_root)
    for msg in messages:
        print(msg)
    if messages:
        print(f"{len(messages)} wall-clock finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
