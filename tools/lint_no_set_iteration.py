#!/usr/bin/env python3
"""AST lint: forbid iterating sets in the decision-path modules.

The simulator's reproducibility contract (ROADMAP, PR 2) is that no
scheduling/placement/replication decision may depend on ``set`` iteration
order, which varies with PYTHONHASHSEED for strings.  Decision-path
collections are insertion-ordered dicts-as-sets; ``sorted(...)`` over a
set is fine.  This lint enforces the rule mechanically for every module
under ``src/repro/{sim,net,mapreduce,hdfs,storage}``.

Flagged: ``for``-statement and comprehension iterables that are
- set literals / set comprehensions / ``set()`` / ``frozenset()`` calls,
- ``list(...)``/``tuple(...)`` wrappers of the above (materialising a set
  into a list preserves its hash order — still nondeterministic),
- names or ``self.<attr>``s assigned or annotated as sets anywhere in the
  same module.

A line may carry a ``# set-order-ok`` comment to waive a finding whose
order-independence has been audited (say why in a nearby comment).

Usage: ``python tools/lint_no_set_iteration.py [src-root]`` — prints
findings, exits 1 if any.  The fast test tier runs this via
``tests/test_lint.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Optional, Set, Tuple

CHECKED_PACKAGES = ("sim", "net", "mapreduce", "hdfs", "storage", "faults")
WAIVER = "set-order-ok"

#: Calls that pass their argument's iteration order through to a list.
_TRANSPARENT_WRAPPERS = {"list", "tuple", "iter", "reversed", "enumerate"}
#: Annotation heads that mean "this is a set".
_SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "MutableSet"}


def _ann_is_set(node: Optional[ast.expr]) -> bool:
    """True if a type annotation denotes a set (``Set[str]``, ``set``...)."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return _ann_is_set(node.value)
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    return False


def _key_of(node: ast.expr) -> Optional[str]:
    """A module-level key for names and ``self.<attr>`` targets."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return "self." + node.attr
    return None


def _collect_set_names(tree: ast.AST) -> Set[str]:
    """Names/attrs assigned or annotated as sets anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            if _ann_is_set(node.annotation):
                key = _key_of(node.target)
                if key is not None:
                    names.add(key)
        elif isinstance(node, ast.Assign):
            if _value_is_set(node.value, names):
                for target in node.targets:
                    key = _key_of(target)
                    if key is not None:
                        names.add(key)
        elif isinstance(node, ast.arg):
            if _ann_is_set(node.annotation):
                names.add(node.arg)
    return names


def _value_is_set(node: ast.expr, set_names: Set[str]) -> bool:
    """True if an expression evaluates to a (frozen)set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    key = _key_of(node)
    if key is not None and key in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr,
                                                            ast.BitAnd,
                                                            ast.Sub)):
        # Set algebra on sets yields sets.
        return (_value_is_set(node.left, set_names)
                or _value_is_set(node.right, set_names))
    return False


def _iterable_is_set(node: ast.expr, set_names: Set[str]) -> bool:
    """True if iterating ``node`` walks set order."""
    if _value_is_set(node, set_names):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _TRANSPARENT_WRAPPERS and node.args:
        return _iterable_is_set(node.args[0], set_names)
    return False


def lint_file(path: Path) -> List[Tuple[int, str]]:
    """All set-iteration findings in one file as (line, message)."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    set_names = _collect_set_names(tree)
    lines = source.splitlines()
    findings: List[Tuple[int, str]] = []

    def waived(lineno: int) -> bool:
        return 0 < lineno <= len(lines) and WAIVER in lines[lineno - 1]

    def check(iter_node: ast.expr, lineno: int, kind: str) -> None:
        if _iterable_is_set(iter_node, set_names) and not waived(lineno):
            findings.append(
                (lineno, f"{kind} iterates a set "
                         f"({ast.unparse(iter_node)}) — use an "
                         f"insertion-ordered dict or sorted(...)"))

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            check(node.iter, node.lineno, "for-loop")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                check(gen.iter, node.lineno, "comprehension")
    return findings


def lint_tree(src_root: Path) -> List[str]:
    """Lint every checked package below ``src_root``; returns messages."""
    messages: List[str] = []
    for pkg in CHECKED_PACKAGES:
        pkg_dir = src_root / "repro" / pkg
        for path in sorted(pkg_dir.rglob("*.py")):
            for lineno, msg in lint_file(path):
                rel = path.relative_to(src_root)
                messages.append(f"{rel}:{lineno}: {msg}")
    return messages


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parent.parent / "src"
    messages = lint_tree(src_root)
    for msg in messages:
        print(msg)
    if messages:
        print(f"{len(messages)} set-iteration finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
