"""Table I — the Facebook production workload bins.

Regenerates the table from the workload generator and checks every row
against the paper's published values.  The benchmark times workload
generation (sampling a full 88-job schedule).
"""

import numpy as np

from repro.experiments.tables import render_table1
from repro.workload import FACEBOOK_BINS, build_facebook_schedule

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import emit


PAPER_TABLE1 = [
    # (bin, maps label, %jobs, #maps in benchmark, #jobs in benchmark)
    (1, "1", 39.0, 1, 38),
    (2, "2", 16.0, 2, 16),
    (3, "3-20", 14.0, 10, 14),
    (4, "21-60", 9.0, 50, 8),
    (5, "61-150", 6.0, 100, 6),
    (6, "151-300", 6.0, 200, 6),
    (7, "301-500", 4.0, 400, 4),
    (8, "501-1500", 4.0, 800, 4),
    (9, ">1501", 3.0, 4800, 4),
]


def test_table1_rows_match_paper(benchmark):
    def generate():
        return build_facebook_schedule(np.random.default_rng(0))

    schedule = benchmark(generate)
    assert len(schedule) == 88

    for b, row in zip(FACEBOOK_BINS, PAPER_TABLE1):
        assert (b.bin_id, b.maps_label, b.percent_at_facebook,
                b.maps_in_benchmark, b.jobs_in_benchmark) == row
    emit(render_table1())
