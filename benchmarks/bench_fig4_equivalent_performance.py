"""Figure 4 — "HOG vs. Cluster Equivalent Performance".

Regenerates the response-time-vs-node-count sweep and checks the paper's
shape claims:

1. HOG's response time broadly *decreases* with node count;
2. the HOG curve *crosses* the dedicated cluster's line (equivalent
   performance) in the vicinity of ~100 nodes — the paper reads off
   [99, 100];
3. diminishing returns: going far past the crossover buys much less than
   the first doubling.

Default run uses a reduced workload scale and 5 node counts (see
``_util``); set ``REPRO_FULL=1`` for the paper-exact 12-point, 3-run
sweep.
"""

import pytest

from repro.experiments.fig4 import run_fig4

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import FIG4_NODE_COUNTS, FIG4_RUNS, SCALE, emit


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(node_counts=FIG4_NODE_COUNTS, runs_per_point=FIG4_RUNS,
                    scale=SCALE, seed=0)


def test_fig4_regenerate(benchmark, fig4_result):
    # The sweep itself is minutes long; benchmark a single representative
    # HOG point so pytest-benchmark has a stable, bounded measurement.
    from repro.experiments.common import HogRunSettings, run_facebook_on_hog
    from repro.experiments import calibration

    def one_point():
        return run_facebook_on_hog(HogRunSettings(
            n_nodes=55, seed=123, scale=min(SCALE, 0.1),
            loadgen=calibration.default_loadgen()))

    benchmark.pedantic(one_point, rounds=1, iterations=1)
    emit(fig4_result.to_table())
    from repro.metrics import plot_xy
    pts = sorted(fig4_result.points, key=lambda p: p.nodes)
    emit(plot_xy([p.nodes for p in pts], [p.mean_response for p in pts],
                 hline=fig4_result.cluster_response, logx=True,
                 title="Figure 4 (o = HOG, --- = cluster)"))


def test_fig4_response_decreases_with_nodes(benchmark, fig4_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    points = sorted(fig4_result.points, key=lambda p: p.nodes)
    # Broad decrease: smallest HOG is slower than the biggest.
    assert points[0].mean_response > points[-1].mean_response
    # And the trend holds pairwise for the majority of steps (churn makes
    # it non-monotonic, as the paper notes).
    drops = sum(1 for a, b in zip(points, points[1:])
                if b.mean_response <= a.mean_response * 1.05)
    assert drops >= (len(points) - 1) * 0.6


def test_fig4_crossover_near_100_nodes(benchmark, fig4_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    cross = fig4_result.crossover()
    assert cross is not None, "HOG never reached cluster performance"
    low, high = cross
    # Paper: [99, 100].  Accept the bracket containing or adjacent to 100.
    assert low <= 170 and high >= 50, f"crossover {cross} far from paper's [99,100]"


def test_fig4_diminishing_returns(benchmark, fig4_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    points = sorted(fig4_result.points, key=lambda p: p.nodes)
    if len(points) < 3:
        pytest.skip("needs at least 3 points")
    first = points[0].mean_response
    mid = points[len(points) // 2].mean_response
    last = points[-1].mean_response
    gain_early = first - mid
    gain_late = mid - last
    assert gain_early > gain_late, "speedup should flatten at scale (§IV-C)"
