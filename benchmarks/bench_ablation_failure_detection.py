"""Ablation — failure-detection speed: 30 s (HOG) vs ~15 min (stock).

"In HOG, we decreased the time between heartbeat messages and decreased
the timeout time for the worker nodes.  If the worker nodes do not report
every 30 seconds, then the node is marked dead ... The traditional value
... is 15 minutes." (§III-B)

With slow detection, work on preempted nodes sits unnoticed and blocks on
them are not repaired, inflating response time under churn.
"""

import pytest

from repro.experiments.ablations import ablate_failure_detection

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import FIG5_NODES, SCALE, emit


@pytest.fixture(scope="module")
def results():
    return ablate_failure_detection(timeouts=(30.0, 900.0),
                                    n_nodes=FIG5_NODES,
                                    scale=min(SCALE, 0.25))


def test_ablation_failure_detection(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation: dead-node detection timeout under churn"]
    for timeout, res in sorted(results.items()):
        c = res.counters
        lines.append(
            f"  timeout={timeout:5.0f}s: response={res.response_time:.0f}s "
            f"trackers_lost={c.get('trackers_lost', 0)} "
            f"maps_reexecuted={c.get('maps_reexecuted', 0)} "
            f"failed_jobs={res.failed_jobs}")
    emit("\n".join(lines))


def test_fast_detection_is_strictly_better_under_churn(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    # Slow detection hurts in one of two ways: work on unnoticed-dead
    # nodes inflates response, or (worse) whole jobs fail because lost
    # map outputs / replicas are never repaired in time.
    fast, slow = results[30.0], results[900.0]
    assert fast.failed_jobs == 0
    if slow.failed_jobs == 0:
        assert fast.response_time < slow.response_time
    else:
        assert slow.failed_jobs > fast.failed_jobs


def test_fast_detection_notices_losses(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    fast = results[30.0]
    assert fast.counters.get("trackers_lost", 0) > 0
