"""Table IV — "Area beneath curves".

Integrates the node-count series of the three Figure 5 runs over their
execution windows, regenerating the paper's response-time/area table, and
checks the causal claim: "the more node fluctuation, the longer response
we will get for a given workload".
"""

import pytest

from repro.experiments.calibration import PAPER_TABLE4
from repro.experiments.fig5 import run_fig5

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import FIG5_NODES, SCALE, emit


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(target_nodes=FIG5_NODES, scale=SCALE, seeds=(21, 22, 23))


def test_table4_regenerate(benchmark, fig5_result):
    def integrate_all():
        return [(r.label, r.response_time, r.area) for r in fig5_result.runs]

    rows = benchmark(integrate_all)
    emit(fig5_result.table4())
    emit("Paper values: " + ", ".join(
        f"{k}: response={v[0]:.0f}s area={v[1]:.0f}"
        for k, v in PAPER_TABLE4.items()))
    assert len(rows) == 3


def test_table4_unstable_run_is_slowest(benchmark, fig5_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    # Paper: 5c (unstable) has both the largest area-per-second deficit
    # and the longest response (6235 s vs 4396/3896 s).
    assert fig5_result.unstable_is_slowest()


def test_table4_mean_nodes_below_target(benchmark, fig5_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    # Table IV arithmetic: area/response < target (churn means the system
    # spends real time below the configured maximum; paper's 5a yields
    # 181020/4396 =~ 41 < 55).
    for run in fig5_result.runs:
        assert run.mean_nodes < FIG5_NODES
