"""Scale-sweep benchmark: fig4-style Facebook workload at 100-1000 nodes.

The perf trajectory anchor for the repo: runs the Table II workload on HOG
deployments of increasing size and records wall-clock, simulated time,
events processed, events/second of wall time, peak concurrent flow count,
and channel-core pass statistics, then writes everything to
``BENCH_scale.json`` next to this script.

Two scenarios per node count:

- ``baseline`` — the paper's Table II cost model (what PR 1 recorded);
- ``contended`` — a shuffle-heavy variant (double the intermediate data)
  on slow disks, so shuffle serves and replication streams are genuinely
  *disk*-bottlenecked.  This exercises the unified channel core's joint
  disk+network demands: every fetch drains through the server's disk-read
  constraint, its NIC, and (cross-site) the WAN legs at once.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_sweep.py              # 100/250/500/1000
    PYTHONPATH=src python benchmarks/bench_scale_sweep.py --nodes 100 250
    PYTHONPATH=src python benchmarks/bench_scale_sweep.py --smoke      # CI-fast
    REPRO_SCALE=0.1 PYTHONPATH=src python benchmarks/bench_scale_sweep.py

Workload scale follows ``REPRO_SCALE`` (default 0.25, like the other
benches); ``--scale`` overrides.  ``--smoke`` shrinks the sweep (one small
node count, tiny scale, both scenarios) to a couple of wall seconds so the
fast test tier can keep the harness itself from rotting.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
import json
import os
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    # Allow running as a plain script without PYTHONPATH set.
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.core.config import NodeConfig
from repro.experiments import calibration
from repro.experiments.common import HogRunSettings, run_facebook_on_hog
from repro.workload.schedule import LoadgenParams

DEFAULT_NODE_COUNTS = (100, 250, 500, 1000)
DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_scale.json"


def contended_loadgen() -> LoadgenParams:
    """Shuffle-heavy job costs: 2x the baseline intermediate data,
    everything else inherited from the calibrated base."""
    base = calibration.default_loadgen()
    return replace(base, map_output_ratio=2.0 * base.map_output_ratio)


def contended_node() -> NodeConfig:
    """Slow spinning disks (half the default bandwidth): the shuffle's
    joint disk+network demands become disk-bound.  Everything else —
    notably the calibrated grid CPU speed band — matches the baseline
    scenario, so the two differ ONLY in disk bandwidth."""
    return replace(calibration.grid_node_config(),
                   disk_read_rate=45e6, disk_write_rate=35e6)


def run_point(n_nodes: int, scale: float, seed: int,
              scenario: str = "baseline") -> dict:
    """One sweep point: run the workload, return its perf record."""
    kwargs = {}
    if scenario == "contended":
        kwargs["loadgen"] = contended_loadgen()
        kwargs["node"] = contended_node()
    else:
        kwargs["loadgen"] = calibration.default_loadgen()
    settings = HogRunSettings(
        n_nodes=n_nodes, seed=seed + n_nodes, scale=scale,
        # Under churn the running count hovers just below the target while
        # replacements re-download the worker package; waiting for a 100%
        # lull at 1000 nodes costs simulated *hours*.  98% matches the
        # paper's fluctuation-tolerant reading of "reaches this number".
        ramp_fraction=0.98, **kwargs)
    t0 = time.perf_counter()
    result, hog = run_facebook_on_hog(settings, return_system=True)
    wall = time.perf_counter() - t0
    events = hog.sim.events_processed
    channel = hog.fabric.channel
    return {
        "nodes": n_nodes,
        "scenario": scenario,
        "scale": scale,
        "seed": settings.seed,
        "wall_seconds": round(wall, 3),
        "sim_seconds": round(hog.sim.now, 1),
        "events": events,
        "events_per_second": round(events / wall) if wall > 0 else None,
        "peak_flows": hog.fabric.peak_flows,
        "peak_demands": channel.peak_demands,
        "fabric_rebalances": channel.rebalances,
        "uniform_groups": channel.uniform_groups,
        "uniform_completions": channel.uniform_completions,
        "cross_partition_passes": channel.cross_partition_passes,
        "starvation_rescues": channel.starvation_rescues,
        "workload_response_seconds": round(result.response_time, 1),
        "failed_jobs": result.failed_jobs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=list(DEFAULT_NODE_COUNTS),
                        help="HOG node counts to sweep (default: %(default)s)")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_SCALE", "0.25")),
                        help="workload scale in (0, 1] (default: REPRO_SCALE or 0.25)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenarios", nargs="+",
                        default=["baseline", "contended"],
                        choices=["baseline", "contended"],
                        help="which workload scenarios to run")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep (one small point per scenario) for "
                             "the fast test tier")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    nodes = args.nodes
    scale = args.scale
    # The contended scenario is a model-coverage anchor, not a scaling
    # anchor: run it at the two smallest node counts only.
    contended_nodes = sorted(nodes)[:2]
    if args.smoke:
        nodes = [30]
        contended_nodes = [30]
        scale = 0.04

    points = []
    contended_points = []
    for n in nodes:
        if "baseline" in args.scenarios:
            print(f"[scale-sweep] running {n} nodes @ scale {scale} ...",
                  flush=True)
            record = run_point(n, scale, args.seed)
            points.append(record)
            _report(record)
    for n in contended_nodes:
        if "contended" in args.scenarios:
            print(f"[scale-sweep] running {n} nodes @ scale {scale} "
                  f"(shuffle-heavy, slow disks) ...", flush=True)
            record = run_point(n, scale, args.seed, scenario="contended")
            contended_points.append(record)
            _report(record)

    report = {
        "benchmark": "bench_scale_sweep",
        "description": "fig4-style Facebook workload on HOG at increasing "
                       "node counts (unified max-min channel core: joint "
                       "disk+network demands, per-bottleneck group timers, "
                       "slack-link decoupling)",
        "python": sys.version.split()[0],
        "points": points,
        "contended_points": contended_points,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[scale-sweep] wrote {args.output}")
    return 0


def _report(record: dict) -> None:
    print(f"[scale-sweep]   {record['wall_seconds']:.2f}s wall, "
          f"{record['events']} events "
          f"({record['events_per_second']}/s), "
          f"peak {record['peak_flows']} flows, "
          f"response {record['workload_response_seconds']}s",
          flush=True)


if __name__ == "__main__":
    raise SystemExit(main())
