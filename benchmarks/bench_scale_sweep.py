"""Scale-sweep benchmark: fig4-style Facebook workload at 100-1000 nodes.

The perf trajectory anchor for the repo: runs the Table II workload on HOG
deployments of increasing size and records wall-clock, simulated time,
events processed, events/second of wall time, peak concurrent flow count,
and channel-core pass statistics, then writes everything to
``BENCH_scale.json`` next to this script.

All setup comes from the scenario registry
(:mod:`repro.scenarios.registry`); this script owns no cluster/workload
construction of its own.  Two scenarios sweep per node count:

- ``baseline`` — the paper's Table II cost model (what PR 1 recorded);
- ``contended`` — a shuffle-heavy variant (double the intermediate data)
  on slow disks, so shuffle serves and replication streams are genuinely
  *disk*-bottlenecked, exercising the joint disk+network demands.

A third section runs EVERY registry scenario once at a small fixed size
and records its full :class:`~repro.scenarios.runner.ScenarioResult` —
the model-coverage anchor keeping wan_staging / hetero_tiers /
rebalance_under_load / churn_heavy measured between releases.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_sweep.py              # 100..1000 + 10k frontier
    PYTHONPATH=src python benchmarks/bench_scale_sweep.py --nodes 100 250
    PYTHONPATH=src python benchmarks/bench_scale_sweep.py --smoke      # CI-fast
    PYTHONPATH=src python benchmarks/bench_scale_sweep.py --smoke-100k # 100k survival check
    REPRO_SCALE=0.1 PYTHONPATH=src python benchmarks/bench_scale_sweep.py

Workload scale follows ``REPRO_SCALE`` (default 0.25, like the other
benches); ``--scale`` overrides.  ``--smoke`` shrinks the sweep (one small
node count, tiny scale, every scenario) to a few wall seconds so the
fast test tier can keep the harness itself from rotting.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

if __package__ in (None, ""):
    # Allow running as a plain script without PYTHONPATH set.
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.experiments import calibration
from repro.obs.diff import Thresholds, diff_reports
from repro.scenarios import ScenarioRunner, registry
from repro.scenarios.parallel import run_specs_parallel

DEFAULT_NODE_COUNTS = (100, 250, 500, 1000)
DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_scale.json"
#: The 10k-node frontier point.  At this scale the single central package
#: server becomes the physical limit: preempted workers re-download the
#: 75 MB package through one NIC (~1.67 replacements/s), so under the
#: baseline churn policy (~1/4000 per node-second) the sustainable
#: running count tops out near 6.7k nodes regardless of how many pilots
#: are submitted.  The frontier point therefore ramps to 50% — the honest
#: achievable target — and then drives the workload.
FRONTIER_NODES = 10_000
FRONTIER_SCALE = 0.02
FRONTIER_RAMP_FRACTION = 0.5
#: ``--smoke-100k``: a control-plane survival check, not a perf anchor.
#: Same physics as the frontier point, an order of magnitude more pilots:
#: the ramp download alone spans ~60k simulated seconds, and the
#: sustainable running count is still ~6.7k, hence the 5% ramp target.
SMOKE_100K_NODES = 100_000
SMOKE_100K_SCALE = 0.01
SMOKE_100K_RAMP_FRACTION = 0.05
#: Sizing of the every-scenario coverage section (kept small: it is a
#: model-coverage anchor, not a scaling anchor).
SCENARIO_SECTION_NODES = 40
SCENARIO_SECTION_SCALE = 0.05
#: Gauge-sampling cadence for sweep points (sim-seconds).  Probe ticks
#: are subtracted from the reported event count and never influence
#: decisions, so the perf keys stay comparable with pre-obs baselines.
BENCH_SAMPLE_INTERVAL = 60.0
BENCH_TIMELINE_POINTS = 128


def contended_loadgen():
    """The ``contended`` registry scenario's loadgen (2x intermediate
    data) — exposed for tests."""
    return registry.build("contended").workload.loadgen


def contended_node():
    """The ``contended`` registry scenario's half-speed-disk node config —
    exposed for tests."""
    return registry.build("contended").cluster.node


def run_point(n_nodes: int, scale: float, seed: int,
              scenario: str = "baseline",
              ramp_fraction: float = 0.98) -> dict:
    """One sweep point: run the registry scenario, return its perf record."""
    spec = registry.build(scenario, n_nodes=n_nodes, scale=scale,
                          seed=seed + n_nodes)
    # Under churn the running count hovers just below the target while
    # replacements re-download the worker package; waiting for a 100%
    # lull at 1000 nodes costs simulated *hours*.  98% matches the
    # paper's fluctuation-tolerant reading of "reaches this number".
    # (Frontier points pass a lower fraction: beyond ~6.7k nodes the
    # central package server caps the sustainable count itself.)
    spec.cluster.ramp_fraction = ramp_fraction
    spec.obs.sample_interval = BENCH_SAMPLE_INTERVAL
    spec.obs.timeline_max_points = BENCH_TIMELINE_POINTS
    # Engine self-profile (dispatch mix, pool reuses, batch sizes):
    # observational only, and the evidence for where dispatch work goes.
    spec.obs.profile_engine = True
    runner = ScenarioRunner(spec)
    result = runner.run()
    return {
        "nodes": n_nodes,
        "scenario": scenario,
        "scale": scale,
        "ramp_fraction": ramp_fraction,
        "seed": spec.seed,
        "wall_seconds": round(result.wall_seconds, 3),
        "sim_seconds": round(result.sim_seconds, 1),
        "events": result.events,
        "events_per_second": result.events_per_second,
        "peak_flows": result.channel["peak_flows"],
        "peak_demands": result.channel["peak_demands"],
        "fabric_rebalances": result.channel["rebalances"],
        "uniform_groups": result.channel["uniform_groups"],
        "uniform_completions": result.channel["uniform_completions"],
        "uniform_joins": result.channel["uniform_joins"],
        "cross_partition_passes": result.channel["cross_partition_passes"],
        "arrival_fast_paths": result.channel["arrival_fast_paths"],
        "departure_fast_paths": result.channel["departure_fast_paths"],
        "completion_fast_paths": result.channel["completion_fast_paths"],
        "uniform_fast_accepts": result.channel["uniform_fast_accepts"],
        # Power-of-two histogram of filling-pass component sizes (bucket i
        # counts passes over [2^(i-1), 2^i) demands; trailing zeros trimmed).
        "pass_size_hist": result.channel["pass_size_hist"],
        "starvation_rescues": result.channel["starvation_rescues"],
        "workload_response_seconds": round(result.makespan_seconds, 1),
        "failed_jobs": result.failed_jobs,
        # Control-plane counters: heartbeat rounds vs. raw heartbeats and
        # the index-update totals (the work the delta-driven path does
        # *instead of* rescanning every job per heartbeat).
        "control": dict(result.control),
        # The full registry snapshot and the sampled per-phase gauge
        # timelines — the obs sections the diff/inspect tooling reads.
        "registry": runner.system.registry.snapshot(),
        "timelines": result.timelines,
        # Dispatch-loop self-profile: event mix, callback-timer fires,
        # free-list reuses, and same-instant batch sizes.
        "engine": result.engine,
    }


def run_scenario_section(nodes: int, scale: float, seed: int,
                         skip=(), workers: int = 1) -> dict:
    """Every registry scenario once, at one small size: full results.

    ``workers > 1`` fans the scenarios out over a process pool (the
    simulation payloads are identical to a serial run; only wall-clock
    fields differ)."""
    names = [n for n in registry.names() if n not in skip]
    specs = [registry.build(n, n_nodes=nodes, scale=scale, seed=seed)
             for n in names]
    if workers > 1:
        print(f"[scale-sweep] {len(names)} scenarios @ {nodes} nodes, "
              f"scale {scale}, {min(workers, len(names))} workers ...",
              flush=True)
        records = run_specs_parallel(specs, workers)
    else:
        records = []
        for name, spec in zip(names, specs):
            print(f"[scale-sweep] scenario {name!r} @ {nodes} nodes, "
                  f"scale {scale} ...", flush=True)
            records.append(ScenarioRunner(spec).run().to_dict())
    section = dict(zip(names, records))
    for name, rec in section.items():
        print(f"[scale-sweep]   {name}[{rec['nodes']}]: "
              f"makespan={rec['makespan_seconds']:.0f}s "
              f"wall={rec['wall_seconds']:.2f}s events={rec['events']} "
              f"failed={rec['failed_jobs']}", flush=True)
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=list(DEFAULT_NODE_COUNTS),
                        help="HOG node counts to sweep (default: %(default)s)")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_SCALE", "0.25")),
                        help="workload scale in (0, 1] (default: REPRO_SCALE or 0.25)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenarios", nargs="+",
                        default=["baseline", "contended"],
                        choices=["baseline", "contended"],
                        help="which workload scenarios to sweep over node "
                             "counts (the coverage section always runs all)")
    parser.add_argument("--no-scenario-section", action="store_true",
                        help="skip the every-scenario coverage section")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep (one small point per scenario) for "
                             "the fast test tier")
    parser.add_argument("--no-frontier", action="store_true",
                        help="skip the 10k-node frontier point")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes for the every-scenario "
                             "coverage section (default: serial)")
    parser.add_argument("--smoke-100k", action="store_true",
                        help="run ONLY the 100k-node control-plane survival "
                             "check (writes BENCH_scale_100k.json unless "
                             "--output is given)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--check-against", type=Path, default=None,
                        metavar="BASELINE",
                        help="diff the fresh report against this older "
                             "BENCH_scale.json and exit 1 on any "
                             "threshold-flagged regression (wall "
                             "tolerance, events/s floor, fast-path-rate "
                             "floor, behaviour shifts)")
    parser.add_argument("--check-wall-tolerance", type=float, default=None,
                        help="allowed fractional wall growth for "
                             "--check-against (default 0.5)")
    parser.add_argument("--check-eps-floor", type=float, default=None,
                        help="events/s floor as a fraction of the "
                             "baseline (default 0.8)")
    parser.add_argument("--check-fastpath-drop", type=float, default=None,
                        help="allowed absolute fast-path-rate drop "
                             "(default 0.05)")
    args = parser.parse_args(argv)

    if args.smoke_100k:
        if args.output == DEFAULT_OUTPUT:
            args.output = DEFAULT_OUTPUT.with_name("BENCH_scale_100k.json")
        print(f"[scale-sweep] 100k smoke: {SMOKE_100K_NODES} nodes @ scale "
              f"{SMOKE_100K_SCALE}, ramp to "
              f"{SMOKE_100K_RAMP_FRACTION:.0%} ...", flush=True)
        record = run_point(SMOKE_100K_NODES, SMOKE_100K_SCALE, args.seed,
                           ramp_fraction=SMOKE_100K_RAMP_FRACTION)
        _report(record)
        report = {
            "benchmark": "bench_scale_sweep --smoke-100k",
            "description": "100k-pilot control-plane survival check "
                           "(ramp capped by the central package server)",
            "python": sys.version.split()[0],
            "points": [record],
        }
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[scale-sweep] wrote {args.output}")
        return _check_against(args, report)

    nodes = args.nodes
    scale = args.scale
    # The contended scenario is a model-coverage anchor, not a scaling
    # anchor: run it at the two smallest node counts only.
    contended_nodes = sorted(nodes)[:2]
    section_nodes, section_scale = SCENARIO_SECTION_NODES, SCENARIO_SECTION_SCALE
    section_skip = ()
    if args.smoke:
        nodes = [30]
        contended_nodes = [30]
        scale = 0.04
        # The sweep points above already cover baseline and contended at
        # this exact size; re-running them in the section buys nothing.
        section_nodes, section_scale = 30, 0.04
        section_skip = ("baseline", "contended")

    points = []
    contended_points = []
    for n in nodes:
        if "baseline" in args.scenarios:
            print(f"[scale-sweep] running {n} nodes @ scale {scale} ...",
                  flush=True)
            record = run_point(n, scale, args.seed)
            points.append(record)
            _report(record)
    for n in contended_nodes:
        if "contended" in args.scenarios:
            print(f"[scale-sweep] running {n} nodes @ scale {scale} "
                  f"(shuffle-heavy, slow disks) ...", flush=True)
            record = run_point(n, scale, args.seed, scenario="contended")
            contended_points.append(record)
            _report(record)

    frontier_points = []
    if not args.smoke and not args.no_frontier and "baseline" in args.scenarios:
        print(f"[scale-sweep] frontier: {FRONTIER_NODES} nodes @ scale "
              f"{FRONTIER_SCALE}, ramp to {FRONTIER_RAMP_FRACTION:.0%} ...",
              flush=True)
        record = run_point(FRONTIER_NODES, FRONTIER_SCALE, args.seed,
                           ramp_fraction=FRONTIER_RAMP_FRACTION)
        frontier_points.append(record)
        _report(record)

    scenario_section = {}
    if not args.no_scenario_section:
        scenario_section = run_scenario_section(section_nodes, section_scale,
                                                args.seed, skip=section_skip,
                                                workers=args.parallel)

    report = {
        "benchmark": "bench_scale_sweep",
        "description": "fig4-style Facebook workload on HOG at increasing "
                       "node counts (unified max-min channel core with "
                       "arrival/departure/completion fast paths and "
                       "pass-size telemetry), plus one run of every "
                       "registry scenario",
        "python": sys.version.split()[0],
        "points": points,
        "contended_points": contended_points,
        "frontier_points": frontier_points,
        "scenarios": scenario_section,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[scale-sweep] wrote {args.output}")
    return _check_against(args, report)


def _check_against(args, report: dict) -> int:
    """The CI regression gate: diff the fresh report against a baseline
    through :mod:`repro.obs.diff`; non-zero exit on any flagged entry."""
    if args.check_against is None:
        return 0
    baseline = json.loads(args.check_against.read_text())
    thresholds = Thresholds()
    if args.check_wall_tolerance is not None:
        thresholds.wall_tolerance = args.check_wall_tolerance
    if args.check_eps_floor is not None:
        thresholds.eps_floor = args.check_eps_floor
    if args.check_fastpath_drop is not None:
        thresholds.fastpath_drop = args.check_fastpath_drop
    entries, notes = diff_reports(baseline, report, thresholds)
    for note in notes:
        print(f"[scale-sweep] note: {note}")
    flagged = [e for e in entries if e.flag]
    for entry in flagged:
        print(f"[scale-sweep] REGRESSION {entry.format()}")
    print(f"[scale-sweep] check-against {args.check_against}: "
          f"{len(entries)} changed value(s), {len(flagged)} flagged")
    return 1 if flagged else 0


def _report(record: dict) -> None:
    print(f"[scale-sweep]   {record['wall_seconds']:.2f}s wall, "
          f"{record['events']} events "
          f"({record['events_per_second']}/s), "
          f"peak {record['peak_flows']} flows, "
          f"response {record['workload_response_seconds']}s",
          flush=True)


if __name__ == "__main__":
    raise SystemExit(main())
