"""Scale-sweep benchmark: fig4-style Facebook workload at 100-1000 nodes.

The perf trajectory anchor for the repo: runs the Table II workload on HOG
deployments of increasing size and records wall-clock, simulated time,
events processed, events/second of wall time, peak concurrent flow count,
and fabric rebalance passes, then writes everything to ``BENCH_scale.json``
next to this script.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_sweep.py              # 100/250/500/1000
    PYTHONPATH=src python benchmarks/bench_scale_sweep.py --nodes 100 250
    REPRO_SCALE=0.1 PYTHONPATH=src python benchmarks/bench_scale_sweep.py

Workload scale follows ``REPRO_SCALE`` (default 0.25, like the other
benches); ``--scale`` overrides.  Node counts beyond the paper's 55-100
exercise exactly the hot paths this repo optimises: event-driven run
loops, incremental fabric rebalancing, and O(1) host-flow indexes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    # Allow running as a plain script without PYTHONPATH set.
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.experiments import calibration
from repro.experiments.common import HogRunSettings, run_facebook_on_hog

DEFAULT_NODE_COUNTS = (100, 250, 500, 1000)
DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_scale.json"


def run_point(n_nodes: int, scale: float, seed: int) -> dict:
    """One sweep point: run the workload, return its perf record."""
    settings = HogRunSettings(
        n_nodes=n_nodes, seed=seed + n_nodes, scale=scale,
        loadgen=calibration.default_loadgen(),
        # Under churn the running count hovers just below the target while
        # replacements re-download the worker package; waiting for a 100%
        # lull at 1000 nodes costs simulated *hours*.  98% matches the
        # paper's fluctuation-tolerant reading of "reaches this number".
        ramp_fraction=0.98)
    t0 = time.perf_counter()
    result, hog = run_facebook_on_hog(settings, return_system=True)
    wall = time.perf_counter() - t0
    events = hog.sim.events_processed
    return {
        "nodes": n_nodes,
        "scale": scale,
        "seed": settings.seed,
        "wall_seconds": round(wall, 3),
        "sim_seconds": round(hog.sim.now, 1),
        "events": events,
        "events_per_second": round(events / wall) if wall > 0 else None,
        "peak_flows": hog.fabric.peak_flows,
        "fabric_rebalances": hog.fabric.rebalances,
        "starvation_rescues": hog.fabric.starvation_rescues,
        "workload_response_seconds": round(result.response_time, 1),
        "failed_jobs": result.failed_jobs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=list(DEFAULT_NODE_COUNTS),
                        help="HOG node counts to sweep (default: %(default)s)")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_SCALE", "0.25")),
                        help="workload scale in (0, 1] (default: REPRO_SCALE or 0.25)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    points = []
    for n in args.nodes:
        print(f"[scale-sweep] running {n} nodes @ scale {args.scale} ...",
              flush=True)
        record = run_point(n, args.scale, args.seed)
        points.append(record)
        print(f"[scale-sweep]   {record['wall_seconds']:.2f}s wall, "
              f"{record['events']} events "
              f"({record['events_per_second']}/s), "
              f"peak {record['peak_flows']} flows, "
              f"response {record['workload_response_seconds']}s",
              flush=True)

    report = {
        "benchmark": "bench_scale_sweep",
        "description": "fig4-style Facebook workload on HOG at increasing "
                       "node counts (event-driven run loops + incremental "
                       "fabric rebalancing)",
        "python": sys.version.split()[0],
        "points": points,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[scale-sweep] wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
