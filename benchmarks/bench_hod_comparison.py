"""Related-work comparison — HOG vs Hadoop On Demand (§V).

"For frequent MapReduce requests, HOD has high reconstruction overhead,
fixed node number, and a randomly chosen head node.  Compared to HOD, HOG
does not have reconstruction time."

Runs the same (scaled) Table II job mix both ways and quantifies HOD's
per-request reconstruction overhead.
"""

import pytest

from repro.experiments.ablations import compare_hod

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import FIG5_NODES, SCALE, emit


@pytest.fixture(scope="module")
def comparison():
    return compare_hod(n_nodes=FIG5_NODES, scale=min(SCALE, 0.1))


def test_hod_comparison(benchmark, comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(comparison.to_table())


def test_hog_beats_hod_on_frequent_requests(benchmark, comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    assert comparison.hog_response < comparison.hod_total_response


def test_hod_overhead_is_substantial(benchmark, comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    # Allocation + construction + staging must be a visible share of
    # each HOD request.
    assert comparison.hod_mean_overhead_fraction > 0.10
