"""Ablation — replication factor 3 vs 10 (§III-B1).

"we increased the default replication factor for all files in HDFS to 10
replicas from the traditional replication factor for Hadoop of 3 ...
Too many replicas would impose extra replication overhead ... Too few
would cause frequent data failures in the dynamic HOG environment."

Under heavy churn, replication 10 should deliver better data availability
(fewer moments where a block has no reachable replica) at the cost of
more re-replication traffic.
"""

import pytest

from repro.experiments.ablations import ablate_replication

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import FIG5_NODES, SCALE, emit


@pytest.fixture(scope="module")
def results():
    return ablate_replication(factors=(3, 10), n_nodes=FIG5_NODES,
                              scale=min(SCALE, 0.25))


def test_ablation_replication(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation: replication factor under churn"]
    for factor, res in sorted(results.items()):
        lines.append(
            f"  repl={factor:2d}: response={res.response_time:.0f}s "
            f"failed_jobs={res.failed_jobs} "
            f"data_local={res.locality['data_local']} "
            f"remote={res.locality['remote']}")
    emit("\n".join(lines))
    assert set(results) == {3, 10}


def test_replication_10_gives_more_data_locality(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    # 10 replicas over ~5 sites => nearly every node-local launch is
    # possible; 3 replicas leave many tasks non-local.
    r3, r10 = results[3], results[10]
    total3 = sum(r3.locality.values()) or 1
    total10 = sum(r10.locality.values()) or 1
    frac3 = r3.locality["data_local"] / total3
    frac10 = r10.locality["data_local"] / total10
    assert frac10 > frac3


def test_replication_10_survives_churn_that_breaks_3(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    # The paper's rationale verbatim: "Too few [replicas] would cause
    # frequent data failures in the dynamic HOG environment."  Replication
    # 10 must complete the workload; replication 3 may lose data (failed
    # jobs) and must never do better than 10.
    assert results[10].failed_jobs == 0
    assert results[3].failed_jobs >= results[10].failed_jobs
