"""Ablation — configurable task copies (§VI future work).

"Currently, Hadoop only uses multiple executions for slower tasks (1/3
slower than average) execution, and at most two copies for a task.  In
our future work, we will make all tasks have configurable number of
copies running in the HOG and take the fastest as the result."

This bench implements that future-work feature: copies=1 (speculation
off), 2 (stock), 3 (the proposed extension) under an unstable grid.
"""

import pytest

from repro.experiments.ablations import ablate_speculative_copies

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import FIG5_NODES, SCALE, emit


@pytest.fixture(scope="module")
def results():
    return ablate_speculative_copies(copies=(1, 2, 3), n_nodes=FIG5_NODES,
                                     scale=min(SCALE, 0.25))


def test_ablation_speculative_copies(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation: max task copies (N-copy execution, §VI)"]
    for n, res in sorted(results.items()):
        c = res.counters
        lines.append(
            f"  copies={n}: response={res.response_time:.0f}s "
            f"speculative={c.get('speculative_attempts', 0)} "
            f"killed={c.get('speculative_attempts_killed', 0)} "
            f"failed_jobs={res.failed_jobs}")
    emit("\n".join(lines))
    assert set(results) == {1, 2, 3}


def test_all_copy_settings_complete(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    for res in results.values():
        assert res.failed_jobs == 0


def test_more_copies_never_fewer_backups(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    # copies=1 disables speculation entirely.
    assert results[1].counters.get("speculative_attempts", 0) == 0
