"""Shared benchmark-harness settings.

Every benchmark regenerates one of the paper's tables/figures and prints
it.  Because a full paper-scale run of Figure 4 takes tens of minutes,
benchmarks default to a reduced-but-shape-preserving configuration and
honour two environment variables:

``REPRO_SCALE``
    Workload scale in (0, 1] (fraction of the 88-job Table II mix per
    bin).  Default 0.25.
``REPRO_FULL``
    Set to ``1`` to run the paper-exact configuration (scale 1.0, all 12
    Figure 4 node counts, 3 runs per point).
"""

from __future__ import annotations

import os
import sys

FULL = os.environ.get("REPRO_FULL", "0") == "1"
SCALE = 1.0 if FULL else float(os.environ.get("REPRO_SCALE", "0.25"))

#: Figure 4 x-axis used by the benches.
if FULL:
    FIG4_NODE_COUNTS = (40, 50, 55, 60, 99, 100, 132, 160, 171, 180, 974, 1101)
    FIG4_RUNS = 3
else:
    FIG4_NODE_COUNTS = (40, 55, 100, 160, 200)
    FIG4_RUNS = 1

#: Node count for 55-node experiments (Fig 5 / ablations).
FIG5_NODES = 55


def emit(text: str) -> None:
    """Print a regenerated table so it lands in the benchmark log.

    Writes to the real stderr (``sys.__stderr__``) so the tables survive
    pytest's per-test capture and appear in ``bench_output.txt``."""
    print("\n" + text, file=sys.__stderr__, flush=True)
