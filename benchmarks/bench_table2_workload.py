"""Table II — the truncated six-bin workload with reduce counts.

Checks the (map, reduce) pairs against the paper and benchmarks the full
submission-schedule construction used by every experiment.
"""

import numpy as np

from repro.experiments.tables import render_table2
from repro.workload import TRUNCATED_REDUCES, build_facebook_schedule, truncated_bins

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import emit

PAPER_TABLE2 = {1: (1, 1), 2: (2, 1), 3: (10, 5), 4: (50, 10),
                5: (100, 20), 6: (200, 30)}


def test_table2_matches_paper(benchmark):
    def build():
        return build_facebook_schedule(np.random.default_rng(1))

    schedule = benchmark(build)

    for b in truncated_bins():
        maps, reduces = PAPER_TABLE2[b.bin_id]
        assert b.maps_in_benchmark == maps
        assert b.reduces_in_benchmark == reduces
    assert TRUNCATED_REDUCES == {k: v[1] for k, v in PAPER_TABLE2.items()}

    # Every scheduled job carries Table II's counts.
    for job in schedule.jobs:
        maps, reduces = PAPER_TABLE2[job.bin_id]
        assert job.spec.num_maps == maps and job.spec.num_reduces == reduces
    emit(render_table2())
