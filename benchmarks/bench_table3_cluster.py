"""Table III — the dedicated MapReduce cluster configuration.

Builds the baseline cluster, verifies its shape against the paper
(30 workers, 100 map slots = 100 cores, 30 reduce slots, one rack), and
benchmarks cluster construction + daemon registration.
"""

from repro.baselines import DedicatedCluster, table3_config
from repro.experiments.tables import render_table3
from repro.sim import Simulator

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import emit


def test_table3_cluster_matches_paper(benchmark):
    def build():
        sim = Simulator()
        cluster = DedicatedCluster(sim, table3_config())
        sim.run(until=10.0)  # registration heartbeats
        return cluster

    cluster = benchmark(build)
    cfg = cluster.config
    assert cfg.total_nodes == 30
    assert cfg.total_map_slots == 100
    assert cfg.total_reduce_slots == 30
    assert cfg.groups[0].count == 20 and cfg.groups[0].map_slots == 4
    assert cfg.groups[1].count == 10 and cfg.groups[1].map_slots == 2
    assert cluster.namenode.num_live_datanodes() == 30
    assert cluster.jobtracker.live_tracker_count() == 30
    # "one rack": a single site/failure domain.
    assert len({cluster.topology.site_of(h)
                for h in cluster.tasktrackers}) == 1
    emit(render_table3(cfg))
