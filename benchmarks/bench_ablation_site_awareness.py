"""Ablation — site awareness on vs off (§III-B1).

"rack awareness in HOG is extended to site awareness ... Sites are common
failure domains ... The extension to a third failure level will also
bring data locality benefits."

With awareness off, every node falls into one flat domain: block
placement cannot spread replicas across sites (a burst preemption can
eliminate every copy) and the scheduler cannot prefer close-by data.
"""

import pytest

from repro.experiments.ablations import ablate_site_awareness

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import FIG5_NODES, SCALE, emit


@pytest.fixture(scope="module")
def results():
    return ablate_site_awareness(n_nodes=FIG5_NODES, scale=min(SCALE, 0.25))


def test_ablation_site_awareness(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation: site awareness under churn"]
    for enabled, res in sorted(results.items(), reverse=True):
        c = res.counters
        lines.append(
            f"  awareness={'on ' if enabled else 'off'}: "
            f"response={res.response_time:.0f}s "
            f"failed_jobs={res.failed_jobs} "
            f"locality={res.locality}")
    emit("\n".join(lines))
    assert set(results) == {True, False}


def test_site_awareness_completes_workload(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    assert results[True].failed_jobs == 0


def test_site_awareness_no_worse(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    # At replication 10 nearly every launch is data-local with or
    # without awareness, so single-run response/failure deltas are noise.
    # Assert only the robust envelope: awareness must not blow up the
    # run (response within 1.5x, failures within +2) — its real payoffs
    # (cross-site replica spread, WAN traffic) are asserted in
    # tests/test_hog_system.py::TestWorkloadOnHog and the placement tests.
    assert results[True].failed_jobs <= results[False].failed_jobs + 2
    assert results[True].response_time <= \
        results[False].response_time * 1.5
