"""Ablation — the zombie-daemon fix on vs off (§IV-D1).

"many site resource managers are unable to preempt a daemon that has
double forked ... the datanode would fail, but the tasktracker would
continue working.  When the tasktracker accepted a map or reduce job, it
would fail immediately."

With the fix off, preemptions leave zombie daemons that keep
heartbeating: they eat task attempts (immediate failures) and pin phantom
block replicas.  The fix (in-tree daemons + 3-minute disk self-check)
removes both pathologies.
"""

import pytest

from repro.experiments.ablations import ablate_zombie_fix

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import FIG5_NODES, SCALE, emit


@pytest.fixture(scope="module")
def results():
    return ablate_zombie_fix(n_nodes=FIG5_NODES, scale=min(SCALE, 0.25))


def test_ablation_zombie_fix(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation: zombie-daemon fix under churn"]
    for fixed, res in sorted(results.items(), reverse=True):
        c = res.counters
        lines.append(
            f"  fix={'on ' if fixed else 'off'}: "
            f"response={res.response_time:.0f}s "
            f"attempts_failed={c.get('attempts_failed', 0)} "
            f"trackers_blacklisted={c.get('trackers_blacklisted', 0)} "
            f"failed_jobs={res.failed_jobs}")
    emit("\n".join(lines))


def test_zombies_cause_task_failures(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    broken = results[False]
    fixed = results[True]
    # Zombie trackers eat attempts that fail immediately.
    assert broken.counters.get("attempts_failed", 0) > \
        fixed.counters.get("attempts_failed", 0)


def test_fix_completes_workload(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    assert results[True].failed_jobs == 0
