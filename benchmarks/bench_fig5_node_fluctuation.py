"""Figure 5 — node fluctuation during three 55-node executions.

Two stable runs (5a, 5b) and one unstable run (5c).  Checks the paper's
qualitative observations:

- the reported node count fluctuates (dips on preemption, recovers as the
  factory resubmits, briefly exceeds the believed count after abrupt
  losses);
- the unstable run shows substantially more fluctuation than the stable
  ones.
"""

import numpy as np
import pytest

from repro.experiments.fig5 import run_fig5

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import FIG5_NODES, SCALE, emit


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(target_nodes=FIG5_NODES, scale=SCALE)


def test_fig5_regenerate(benchmark, fig5_result):
    def series_stats():
        out = {}
        for run in fig5_result.runs:
            times, values = run.series
            out[run.label] = (float(values.min()), float(values.max()))
        return out

    stats = benchmark(series_stats)
    lines = [f"Figure 5: node counts during execution (target {FIG5_NODES})"]
    for run in fig5_result.runs:
        lo, hi = stats[run.label]
        kind = "stable" if run.stable else "UNSTABLE"
        lines.append(f"  {run.label} ({kind:8s}): nodes in [{lo:.0f}, {hi:.0f}]"
                     f" mean={run.mean_nodes:.1f}"
                     f" response={run.response_time:.0f}s")
    emit("\n".join(lines))
    from repro.metrics import plot_series
    for run in fig5_result.runs:
        times, values = run.series
        emit(plot_series(times, values, y_max=FIG5_NODES * 1.3,
                         title=f"Figure {run.label}: available nodes"))


def test_fig5_all_runs_complete_workload(benchmark, fig5_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    for run in fig5_result.runs:
        assert run.response_time > 0
        assert run.area > 0


def test_fig5_nodes_fluctuate_under_churn(benchmark, fig5_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    for run in fig5_result.runs:
        times, values = run.series
        assert len(values) > 1
        # Some loss must be visible below the target at some point.
        assert values.min() < FIG5_NODES

def test_fig5_unstable_run_fluctuates_more(benchmark, fig5_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    stable_means = [r.mean_nodes for r in fig5_result.runs if r.stable]
    unstable_means = [r.mean_nodes for r in fig5_result.runs if not r.stable]
    # The unstable execution delivers fewer average nodes.
    assert min(stable_means) > max(unstable_means)
