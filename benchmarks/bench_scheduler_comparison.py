"""Extension — scheduler comparison: FIFO vs delay scheduling vs
matchmaking.

HOG uses stock FIFO + speculation (§III-B2); the paper's bibliography
carries both alternatives ([3] Zaharia et al.'s delay scheduling — whose
workload the evaluation borrows — and [20] the authors' own matchmaking).
This bench runs all three on the same low-replication workload and
compares map-launch locality.
"""

import pytest

from repro.experiments.ablations import compare_schedulers

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _util import SCALE, emit


@pytest.fixture(scope="module")
def results():
    return compare_schedulers(n_nodes=40, scale=min(SCALE, 0.25))


def _local_fraction(res):
    total = sum(res.locality.values()) or 1
    return res.locality["data_local"] / total


def test_scheduler_comparison(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Scheduler comparison (replication 2, 40 nodes)"]
    for name, res in results.items():
        lines.append(
            f"  {name:12s}: response={res.response_time:.0f}s "
            f"data_local={100 * _local_fraction(res):.0f}% "
            f"failed_jobs={res.failed_jobs}")
    emit("\n".join(lines))
    assert set(results) == {"fifo", "delay", "matchmaking"}


def test_all_schedulers_complete_workload(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    for res in results.values():
        assert res.failed_jobs == 0


def test_locality_schedulers_beat_fifo(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # asserts run under --benchmark-only
    fifo = _local_fraction(results["fifo"])
    assert _local_fraction(results["delay"]) >= fifo * 0.95
    assert _local_fraction(results["matchmaking"]) >= fifo * 0.95
