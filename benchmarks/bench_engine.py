"""Pure-engine micro-benchmark: timer/process dispatch throughput.

Measures the raw event loop in isolation — no cluster, no channel, no
workload — across the three dispatch shapes the fast paths target:

- ``process_sleep`` — N generator processes each sleeping M times: the
  classic ``Timeout`` + ``Process._resume`` cycle, where the timeout
  free list pays off.
- ``callback_timer`` — N independent ``call_after`` cadence chains:
  the resume-free ``CallbackTimer`` path (heartbeat/probe/channel-timer
  shape).
- ``coalesced_burst`` — M rounds of N ``call_at`` registrations on one
  shared timestamp per round: timestamp coalescing plus same-instant
  batch dispatch.

Every shape runs **pooled vs. unpooled** (``Simulator(pooling=False)``
keeps allocation behaviour pre-pool) so the free lists' contribution is
measured, not assumed.  Results — wall seconds, events, events/s, and
the :class:`~repro.sim.events.EngineProfile` counters evidencing which
path fired — go to ``BENCH_engine.json`` next to this script.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke    # CI-fast
    PYTHONPATH=src python benchmarks/bench_engine.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    # Allow running as a plain script without PYTHONPATH set.
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.sim.engine import Simulator
from repro.sim.events import EngineProfile

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_engine.json"

#: (processes-or-chains, ticks each) per shape; --smoke shrinks both.
FULL_SIZES = {"process_sleep": (200, 500),
              "callback_timer": (200, 500),
              "coalesced_burst": (200, 500)}
SMOKE_SIZES = {"process_sleep": (20, 25),
               "callback_timer": (20, 25),
               "coalesced_burst": (20, 25)}


def _run_process_sleep(sim: Simulator, n: int, m: int) -> None:
    def sleeper(sim):
        for _ in range(m):
            yield sim.timeout(1.0)

    for _ in range(n):
        sim.process(sleeper(sim))
    sim.run()


def _run_callback_timer(sim: Simulator, n: int, m: int) -> None:
    def tick(state):
        state[1] += 1
        if state[1] < m:
            sim.call_after(state[0], tick, state)

    for i in range(n):
        # Distinct periods so the chains do not coalesce by accident.
        sim.call_after(1.0 + i * 1e-3, tick, [1.0 + i * 1e-3, 0])
    sim.run()


def _run_coalesced_burst(sim: Simulator, n: int, m: int) -> None:
    fired = []

    def round_at(t: float):
        for _ in range(n):
            sim.call_at(t, fired.append, t)

    for r in range(1, m + 1):
        round_at(float(r))
    sim.run()
    assert len(fired) == n * m


SHAPES = {"process_sleep": _run_process_sleep,
          "callback_timer": _run_callback_timer,
          "coalesced_burst": _run_coalesced_burst}


def run_shape(name: str, n: int, m: int, pooling: bool,
              repeats: int) -> dict:
    """Best-of-``repeats`` wall time for one shape/pooling combination."""
    best = None
    for _ in range(repeats):
        sim = Simulator(pooling=pooling)
        sim.profile = EngineProfile()
        t0 = time.perf_counter()
        SHAPES[name](sim, n, m)
        wall = time.perf_counter() - t0
        if best is None or wall < best["wall_seconds"]:
            best = {
                "shape": name,
                "pooling": pooling,
                "units": n,
                "ticks": m,
                "wall_seconds": round(wall, 6),
                "events": sim.events_processed,
                "events_per_second": (round(sim.events_processed / wall)
                                      if wall > 0 else None),
                "profile": sim.profile.as_dict(),
            }
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for the fast test tier")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-time repeats per point, best kept "
                             "(default: %(default)s)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    points = []
    for name, (n, m) in sizes.items():
        for pooling in (False, True):
            rec = run_shape(name, n, m, pooling, args.repeats)
            points.append(rec)
            print(f"[bench-engine] {name:16s} pooling={str(pooling):5s} "
                  f"events={rec['events']:>8d} "
                  f"wall={rec['wall_seconds']:.4f}s "
                  f"({rec['events_per_second']:,} ev/s)", flush=True)

    # Pooled-vs-unpooled speedups per shape (informational; smoke sizes
    # are too small for stable ratios).
    speedups = {}
    for name in sizes:
        un = next(p for p in points
                  if p["shape"] == name and not p["pooling"])
        po = next(p for p in points if p["shape"] == name and p["pooling"])
        if po["wall_seconds"] > 0:
            speedups[name] = round(un["wall_seconds"] / po["wall_seconds"], 3)
    print(f"[bench-engine] pooled speedups: {speedups}", flush=True)

    report = {
        "benchmark": "bench_engine",
        "description": "pure-engine dispatch throughput, pooled vs unpooled",
        "python": sys.version.split()[0],
        "smoke": args.smoke,
        "repeats": args.repeats,
        "points": points,
        "pooled_speedups": speedups,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench-engine] wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
