"""Grid substrate: OSG sites, Condor submission, GlideinWMS provisioning,
and preemption."""

from .condor import CondorJobState, CondorSchedd, SubmissionFile
from .glidein import Glidein, GlideinFactory, WrapperConfig
from .preemption import PreemptionEvent, PreemptionTrace, TraceDriver, TraceRecorder
from .staging import SrmError, StagedFile, StorageElement
from .site import PAPER_SITES, GridSite, GridSiteConfig, SitePolicy

__all__ = [
    "SubmissionFile",
    "CondorSchedd",
    "CondorJobState",
    "Glidein",
    "GlideinFactory",
    "WrapperConfig",
    "GridSite",
    "GridSiteConfig",
    "SitePolicy",
    "PAPER_SITES",
    "PreemptionEvent",
    "PreemptionTrace",
    "TraceRecorder",
    "TraceDriver",
    "StorageElement",
    "StagedFile",
    "SrmError",
]
