"""Grid storage access: SRM metadata operations + GridFTP transfers.

§II-B: "Sites can provide storage resources accessible with the user's
certificate.  All storage resources are again accessed by a set of common
protocols, Storage Resource Manager (SRM) and Globus GridFTP.  SRM
provides an interface for metadata operations and refers transfer
requests to a set of load balanced GridFTP servers."

HOG itself stores data in HDFS on the glideins, but the *initial* dataset
typically arrives from grid storage — and HOD re-stages it per request.
This module models that path: an SRM endpoint that answers metadata
requests after a WAN round trip and hands out one of its GridFTP servers
(least-loaded), which then streams the file through the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.fabric import NetworkFabric
from ..sim.engine import Simulator
from ..sim.events import Event

__all__ = ["SrmError", "StorageElement", "StagedFile"]


class SrmError(Exception):
    """SRM request failed (unknown file, no servers, ...)."""


@dataclass(frozen=True)
class StagedFile:
    """A file registered on a storage element."""

    path: str
    size: float


class StorageElement:
    """One site's SRM endpoint + load-balanced GridFTP server pool.

    Parameters
    ----------
    hosts:
        GridFTP server hostnames (must be in the fabric topology's DNS
        scheme, e.g. ``gridftp1.fnal.gov``).
    srm_latency:
        Metadata round-trip service time per request, seconds.
    """

    def __init__(self, sim: Simulator, fabric: NetworkFabric,
                 hosts: List[str], srm_latency: float = 0.2) -> None:
        if not hosts:
            raise ValueError("a storage element needs at least one GridFTP server")
        if srm_latency < 0:
            raise ValueError("srm_latency cannot be negative")
        self.sim = sim
        self.fabric = fabric
        self.hosts = list(hosts)
        self.srm_latency = srm_latency
        self._catalog: Dict[str, StagedFile] = {}
        self._active: Dict[str, int] = {h: 0 for h in self.hosts}
        #: Completed transfer count per server (load-balance verification).
        self.served: Dict[str, int] = {h: 0 for h in self.hosts}

    # -- catalog ---------------------------------------------------------------
    def register(self, path: str, size: float) -> StagedFile:
        """Publish a file on this storage element."""
        if size < 0:
            raise ValueError("size cannot be negative")
        f = StagedFile(path, float(size))
        self._catalog[path] = f
        return f

    def stat(self, path: str) -> StagedFile:
        """SRM metadata lookup (immediate; latency charged on requests)."""
        f = self._catalog.get(path)
        if f is None:
            raise SrmError(f"no such file: {path}")
        return f

    def _pick_server(self) -> str:
        """Least-loaded GridFTP server (SRM's referral)."""
        return min(self.hosts, key=lambda h: (self._active[h], h))

    # -- transfers --------------------------------------------------------------
    def fetch(self, path: str, dest: str) -> Event:
        """Stage ``path`` to host ``dest``: SRM request + GridFTP stream.

        Returns an event succeeding with the serving hostname."""
        done = self.sim.event()
        self.sim.process(self._fetch_proc(path, dest, done),
                         name=f"srm-fetch:{path}->{dest}")
        return done

    def _fetch_proc(self, path: str, dest: str, done: Event):
        f = self._catalog.get(path)
        if f is None:
            done.fail(SrmError(f"no such file: {path}"))
            done.defused()
            return
        # SRM metadata negotiation.
        if self.srm_latency > 0:
            yield self.sim.timeout(self.srm_latency)
        server = self._pick_server()
        self._active[server] += 1
        try:
            yield self.fabric.transfer(server, dest, f.size)
        except Exception as exc:
            done.fail(SrmError(f"gridftp transfer failed: {exc}"))
            done.defused()
            return
        finally:
            self._active[server] -= 1
        self.served[server] += 1
        done.succeed(server)

    def stage_many(self, paths: List[str], dest: str) -> Event:
        """Stage several files concurrently; succeeds when all land."""
        events = [self.fetch(p, dest) for p in paths]
        return self.sim.all_of(events)

    def __repr__(self) -> str:
        return (f"<StorageElement {len(self.hosts)} gridftp servers, "
                f"{len(self._catalog)} files>")
