"""Recorded and replayable preemption schedules.

The stochastic preemption in :class:`~repro.grid.site.SitePolicy` models
*typical* OSG behaviour; for controlled experiments (and for replaying an
interesting Figure 5 execution exactly) a **trace** pins every preemption
to a time and a victim choice.

A trace is a list of :class:`PreemptionEvent`; ``TraceRecorder`` captures
one from a live run, and ``TraceDriver`` replays one against a
:class:`~repro.grid.glidein.GlideinFactory`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional

from ..sim.engine import Simulator
from ..sim.events import Interrupt
from .glidein import Glidein, GlideinFactory

__all__ = ["PreemptionEvent", "PreemptionTrace", "TraceRecorder", "TraceDriver"]


@dataclass(frozen=True)
class PreemptionEvent:
    """One preemption: at ``time``, site ``site`` evicts ``count`` nodes.

    ``zombie`` overrides the wrapper's zombie_fix for this event (``None``
    = follow the wrapper).  Victims are the site's longest-running
    glideins (deterministic given the same provisioning history).
    """

    time: float
    site: str
    count: int = 1
    zombie: Optional[bool] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical events."""
        if self.time < 0:
            raise ValueError("event time cannot be negative")
        if self.count < 1:
            raise ValueError("count must be >= 1")


class PreemptionTrace:
    """An ordered preemption schedule, serializable to/from JSON."""

    def __init__(self, events: Optional[List[PreemptionEvent]] = None) -> None:
        self.events: List[PreemptionEvent] = sorted(
            events or [], key=lambda e: e.time)
        for e in self.events:
            e.validate()

    def __len__(self) -> int:
        return len(self.events)

    def add(self, event: PreemptionEvent) -> None:
        """Insert an event, keeping time order."""
        event.validate()
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)

    def total_victims(self) -> int:
        """Sum of all event counts."""
        return sum(e.count for e in self.events)

    # -- serialization -----------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps([asdict(e) for e in self.events], indent=1)

    @classmethod
    def from_json(cls, text: str) -> "PreemptionTrace":
        """Parse a trace serialized by :meth:`to_json`."""
        return cls([PreemptionEvent(**d) for d in json.loads(text)])


class TraceRecorder:
    """Captures every preemption of a live run into a trace.

    Hooks the factory's counters path by wrapping ``node_preempt``; the
    recorded trace replays the same *times* and *sites* (victim identity
    is re-resolved deterministically on replay).
    """

    def __init__(self, sim: Simulator, factory: GlideinFactory) -> None:
        self.sim = sim
        self.factory = factory
        self.trace = PreemptionTrace()
        self._wrapped = factory.node_preempt
        factory.node_preempt = self._record

    def _record(self, node, zombie: bool) -> None:
        site = getattr(node, "site_name", None) or "unknown"
        self.trace.add(PreemptionEvent(time=self.sim.now, site=site,
                                       count=1, zombie=zombie))
        self._wrapped(node, zombie=zombie)

    def detach(self) -> PreemptionTrace:
        """Stop recording; returns the trace."""
        self.factory.node_preempt = self._wrapped
        return self.trace


class TraceDriver:
    """Replays a :class:`PreemptionTrace` against a factory.

    Use with churn-free site policies (``preempt_rate=0``) so the trace is
    the *only* source of preemptions.
    """

    def __init__(self, sim: Simulator, factory: GlideinFactory,
                 trace: PreemptionTrace) -> None:
        self.sim = sim
        self.factory = factory
        self.trace = trace
        #: Events that found no running glidein to evict.
        self.skipped = 0
        self._proc = None

    def start(self) -> None:
        """Begin replaying (from the current simulation time)."""
        if self._proc is not None:
            raise RuntimeError("trace driver already started")
        self._proc = self.sim.process(self._run(), name="preemption-trace")

    def _run(self):
        start = self.sim.now
        try:
            for event in self.trace.events:
                when = start + event.time
                if when > self.sim.now:
                    yield self.sim.timeout(when - self.sim.now)
                self._fire(event)
        except Interrupt:
            return

    def _fire(self, event: PreemptionEvent) -> None:
        site = next((s for s in self.factory.sites if s.name == event.site),
                    None)
        victims: List[Glidein] = []
        if site is not None:
            running = sorted(site.running_glideins(),
                             key=lambda g: g.glidein_id)
            victims = running[:event.count]
        if not victims:
            self.skipped += event.count
            return
        for g in victims:
            g.preempt(zombie=event.zombie)

    def stop(self) -> None:
        """Abort the replay."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("trace stopped")
