"""Open Science Grid sites: capacity, policies, and failure behaviour.

"The OSG ... is composed of approximately 60,000 CPU cores and spans 109
sites in the United States" (§I).  HOG's evaluation restricts execution to
five sites whose worker nodes have public IPs (Listing 1): two Fermilab
clusters, the UCSD and MIT US-CMS Tier-2s, and the Michigan ATLAS Great
Lakes Tier-2.  Each site is an independent administrative/failure domain
whose batch system can preempt HOG's glideins at any time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["SitePolicy", "GridSiteConfig", "GridSite", "PAPER_SITES",
           "PAPER_SITE_NAMES", "PAPER_SITE_DOMAINS", "sites_with_policy"]

#: Condor resource names of the five whitelisted OSG sites (Listing 1).
PAPER_SITE_NAMES = ("FNAL_FERMIGRID", "USCMS-FNAL-WC1", "UCSDT2", "AGLT2",
                    "MIT_CMS")
#: Worker-node DNS domains of those sites (WC1 gets its own domain so the
#: last-two-labels rule keeps five distinct failure domains).
PAPER_SITE_DOMAINS = ("fnal.gov", "fnalwc1.gov", "ucsd.edu", "aglt2.org",
                      "mit.edu")


@dataclass
class SitePolicy:
    """Stochastic behaviour of one site toward opportunistic jobs.

    Preemption has two components, matching §III-B1's description:

    - a per-node hazard (``preempt_rate``): "A preemption on the remote
      OSG site can be caused by the processing job running over allocated
      time, or if the owner of the machine has a need for the resources";
    - site-wide bursts (``burst_rate`` / ``burst_fraction``):
      "Simultaneous preemptions on a site is common in the OSG since
      higher priority users may submit many jobs".
    """

    #: Per-node preemption hazard, events/second (0 = dedicated node).
    preempt_rate: float = 0.0
    #: Site-wide preemption bursts, events/second.
    burst_rate: float = 0.0
    #: Fraction of the site's running glideins hit by one burst.
    burst_fraction: float = 0.3
    #: Mean queueing delay before the site's batch scheduler launches a
    #: newly matched glidein, seconds (exponential).
    scheduling_delay_mean: float = 30.0

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical settings."""
        if self.preempt_rate < 0 or self.burst_rate < 0:
            raise ValueError("preemption rates cannot be negative")
        if not (0.0 <= self.burst_fraction <= 1.0):
            raise ValueError("burst_fraction must be in [0, 1]")
        if self.scheduling_delay_mean < 0:
            raise ValueError("scheduling_delay_mean cannot be negative")


@dataclass
class GridSiteConfig:
    """Static description of one grid site."""

    #: Condor ``GLIDEIN_ResourceName`` (what submission files match on).
    name: str
    #: DNS domain of the site's worker nodes; the last two labels are what
    #: HOG's site-awareness script extracts.
    domain: str
    #: Worker slots this site will concurrently grant to HOG.
    capacity: int
    policy: SitePolicy = field(default_factory=SitePolicy)

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.capacity < 0:
            raise ValueError("site capacity cannot be negative")
        if len(self.domain.split(".")) < 2:
            raise ValueError(
                f"domain {self.domain!r} needs >= 2 DNS labels for site detection")
        self.policy.validate()


class GridSite:
    """Runtime state of one site: which glideins are running there."""

    def __init__(self, config: GridSiteConfig) -> None:
        config.validate()
        self.config = config
        self._running: List = []  # Glidein objects
        self._hostname_seq = 0
        #: Downtime-calendar flag (glideinWMS ``glideFactoryDowntimeLib``
        #: semantics): while set, the site advertises no free slots so the
        #: negotiator never matches new pilots here.  Running pilots are
        #: NOT touched by the flag itself — blackout events decide whether
        #: they are evicted or merely unreachable.
        self.in_downtime = False

    @property
    def name(self) -> str:
        """Condor resource name."""
        return self.config.name

    @property
    def domain(self) -> str:
        """Worker-node DNS domain."""
        return self.config.domain

    @property
    def running_count(self) -> int:
        """Glideins currently executing here."""
        return len(self._running)

    @property
    def free_slots(self) -> int:
        """Capacity not yet granted (zero while the site is in a
        scheduled downtime window)."""
        if self.in_downtime:
            return 0
        return max(0, self.config.capacity - len(self._running))

    def running_glideins(self) -> List:
        """Snapshot of glideins executing here."""
        return list(self._running)

    def next_hostname(self) -> str:
        """Allocate a fresh worker-node DNS name at this site."""
        self._hostname_seq += 1
        return f"glidein{self._hostname_seq:05d}.{self.domain}"

    def attach(self, glidein) -> None:
        """Account a glidein as running here."""
        if self.free_slots <= 0:
            raise RuntimeError(f"site {self.name} has no free slots")
        self._running.append(glidein)

    def detach(self, glidein) -> None:
        """Remove a glidein (finished or preempted)."""
        if glidein in self._running:
            self._running.remove(glidein)

    def __repr__(self) -> str:
        return (f"<GridSite {self.name} {self.running_count}/"
                f"{self.config.capacity}>")


def sites_with_policy(policy: SitePolicy, total_capacity: int,
                      n_sites: int = 5,
                      headroom: float = 1.3) -> List[GridSiteConfig]:
    """Up to five OSG-like sites sharing one policy, sized so the grid can
    hold ``total_capacity`` workers with ``headroom`` slack for churn
    replacement (replacements are always in flight re-downloading the
    worker package, so the grid must be able to over-provision)."""
    if not (1 <= n_sites <= len(PAPER_SITE_NAMES)):
        raise ValueError(f"n_sites must be in [1, {len(PAPER_SITE_NAMES)}]")
    per_site = math.ceil(total_capacity * headroom / n_sites)
    return [GridSiteConfig(PAPER_SITE_NAMES[i], PAPER_SITE_DOMAINS[i],
                           per_site, policy)
            for i in range(n_sites)]


def PAPER_SITES(capacity_each: int = 300,
                policy: Optional[SitePolicy] = None) -> List[GridSiteConfig]:
    """The five OSG sites of Listing 1, as site configs.

    The two Fermilab clusters share the ``fnal.gov`` DNS domain in
    reality; under HOG's last-two-labels rule they would collapse into one
    failure domain, so we give the WC1 cluster its own domain to keep five
    distinct sites (the paper treats them as five).
    """
    pol = policy or SitePolicy()
    return [GridSiteConfig(name=n, domain=d, capacity=capacity_each, policy=pol)
            for n, d in zip(PAPER_SITE_NAMES, PAPER_SITE_DOMAINS)]
