"""Glidein lifecycle and the GlideinWMS-style factory.

"GlideinWMS is used to allocate nodes on remote sites transparently to the
user ... The number of nodes can grow and shrink elastically by submitting
and removing the worker node jobs." (§III-A)

A :class:`Glidein` is one pilot job.  Once matched to a site it executes
the wrapper script's five steps (§III-A):

1. initialize the OSG operating environment,
2. download the Hadoop worker-node package (75 MB in the evaluation) from
   the central repository,
3. extract and set late-binding configuration (trivial time, per the paper),
4. start the Hadoop daemons (datanode + tasktracker),
5. clean up on shutdown.

The :class:`GlideinFactory` combines the Condor negotiator and the
GlideinWMS frontend: it matches idle pilots to whitelisted sites with free
slots, maintains an elastic node-count target (resubmitting after
preemptions — "the HOG system will automatically request more nodes from
the OSG to compensate", §IV-B), and drives per-site preemption processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Callable, Dict, List, Optional

import numpy as np

from ..net.fabric import NetworkFabric, TransferFailed
from ..sim.engine import Simulator
from ..sim.events import Interrupt
from ..sim.monitor import CounterSet
from .condor import CondorJobState, CondorSchedd, SubmissionFile
from .site import GridSite

__all__ = ["WrapperConfig", "Glidein", "GlideinFactory"]


@dataclass
class WrapperConfig:
    """Parameters of the worker-node wrapper script (§III-A)."""

    #: Size of the Hadoop executables package ("compressed to 75MB").
    package_bytes: float = 75 * 1024 * 1024
    #: Host serving the package (the central web server).
    package_host: str = "hog-central.unl.edu"
    #: Step 1: OSG environment initialization time, seconds.
    init_env_time: float = 2.0
    #: Step 4: daemon startup time, seconds.
    daemon_start_time: float = 3.0
    #: True = daemons stay in the wrapper's process tree (the §IV-D1 fix),
    #: so preemption kills them.  False = the original double-fork bug:
    #: preemption leaves zombie daemons over a wiped working directory.
    zombie_fix: bool = True

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical settings."""
        if self.package_bytes < 0:
            raise ValueError("package_bytes cannot be negative")
        if self.init_env_time < 0 or self.daemon_start_time < 0:
            raise ValueError("wrapper step times cannot be negative")


class Glidein:
    """One pilot job through its life: idle → starting → running → gone."""

    IDLE = CondorJobState.IDLE
    STARTING = "starting"
    RUNNING = CondorJobState.RUNNING
    PREEMPTED = "preempted"
    REMOVED = CondorJobState.REMOVED
    FAILED = "failed"

    _seq = 0

    def __init__(self, factory: "GlideinFactory",
                 requirements: tuple) -> None:
        Glidein._seq += 1
        self.glidein_id = Glidein._seq
        self.factory = factory
        #: Site names this pilot may run at (submit-file requirements).
        self.requirements = requirements
        self.cluster_id: Optional[int] = None
        self._state = None
        self.state = Glidein.IDLE
        self.site: Optional[GridSite] = None
        self.hostname: Optional[str] = None
        #: Opaque worker-node handle from the node factory.
        self.node = None
        self._startup_proc = None
        self._lifetime_proc = None

    @property
    def state(self) -> str:
        return self._state

    @state.setter
    def state(self, new: str) -> None:
        # Single funnel for every lifecycle transition: the factory keeps
        # O(1) running/pending tallies instead of rescanning the pilot
        # list on each count query.
        old = self._state
        self._state = new
        self.factory._state_changed(self, old, new)

    # -- lifecycle -----------------------------------------------------------------
    def match(self, site: GridSite) -> None:
        """Negotiator matched this pilot to ``site``: begin startup."""
        if self.state != Glidein.IDLE:
            raise RuntimeError(f"cannot match glidein in state {self.state}")
        self.state = Glidein.STARTING
        self.site = site
        site.attach(self)
        sim = self.factory.sim
        self._startup_proc = sim.process(self._startup(),
                                         name=f"glidein-start:{self.glidein_id}")

    def _startup(self):
        sim = self.factory.sim
        wrapper = self.factory.wrapper
        policy = self.site.config.policy
        try:
            # Remote batch scheduler queueing delay.
            if policy.scheduling_delay_mean > 0:
                delay = self.factory.rng.exponential(policy.scheduling_delay_mean)
                yield sim.timeout(delay)
            self.hostname = self.site.next_hostname()
            # Wrapper step 1: initialize the OSG environment.
            if wrapper.init_env_time > 0:
                yield sim.timeout(wrapper.init_env_time)
            # Step 2: download the Hadoop package from the central server.
            if wrapper.package_bytes > 0:
                yield self.factory.fabric.transfer(
                    wrapper.package_host, self.hostname, wrapper.package_bytes)
            # Steps 3-4: extract (trivial) and start the daemons.
            if wrapper.daemon_start_time > 0:
                yield sim.timeout(wrapper.daemon_start_time)
        except Interrupt:
            self._abort_startup()
            return
        except TransferFailed:
            self.state = Glidein.FAILED
            self.site.detach(self)
            self.factory._glidein_gone(self)
            return
        self.node = self.factory.node_start(self.hostname, self.site)
        self.state = Glidein.RUNNING
        self.factory.counters.incr("glideins_started")
        self.factory._node_count_changed()
        # Arm this node's preemption clock.
        if policy.preempt_rate > 0:
            self._lifetime_proc = sim.process(
                self._lifetime(), name=f"glidein-life:{self.glidein_id}")

    def _abort_startup(self) -> None:
        if self.site is not None:
            self.site.detach(self)

    def _lifetime(self):
        """Exponential per-node preemption clock (§III-B1's per-node
        hazard: over-allocated time or owner demand)."""
        sim = self.factory.sim
        rate = self.site.config.policy.preempt_rate
        try:
            yield sim.timeout(self.factory.rng.exponential(1.0 / rate))
        except Interrupt:
            return
        self.preempt()

    def preempt(self, zombie: Optional[bool] = None) -> None:
        """The site evicts this pilot: kill the process tree, wipe the
        working directory.  With the zombie fix the daemons die with the
        tree; without it they linger as zombies (§IV-D1).  ``zombie``
        overrides the wrapper's ``zombie_fix`` setting when given."""
        if self.state == Glidein.STARTING:
            if self._startup_proc is not None and self._startup_proc.is_alive:
                self._startup_proc.interrupt("preempted during startup")
            self.state = Glidein.PREEMPTED
            self.factory.counters.incr("glideins_preempted_starting")
            self.factory._glidein_gone(self)
            return
        if self.state != Glidein.RUNNING:
            return
        self.state = Glidein.PREEMPTED
        self._cancel_lifetime()
        self.site.detach(self)
        if zombie is None:
            zombie = not self.factory.wrapper.zombie_fix
        self.factory.node_preempt(self.node, zombie=zombie)
        self.factory.counters.incr("glideins_preempted")
        self.factory._glidein_gone(self)
        self.factory._node_count_changed()

    def removed(self) -> None:
        """``condor_rm``: graceful removal (elastic shrink)."""
        if self.state == Glidein.STARTING:
            if self._startup_proc is not None and self._startup_proc.is_alive:
                self._startup_proc.interrupt("removed")
        elif self.state == Glidein.RUNNING:
            self._cancel_lifetime()
            self.site.detach(self)
            self.factory.node_shutdown(self.node)
            self.factory._node_count_changed()
        self.state = Glidein.REMOVED

    def _cancel_lifetime(self) -> None:
        if self._lifetime_proc is not None and self._lifetime_proc.is_alive:
            self._lifetime_proc.interrupt("lifetime cancelled")
        self._lifetime_proc = None

    def __repr__(self) -> str:
        where = f"@{self.site.name}" if self.site else ""
        return f"<Glidein #{self.glidein_id} {self.state}{where}>"


class GlideinFactory:
    """Negotiator + GlideinWMS frontend: elastic worker-node provisioning.

    Parameters
    ----------
    node_start:
        ``(hostname, site) -> handle`` — build and start the Hadoop worker
        daemons on a fresh node.
    node_preempt:
        ``(handle, zombie) -> None`` — site preemption reached the node.
    node_shutdown:
        ``handle -> None`` — graceful stop (elastic shrink).
    """

    def __init__(self, sim: Simulator, schedd: CondorSchedd,
                 sites: List[GridSite], fabric: NetworkFabric,
                 rng: np.random.Generator,
                 node_start: Callable,
                 node_preempt: Callable,
                 node_shutdown: Callable,
                 wrapper: Optional[WrapperConfig] = None,
                 negotiation_interval: float = 20.0) -> None:
        if negotiation_interval <= 0:
            raise ValueError("negotiation_interval must be positive")
        self.sim = sim
        self.schedd = schedd
        self.sites = list(sites)
        self.fabric = fabric
        self.rng = rng
        self.node_start = node_start
        self.node_preempt = node_preempt
        self.node_shutdown = node_shutdown
        self.wrapper = wrapper or WrapperConfig()
        self.wrapper.validate()
        self.negotiation_interval = negotiation_interval
        self._target = 0
        #: Live + recently-departed pilots, submission-ordered (keyed by
        #: glidein id so departures are O(1), not a list scan).
        self._glideins: Dict[int, Glidein] = {}
        #: Event-maintained state tallies (updated by ``Glidein.state``'s
        #: setter) so count queries never scan the pilot list.
        self._n_running = 0
        self._n_pending = 0
        self.counters = CounterSet()
        #: Optional :class:`~repro.obs.trace.Tracer` for grid lifecycle
        #: marks (preemption bursts); ``None`` disables emission.
        self.tracer = None
        #: Called with the current running-node count whenever it changes.
        self.node_count_listeners: List[Callable[[int], None]] = []
        #: (threshold, event) pairs resolved as the count crosses them.
        self._count_waiters: List = []
        self._started = False
        self._site_by_name: Dict[str, GridSite] = {s.name: s for s in self.sites}

    # -- control ---------------------------------------------------------------
    def start(self) -> None:
        """Start the negotiation loop and per-site burst processes."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._negotiation_loop(), name="glidein-factory")
        for site in self.sites:
            if site.config.policy.burst_rate > 0:
                self.sim.process(self._burst_loop(site),
                                 name=f"burst:{site.name}")

    def set_target(self, n: int) -> None:
        """Elastically grow/shrink the requested worker-node count."""
        if n < 0:
            raise ValueError("target cannot be negative")
        self._target = n

    @property
    def target(self) -> int:
        """Currently requested node count."""
        return self._target

    # -- state -------------------------------------------------------------------
    def _state_changed(self, glidein: "Glidein",
                       old: Optional[str], new: str) -> None:
        """Keep the running/pending tallies in step with one pilot's
        lifecycle transition (called from ``Glidein.state``'s setter)."""
        pending = (Glidein.IDLE, Glidein.STARTING)
        if old == Glidein.RUNNING:
            self._n_running -= 1
        elif old in pending:
            self._n_pending -= 1
        if new == Glidein.RUNNING:
            self._n_running += 1
        elif new in pending:
            self._n_pending += 1
        if old == Glidein.IDLE:
            # Keep the schedd's event-maintained idle view exact.
            self.schedd.job_left_idle(glidein)

    def running_count(self) -> int:
        """Glideins whose Hadoop daemons are up (O(1))."""
        return self._n_running

    def pending_count(self) -> int:
        """Glideins submitted or starting but not yet running (O(1))."""
        return self._n_pending

    def glideins(self) -> List[Glidein]:
        """All live pilots (idle/starting/running)."""
        return [g for g in self._glideins.values()
                if g.state in (Glidein.IDLE, Glidein.STARTING, Glidein.RUNNING)]

    def find_by_hostname(self, hostname: str) -> Optional[Glidein]:
        """The running pilot whose worker node is ``hostname``, if any."""
        for g in self._glideins.values():
            if g.hostname == hostname and g.state == Glidein.RUNNING:
                return g
        return None

    def when_running(self, n: int):
        """An event firing the instant ``n`` workers are running.

        Fires immediately if the count is already at or above ``n``; the
        event-driven replacement for polling :meth:`running_count` on a
        fixed time grid."""
        ev = self.sim.event()
        if self.running_count() >= n:
            ev.succeed(self.sim.now)
        else:
            self._count_waiters.append((n, ev))
        return ev

    def cancel_wait(self, ev) -> None:
        """Forget an unfired :meth:`when_running` event (timeout paths)."""
        self._count_waiters = [(n, e) for n, e in self._count_waiters
                               if e is not ev]

    # -- internals -------------------------------------------------------------------
    def _negotiation_loop(self):
        try:
            while True:
                self._reconcile()
                self._negotiate()
                yield self.sim.timeout(self.negotiation_interval)
        except Interrupt:
            return

    def _reconcile(self) -> None:
        """Submit or remove pilots to track the target."""
        # O(1) via the state tallies; the (rare) shrink path below is the
        # only one that needs the actual pilot list.
        deficit = self._target - (self._n_pending + self._n_running)
        if deficit > 0:
            submission = SubmissionFile(
                requirements=tuple(s.name for s in self.sites),
                queue=deficit)
            new = [Glidein(self, submission.requirements)
                   for _ in range(deficit)]
            self.schedd.submit(submission, new)
            for g in new:
                self._glideins[g.glidein_id] = g
            self.counters.incr("glideins_submitted", deficit)
        elif deficit < 0:
            # Shrink: remove idle pilots first, then running ones.
            excess = -deficit
            victims = sorted(self.glideins(),
                             key=lambda g: g.state != Glidein.IDLE)
            for g in victims[:excess]:
                self.schedd.remove(g)
            self.counters.incr("glideins_removed", excess)
            self._node_count_changed()

    def _negotiate(self) -> None:
        """Match idle pilots to whitelisted sites with free slots."""
        for glidein in self.schedd.idle_jobs():
            candidates = [self._site_by_name[name]
                          for name in glidein.requirements
                          if name in self._site_by_name
                          and self._site_by_name[name].free_slots > 0]
            if not candidates:
                break  # grid is full for us this cycle
            weights = np.array([float(s.free_slots) for s in candidates])
            pick = candidates[int(self.rng.choice(len(candidates),
                                                  p=weights / weights.sum()))]
            glidein.match(pick)
            self.counters.incr("glideins_matched")

    def _burst_loop(self, site: GridSite):
        """Site-wide simultaneous preemptions (higher-priority users)."""
        policy = site.config.policy
        try:
            while True:
                yield self.sim.timeout(self.rng.exponential(1.0 / policy.burst_rate))
                running = site.running_glideins()
                if not running:
                    continue
                k = max(1, ceil(policy.burst_fraction * len(running)))
                idx = self.rng.choice(len(running), size=min(k, len(running)),
                                      replace=False)
                self.counters.incr("preemption_bursts")
                tr = self.tracer
                if tr is not None:
                    tr.instant("grid", "preemption-burst", self.sim.now,
                               track=site.name, args={"evicted": len(idx)})
                for i in idx:
                    running[int(i)].preempt()
        except Interrupt:
            return

    def _glidein_gone(self, glidein: Glidein) -> None:
        """A pilot left the system; the next cycle will resubmit."""
        if glidein.state in (Glidein.PREEMPTED, Glidein.FAILED,
                             Glidein.REMOVED):
            self._glideins.pop(glidein.glidein_id, None)

    def _node_count_changed(self) -> None:
        count = self.running_count()
        if self._count_waiters:
            still_waiting = []
            for n, ev in self._count_waiters:
                if count >= n and not ev.triggered:
                    ev.succeed(self.sim.now)
                elif not ev.triggered:
                    still_waiting.append((n, ev))
            self._count_waiters = still_waiting
        for cb in self.node_count_listeners:
            cb(count)

    def __repr__(self) -> str:
        return (f"<GlideinFactory target={self._target} "
                f"running={self.running_count()} pending={self.pending_count()}>")
