"""Condor submission machinery: submit files, the schedd, and matchmaking.

"Grid submission and execution is managed by Condor and GlideinWMS ...
Condor is used to manage the submission and execution of the Hadoop worker
nodes." (§III-A)  :class:`SubmissionFile` models Listing 1 — including a
renderer/parser for the submit-file syntax — and :class:`CondorSchedd`
holds the job queue and runs the negotiation cycle that matches idle
glidein jobs to sites named in the ``requirements`` expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["SubmissionFile", "CondorJobState", "CondorSchedd"]


@dataclass
class SubmissionFile:
    """A Condor submit description for HOG worker-node jobs (Listing 1)."""

    universe: str = "vanilla"
    #: Sites the job may run at (``GLIDEIN_ResourceName =?= ...`` clauses).
    requirements: Sequence[str] = ()
    executable: str = "wrapper.sh"
    output: str = "condor_out/out.$(CLUSTER).$(PROCESS)"
    error: str = "condor_out/err.$(CLUSTER).$(PROCESS)"
    log: str = "hadoop-grid.log"
    should_transfer_files: bool = True
    when_to_transfer_output: str = "ON_EXIT_OR_EVICT"
    on_exit_remove: bool = False
    periodic_hold: bool = False
    x509userproxy: str = "/tmp/x509up_u1384"
    #: Number of worker-node jobs to queue.
    queue: int = 1

    def validate(self) -> None:
        """Raise ``ValueError`` on unusable settings."""
        if self.queue < 0:
            raise ValueError("queue count cannot be negative")
        if not self.requirements:
            raise ValueError(
                "HOG requires a site whitelist: worker nodes must have "
                "public IPs (§III-B), so requirements cannot be empty")

    # -- submit-file syntax ------------------------------------------------------
    def render(self) -> str:
        """Produce the Condor submit-file text (Listing 1 format)."""
        req = " || ".join(
            f'GLIDEIN_ResourceName =?= "{site}"' for site in self.requirements)
        lines = [
            f"universe = {self.universe}",
            f"requirements = {req}",
            f"executable = {self.executable}",
            f"output = {self.output}",
            f"error = {self.error}",
            f"log = {self.log}",
            f"should_transfer_files = {'YES' if self.should_transfer_files else 'NO'}",
            f"when_to_transfer_output = {self.when_to_transfer_output}",
            f"OnExitRemove = {'TRUE' if self.on_exit_remove else 'FALSE'}",
            f"PeriodicHold = {'true' if self.periodic_hold else 'false'}",
            f"x509userproxy = {self.x509userproxy}",
            f"queue {self.queue}",
        ]
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "SubmissionFile":
        """Parse submit-file text produced by :meth:`render` (or
        hand-written in the same subset of Condor syntax)."""
        kwargs: Dict[str, object] = {}
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.lower().startswith("queue"):
                parts = line.split()
                kwargs["queue"] = int(parts[1]) if len(parts) > 1 else 1
                continue
            if "=" not in line:
                raise ValueError(f"unparseable submit line: {raw!r}")
            key, _, value = line.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "universe":
                kwargs["universe"] = value
            elif key == "requirements":
                sites = []
                for clause in value.split("||"):
                    clause = clause.strip()
                    if "GLIDEIN_ResourceName" in clause and '"' in clause:
                        sites.append(clause.split('"')[1])
                kwargs["requirements"] = tuple(sites)
            elif key == "executable":
                kwargs["executable"] = value
            elif key == "output":
                kwargs["output"] = value
            elif key == "error":
                kwargs["error"] = value
            elif key == "log":
                kwargs["log"] = value
            elif key == "should_transfer_files":
                kwargs["should_transfer_files"] = value.upper() == "YES"
            elif key == "when_to_transfer_output":
                kwargs["when_to_transfer_output"] = value
            elif key == "onexitremove":
                kwargs["on_exit_remove"] = value.upper() == "TRUE"
            elif key == "periodichold":
                kwargs["periodic_hold"] = value.lower() == "true"
            elif key == "x509userproxy":
                kwargs["x509userproxy"] = value
        return cls(**kwargs)


class CondorJobState:
    """Condor queue states for glidein pilot jobs."""

    IDLE = "idle"
    RUNNING = "running"
    REMOVED = "removed"
    COMPLETED = "completed"


class CondorSchedd:
    """The submit-side Condor daemon: a queue of glidein pilot jobs.

    The negotiation cycle itself lives in
    :class:`~repro.grid.glidein.GlideinFactory`, which plays the combined
    role of the Condor negotiator and the GlideinWMS frontend.
    """

    def __init__(self) -> None:
        self._queue: List = []  # Glidein objects
        #: Submission-ordered view of the idle jobs (keyed by object
        #: identity; only insertion order matters),
        #: maintained event-driven via :meth:`job_left_idle` so each
        #: negotiation cycle costs O(idle), not O(every job ever queued).
        self._idle: Dict[int, object] = {}
        self._cluster_seq = 0

    def submit(self, submission: SubmissionFile, glideins: List) -> int:
        """Queue ``glideins`` under a new cluster id; returns the id."""
        submission.validate()
        self._cluster_seq += 1
        for g in glideins:
            g.cluster_id = self._cluster_seq
            self._queue.append(g)
            if g.state == CondorJobState.IDLE:
                self._idle[id(g)] = g
        return self._cluster_seq

    def job_left_idle(self, glidein) -> None:
        """A queued job stopped being idle (matched or removed); states
        never return to idle, so dropping it here keeps ``idle_jobs``
        exact.  Safe to call for jobs that were never queued."""
        self._idle.pop(id(glidein), None)

    def idle_jobs(self) -> List:
        """Jobs waiting to be matched (submission order)."""
        return list(self._idle.values())

    def running_jobs(self) -> List:
        """Jobs currently executing on some site."""
        return [g for g in self._queue if g.state == CondorJobState.RUNNING]

    def remove(self, glidein) -> None:
        """``condor_rm``: drop a job from the queue (kills it if running)."""
        if glidein in self._queue:
            self._queue.remove(glidein)
            glidein.removed()

    def queue_size(self) -> int:
        """Total jobs in the queue (idle + running)."""
        return len(self._queue)

    def __repr__(self) -> str:
        return (f"<CondorSchedd idle={len(self.idle_jobs())} "
                f"running={len(self.running_jobs())}>")
