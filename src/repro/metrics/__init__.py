"""Measurement and reporting utilities."""

from .ascii_plot import plot_series, plot_xy
from .report import WorkloadResult, format_table
from ..sim.monitor import CounterSet, EventLog, StepSeries

__all__ = ["WorkloadResult", "format_table", "StepSeries", "CounterSet",
           "EventLog", "plot_series", "plot_xy"]
