"""Workload-level results and plain-text report tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["WorkloadResult", "format_table"]


@dataclass
class WorkloadResult:
    """Outcome of running one submission schedule on one system.

    The paper's headline metric is the workload **response time**: "Two
    systems have equivalent performance if they have the same response
    time for a given workload" (§IV-A).  We measure it as the span from
    the first submission to the last job completion.
    """

    system: str
    #: Requested node count (HOG) or fixed size (cluster).
    nodes: int
    #: Simulated time of the first job submission.
    start_time: float
    #: Simulated time of the last job completion.
    end_time: float
    #: Per-job response times keyed by bin id.
    bin_responses: Dict[int, List[float]] = field(default_factory=dict)
    #: Jobs that failed (should be empty in healthy runs).
    failed_jobs: int = 0
    #: Area beneath the believed-node-count curve over the execution
    #: window (Table IV), if node counts were tracked.
    node_area: Optional[float] = None
    #: Map-launch locality histogram summed over jobs.
    locality: Dict[str, int] = field(default_factory=dict)
    #: Interesting raw counters from the masters.
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def response_time(self) -> float:
        """Workload response time (seconds)."""
        return self.end_time - self.start_time

    @property
    def mean_nodes(self) -> Optional[float]:
        """Time-averaged node count over the execution (from the area)."""
        if self.node_area is None or self.response_time <= 0:
            return None
        return self.node_area / self.response_time

    def summary(self) -> str:
        """One-line human-readable summary."""
        area = f" area={self.node_area:.0f}" if self.node_area is not None else ""
        return (f"{self.system}[{self.nodes}]: response={self.response_time:.0f}s"
                f"{area} failed={self.failed_jobs}")


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table (benchmark harness output)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells[1:])
    return "\n".join(lines)
