"""Terminal rendering of the paper's figures (no plotting dependency).

Renders step series (Figure 5's node counts) and x/y scatter-lines
(Figure 4's response-vs-nodes curve) as fixed-width character grids for
benchmark logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["plot_series", "plot_xy"]


def _grid(width: int, height: int) -> list:
    return [[" "] * width for _ in range(height)]


def _render(grid: list, ylabels: Sequence[str], xlabel: str) -> str:
    label_w = max(len(l) for l in ylabels)
    lines = []
    for label, row in zip(ylabels, grid):
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * len(grid[0]))
    lines.append(" " * (label_w + 2) + xlabel)
    return "\n".join(lines)


def plot_series(times: np.ndarray, values: np.ndarray, width: int = 72,
                height: int = 14, title: Optional[str] = None,
                y_max: Optional[float] = None) -> str:
    """Render a right-continuous step series (e.g. node count vs time)."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return (title or "") + "\n(empty series)"
    t0, t1 = float(times[0]), float(times[-1])
    if t1 <= t0:
        t1 = t0 + 1.0
    vmax = y_max if y_max is not None else max(float(values.max()), 1.0)
    grid = _grid(width, height)
    # Sample the step function at each column.
    sample_ts = np.linspace(t0, t1, width)
    idx = np.searchsorted(times, sample_ts, side="right") - 1
    idx = np.clip(idx, 0, len(values) - 1)
    sampled = values[idx]
    for col, v in enumerate(sampled):
        row = height - 1 - int(min(v, vmax) / vmax * (height - 1))
        grid[row][col] = "*"
    ylabels = []
    for r in range(height):
        frac = (height - 1 - r) / (height - 1)
        ylabels.append(f"{vmax * frac:.0f}" if r % 3 == 0 or r == height - 1
                       else "")
    body = _render(grid, ylabels, f"t = {t0:.0f}s ... {t1:.0f}s")
    return (title + "\n" + body) if title else body


def plot_xy(xs: Sequence[float], ys: Sequence[float], width: int = 72,
            height: int = 14, title: Optional[str] = None,
            hline: Optional[float] = None,
            logx: bool = False) -> str:
    """Render y-vs-x points joined column-wise (Figure 4 style), with an
    optional horizontal reference line (the cluster's response)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0:
        return (title or "") + "\n(no points)"
    fx = np.log10(xs) if logx else xs
    x0, x1 = float(fx.min()), float(fx.max())
    if x1 <= x0:
        x1 = x0 + 1.0
    y_all = list(ys) + ([hline] if hline is not None else [])
    vmax = max(y_all) * 1.05
    grid = _grid(width, height)
    if hline is not None:
        row = height - 1 - int(min(hline, vmax) / vmax * (height - 1))
        for col in range(width):
            grid[row][col] = "-"
    for x, y in zip(fx, ys):
        col = int((x - x0) / (x1 - x0) * (width - 1))
        row = height - 1 - int(min(y, vmax) / vmax * (height - 1))
        grid[row][col] = "o"
    ylabels = []
    for r in range(height):
        frac = (height - 1 - r) / (height - 1)
        ylabels.append(f"{vmax * frac:.0f}" if r % 3 == 0 or r == height - 1
                       else "")
    xlab = ("log10(nodes)" if logx else "nodes") + \
        f" = {xs.min():.0f} ... {xs.max():.0f}"
    body = _render(grid, ylabels, xlab)
    return (title + "\n" + body) if title else body
