"""Command-line entry point for the scenario registry.

Usage::

    python -m repro.scenarios.run <name> [--nodes N] [--scale X] [--seed S]
    python -m repro.scenarios.run all --smoke
    python -m repro.scenarios.run --list
    python -m repro.scenarios.run <name> --show-spec
    python -m repro.scenarios.run <name> --output result.json

Runs any registered scenario at any node count and prints (or writes) its
structured :class:`~repro.scenarios.runner.ScenarioResult` as JSON.
``--smoke`` shrinks every scenario to a couple of wall-seconds (a few
dozen nodes, a tiny workload slice) — the fast test tier drives exactly
this mode so the registry cannot rot.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import registry
from .runner import ScenarioRunner

#: --smoke sizing: small enough for CI seconds, large enough that every
#: scenario still exercises its distinguishing machinery (multiple sites,
#: churn replacement, balancer moves).
SMOKE_NODES = 24
SMOKE_SCALE = 0.04


def _run_one(name: str, args) -> dict:
    spec = registry.build(name, n_nodes=args.nodes, scale=args.scale,
                          seed=args.seed)
    if args.show_spec:
        print(spec.to_json())
        return {}
    runner = ScenarioRunner(spec)
    print(f"[scenario] running {name!r} at {spec.cluster.n_nodes} nodes, "
          f"scale {spec.workload.scale} ...", file=sys.stderr, flush=True)
    result = runner.run()
    print(f"[scenario]   {result.summary()}", file=sys.stderr, flush=True)
    return result.to_dict()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.scenarios.run", description=__doc__.splitlines()[0])
    parser.add_argument("name", nargs="?",
                        help="scenario name, or 'all' for every "
                             "registered scenario")
    parser.add_argument("--list", action="store_true",
                        help="print the scenario catalogue and exit")
    parser.add_argument("--show-spec", action="store_true",
                        help="print the resolved ScenarioSpec JSON "
                             "instead of running")
    parser.add_argument("--nodes", type=int, default=None,
                        help="worker-node target (default: per-scenario)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale in (0, 1] "
                             "(default: per-scenario)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help=f"tiny run ({SMOKE_NODES} nodes, scale "
                             f"{SMOKE_SCALE}) for the fast test tier")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the result JSON here instead of stdout")
    args = parser.parse_args(argv)

    if args.list:
        for name, desc in registry.describe().items():
            print(f"{name:22s} {desc}")
        return 0
    if not args.name:
        parser.error("a scenario name (or 'all', or --list) is required")
    if args.smoke:
        args.nodes = args.nodes or SMOKE_NODES
        args.scale = args.scale or SMOKE_SCALE

    targets = registry.names() if args.name == "all" else [args.name]
    unknown = [n for n in targets if n not in registry.names()]
    if unknown:
        parser.error(f"unknown scenario(s): {', '.join(unknown)}; "
                     f"try --list")

    records = [_run_one(name, args) for name in targets]
    if args.show_spec:
        return 0
    payload = records[0] if len(records) == 1 else records
    text = json.dumps(payload, indent=2) + "\n"
    if args.output is not None:
        args.output.write_text(text)
        print(f"[scenario] wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
