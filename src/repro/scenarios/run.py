"""Command-line entry point for the scenario registry.

Usage::

    python -m repro.scenarios.run <name> [--nodes N] [--scale X] [--seed S]
    python -m repro.scenarios.run all --smoke
    python -m repro.scenarios.run --list
    python -m repro.scenarios.run <name> --show-spec
    python -m repro.scenarios.run <name> --output result.json

Runs any registered scenario at any node count and prints (or writes) its
structured :class:`~repro.scenarios.runner.ScenarioResult` as JSON.
``--smoke`` shrinks every scenario to a couple of wall-seconds (a few
dozen nodes, a tiny workload slice) — the fast test tier drives exactly
this mode so the registry cannot rot.  ``--parallel N`` fans a multi-
scenario run out over N worker processes (results keep registry order
and are simulation-identical to a serial run); ``--profile`` wraps a
serial run in cProfile and prints the top-25 cumulative entries.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
from pathlib import Path
from typing import List, Optional

from . import registry
from .parallel import run_specs_parallel
from .runner import ScenarioRunner

#: --smoke sizing: small enough for CI seconds, large enough that every
#: scenario still exercises its distinguishing machinery (multiple sites,
#: churn replacement, balancer moves).
SMOKE_NODES = 24
SMOKE_SCALE = 0.04


def _build_spec(name: str, args):
    spec = registry.build(name, n_nodes=args.nodes, scale=args.scale,
                          seed=args.seed)
    if args.obs_sample is not None:
        spec.obs.sample_interval = args.obs_sample
    if args.trace or args.trace_out is not None:
        spec.obs.trace = True
    if args.profile_engine:
        spec.obs.profile_engine = True
    return spec


def _run_one(name: str, args) -> dict:
    spec = _build_spec(name, args)
    if args.show_spec:
        print(spec.to_json())
        return {}
    runner = ScenarioRunner(spec)
    print(f"[scenario] running {name!r} at {spec.cluster.n_nodes} nodes, "
          f"scale {spec.workload.scale} ...", file=sys.stderr, flush=True)
    result = runner.run()
    print(f"[scenario]   {result.summary()}", file=sys.stderr, flush=True)
    if args.trace_out is not None and runner.tracer is not None:
        runner.tracer.write(args.trace_out)
        print(f"[scenario] wrote trace {args.trace_out} "
              f"({runner.tracer.stats()['kept']} records; open in "
              f"Perfetto / chrome://tracing)", file=sys.stderr)
    return result.to_dict()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.scenarios.run", description=__doc__.splitlines()[0])
    parser.add_argument("name", nargs="?",
                        help="scenario name, or 'all' for every "
                             "registered scenario")
    parser.add_argument("--list", action="store_true",
                        help="print the scenario catalogue and exit")
    parser.add_argument("--show-spec", action="store_true",
                        help="print the resolved ScenarioSpec JSON "
                             "instead of running")
    parser.add_argument("--nodes", type=int, default=None,
                        help="worker-node target (default: per-scenario)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale in (0, 1] "
                             "(default: per-scenario)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help=f"tiny run ({SMOKE_NODES} nodes, scale "
                             f"{SMOKE_SCALE}) for the fast test tier")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="fan a multi-scenario run out over N worker "
                             "processes (default: serial)")
    parser.add_argument("--profile", action="store_true",
                        help="profile a serial run with cProfile and print "
                             "the top-25 cumulative entries to stderr")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the result JSON here instead of stdout")
    parser.add_argument("--obs-sample", type=float, default=None,
                        metavar="SECS",
                        help="sample registered gauges every SECS "
                             "sim-seconds into per-phase timelines")
    parser.add_argument("--trace", action="store_true",
                        help="record causal spans (job/attempt/shuffle/"
                             "HDFS) into a bounded ring buffer")
    parser.add_argument("--trace-out", type=Path, default=None,
                        metavar="FILE",
                        help="write the Chrome trace-event JSON here "
                             "(implies --trace; serial single-scenario "
                             "runs only)")
    parser.add_argument("--profile-engine", action="store_true",
                        help="attach the engine self-profiler (dispatch "
                             "mix, heap high-water) to the result")
    args = parser.parse_args(argv)

    if args.parallel < 1:
        parser.error("--parallel needs a positive worker count")
    if args.profile and args.parallel > 1:
        parser.error("--profile requires a serial run (drop --parallel)")
    if args.trace_out is not None and (args.parallel > 1
                                       or args.name == "all"):
        parser.error("--trace-out needs a serial single-scenario run")

    if args.list:
        for name, desc in registry.describe().items():
            print(f"{name:22s} {desc}")
        return 0
    if not args.name:
        parser.error("a scenario name (or 'all', or --list) is required")
    if args.smoke:
        args.nodes = args.nodes or SMOKE_NODES
        args.scale = args.scale or SMOKE_SCALE

    targets = registry.names() if args.name == "all" else [args.name]
    unknown = [n for n in targets if n not in registry.names()]
    if unknown:
        parser.error(f"unknown scenario(s): {', '.join(unknown)}; "
                     f"try --list")

    if args.parallel > 1 and not args.show_spec and len(targets) > 1:
        specs = [_build_spec(name, args) for name in targets]
        print(f"[scenario] running {len(specs)} scenarios across "
              f"{min(args.parallel, len(specs))} worker processes ...",
              file=sys.stderr, flush=True)
        records = run_specs_parallel(specs, args.parallel)
        for rec in records:
            print(f"[scenario]   {rec['scenario']}[{rec['nodes']}]: "
                  f"makespan={rec['makespan_seconds']:.0f}s "
                  f"wall={rec['wall_seconds']:.2f}s events={rec['events']} "
                  f"failed={rec['failed_jobs']}",
                  file=sys.stderr, flush=True)
    elif args.profile and not args.show_spec:
        prof = cProfile.Profile()
        prof.enable()
        records = [_run_one(name, args) for name in targets]
        prof.disable()
        stats = pstats.Stats(prof, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
    else:
        records = [_run_one(name, args) for name in targets]
    if args.show_spec:
        return 0
    payload = records[0] if len(records) == 1 else records
    text = json.dumps(payload, indent=2) + "\n"
    if args.output is not None:
        args.output.write_text(text)
        print(f"[scenario] wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
