"""Declarative scenario specifications.

A :class:`ScenarioSpec` is everything needed to stand up a HOG deployment
and measure one workload on it, as *data*: cluster shape (node counts,
per-site hardware tiers, per-site WAN uplink caps), workload (Facebook
loadgen parameters or an explicit pinned
:class:`~repro.workload.schedule.SubmissionSchedule`), fault model
(stochastic :class:`~repro.grid.site.SitePolicy` or a pinned
:class:`~repro.grid.preemption.PreemptionTrace`), scheduler choice, and
optional scenario phases (elastic growth, a concurrent HDFS balancer run).

Specs round-trip through plain dicts / JSON (:meth:`ScenarioSpec.to_dict`
/ :meth:`ScenarioSpec.from_dict`), so scenarios can be catalogued,
diffed, and replayed byte-for-byte.  ``None`` fields mean "use the
calibrated default" — resolved by the
:class:`~repro.scenarios.runner.ScenarioRunner`, never baked into the
spec, so the calibration can evolve without invalidating saved specs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
import json
from typing import Dict, List, Optional

from ..core.config import NodeConfig
from ..faults.plan import FaultPlan
from ..grid.glidein import WrapperConfig
from ..grid.preemption import PreemptionEvent, PreemptionTrace
from ..grid.site import SitePolicy
from ..hdfs.config import HdfsConfig
from ..mapreduce.config import MRConfig
from ..mapreduce.job import JobSpec
from ..net.fabric import FabricConfig
from ..workload.facebook import MEAN_INTERARRIVAL
from ..workload.schedule import (
    LoadgenParams,
    ScheduledJob,
    SubmissionSchedule,
)

__all__ = ["ClusterSpec", "WorkloadSpec", "FaultSpec", "ObsSpec",
           "ScenarioSpec"]


def _opt_dict(obj) -> Optional[dict]:
    return None if obj is None else asdict(obj)


def _opt_load(cls, d: Optional[dict]):
    return None if d is None else cls(**d)


def _schedule_to_dict(s: Optional[SubmissionSchedule]) -> Optional[dict]:
    if s is None:
        return None
    return {
        "inputs": dict(s.inputs),
        "jobs": [{"submit_time": j.submit_time, "bin_id": j.bin_id,
                  "spec": asdict(j.spec)} for j in s.jobs],
    }


def _schedule_from_dict(d: Optional[dict]) -> Optional[SubmissionSchedule]:
    if d is None:
        return None
    jobs = [ScheduledJob(jd["submit_time"], JobSpec(**jd["spec"]),
                         jd["bin_id"]) for jd in d["jobs"]]
    return SubmissionSchedule(jobs, dict(d["inputs"]))


def _trace_to_list(t: Optional[PreemptionTrace]) -> Optional[List[dict]]:
    return None if t is None else [asdict(e) for e in t.events]


def _trace_from_list(items: Optional[List[dict]]) -> Optional[PreemptionTrace]:
    if items is None:
        return None
    return PreemptionTrace([PreemptionEvent(**e) for e in items])


@dataclass
class ClusterSpec:
    """Cluster shape: how many workers, on what hardware, behind what WAN.

    ``None`` config fields fall back to the calibrated grid defaults
    (:mod:`repro.scenarios.calibration`) at run time.
    """

    #: Worker-node target the workload waits for before starting (§IV-A).
    n_nodes: int = 55
    #: Grid sites the deployment spans (≤ 5, the paper's whitelist).
    n_sites: int = 5
    site_awareness: bool = True
    #: Fraction of ``n_nodes`` that must be simultaneously running before
    #: the workload starts (1.0 = the paper's strict protocol; large
    #: churny sweeps use e.g. 0.98).
    ramp_fraction: float = 1.0
    #: Site over-provisioning factor (slack for churn replacement).
    capacity_headroom: float = 1.3
    #: Baseline worker hardware; ``None`` = calibrated grid node.
    node: Optional[NodeConfig] = None
    #: Per-site hardware tiers keyed by grid site *name* (e.g.
    #: ``"UCSDT2"``) — the SSD/HDD heterogeneous-mix knob.
    site_tiers: Dict[str, NodeConfig] = field(default_factory=dict)
    #: Per-site WAN bandwidth caps, bytes/s, keyed by site *domain* (the
    #: topology site name, e.g. ``"fnal.gov"``) — merged into the fabric's
    #: ``site_uplink_overrides``.
    uplink_caps: Dict[str, float] = field(default_factory=dict)
    fabric: Optional[FabricConfig] = None
    hdfs: Optional[HdfsConfig] = None
    mr: Optional[MRConfig] = None
    wrapper: Optional[WrapperConfig] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if not (0.0 < self.ramp_fraction <= 1.0):
            raise ValueError("ramp_fraction must be in (0, 1]")
        if self.capacity_headroom < 1.0:
            raise ValueError("capacity_headroom must be >= 1")
        if any(v <= 0 for v in self.uplink_caps.values()):
            raise ValueError("uplink caps must be positive")
        for node in self.site_tiers.values():
            node.validate()

    def to_dict(self) -> dict:
        d = asdict(self)
        d["node"] = _opt_dict(self.node)
        d["site_tiers"] = {k: asdict(v) for k, v in self.site_tiers.items()}
        d["fabric"] = _opt_dict(self.fabric)
        d["hdfs"] = _opt_dict(self.hdfs)
        d["mr"] = _opt_dict(self.mr)
        d["wrapper"] = _opt_dict(self.wrapper)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ClusterSpec":
        d = dict(d)
        d["node"] = _opt_load(NodeConfig, d.get("node"))
        d["site_tiers"] = {k: NodeConfig(**v)
                           for k, v in (d.get("site_tiers") or {}).items()}
        d["fabric"] = _opt_load(FabricConfig, d.get("fabric"))
        d["hdfs"] = _opt_load(HdfsConfig, d.get("hdfs"))
        d["mr"] = _opt_load(MRConfig, d.get("mr"))
        d["wrapper"] = _opt_load(WrapperConfig, d.get("wrapper"))
        return cls(**d)


@dataclass
class WorkloadSpec:
    """What runs on the cluster: generated Facebook mix or a pinned
    schedule."""

    #: Loadgen cost model; ``None`` = the calibrated Table II model.
    loadgen: Optional[LoadgenParams] = None
    #: Fraction of Table II's per-bin job counts, in (0, 1].
    scale: float = 1.0
    #: Mean of the exponential submission gaps (paper: 14 s).
    mean_interarrival: float = MEAN_INTERARRIVAL
    #: Explicit submission schedule.  When set it is replayed verbatim and
    #: ``loadgen``/``scale``/``mean_interarrival`` are ignored.
    schedule: Optional[SubmissionSchedule] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if not (0.0 < self.scale <= 1.0):
            raise ValueError("scale must be in (0, 1]")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.loadgen is not None:
            self.loadgen.validate()

    def to_dict(self) -> dict:
        return {
            "loadgen": _opt_dict(self.loadgen),
            "scale": self.scale,
            "mean_interarrival": self.mean_interarrival,
            "schedule": _schedule_to_dict(self.schedule),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        d = dict(d)
        d["loadgen"] = _opt_load(LoadgenParams, d.get("loadgen"))
        d["schedule"] = _schedule_from_dict(d.get("schedule"))
        return cls(**d)


@dataclass
class FaultSpec:
    """How the grid misbehaves.

    ``policy`` drives stochastic preemption; ``trace`` pins every
    preemption to a time and site; ``plan`` schedules typed fault events
    (site blackouts, WAN degradation/partitions, failure waves, disk
    failures, stragglers — see :mod:`repro.faults.plan`).  Both pinned
    forms replay from the instant the cluster finishes ramping.  When a
    trace or plan is given and no policy, the runner uses a churn-free
    policy so the pinned events are the *only* fault source.
    """

    policy: Optional[SitePolicy] = None
    trace: Optional[PreemptionTrace] = None
    plan: Optional[FaultPlan] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.policy is not None:
            self.policy.validate()
        if self.plan is not None:
            for ev in self.plan.events:
                ev.validate()

    def to_dict(self) -> dict:
        return {"policy": _opt_dict(self.policy),
                "trace": _trace_to_list(self.trace),
                "plan": None if self.plan is None else self.plan.to_list()}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        plan = d.get("plan")
        return cls(policy=_opt_load(SitePolicy, d.get("policy")),
                   trace=_trace_from_list(d.get("trace")),
                   plan=None if plan is None else FaultPlan.from_list(plan))


@dataclass
class ObsSpec:
    """Telemetry knobs for one run (all off by default).

    The hard contract (``tests/test_obs.py``): none of these settings may
    change a simulation outcome — the determinism payload is byte-identical
    with everything off, everything on, and any ``sample_interval``.
    """

    #: Sim-time gauge sampling cadence in seconds; ``None`` disables the
    #: probes (no timer events are ever created).
    sample_interval: Optional[float] = None
    #: Enable the causal tracer (job/attempt/shuffle/HDFS spans + marks).
    trace: bool = False
    #: Tracer category allow-list; ``None`` records every category.
    #: High-volume categories (``channel``) are worth opting into
    #: explicitly on large runs.
    trace_categories: Optional[List[str]] = None
    #: Tracer ring-buffer bound (newest records kept).
    trace_capacity: int = 100_000
    #: Attach an :class:`~repro.sim.events.EngineProfile` to the engine.
    profile_engine: bool = False
    #: Cap on points per emitted gauge timeline (downsampled above this).
    timeline_max_points: int = 512
    #: Run the :class:`~repro.faults.invariants.InvariantChecker` at phase
    #: boundaries (and on a cadence, if ``invariant_interval`` is set).
    check_invariants: bool = False
    #: Invariant-check cadence in sim-seconds; ``None`` = phase
    #: boundaries only.  Implies ``check_invariants``-style zero cost when
    #: the checker is off: no timer events are ever created.
    invariant_interval: Optional[float] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive or None")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.timeline_max_points < 2:
            raise ValueError("timeline_max_points must be >= 2")
        if self.invariant_interval is not None \
                and self.invariant_interval <= 0:
            raise ValueError("invariant_interval must be positive or None")

    @property
    def enabled(self) -> bool:
        """True when any telemetry feature is switched on."""
        return (self.sample_interval is not None or self.trace
                or self.profile_engine or self.check_invariants)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Optional[dict]) -> "ObsSpec":
        return cls(**d) if d else cls()


@dataclass
class ScenarioSpec:
    """One complete, runnable, serializable scenario."""

    name: str
    description: str = ""
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    #: Telemetry configuration; the all-defaults instance means "off".
    obs: ObsSpec = field(default_factory=ObsSpec)
    #: Task scheduler: ``fifo`` (the paper), ``delay``, or ``matchmaking``.
    scheduler: str = "fifo"
    seed: int = 0
    #: Cap on simulated seconds per phase, for safety.
    timeout: float = 400_000.0
    #: Elastic-growth phase: after the input preload, raise the node
    #: target to this and wait for it (§IV-C) before the workload starts.
    grow_to: Optional[int] = None
    #: Run the HDFS balancer concurrently with the workload (the
    #: rebalance-under-load scenario; §IV-C pairs it with elastic growth).
    balance_during_run: bool = False
    balancer_threshold: float = 0.10

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.scheduler not in ("fifo", "delay", "matchmaking"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.grow_to is not None and self.grow_to < self.cluster.n_nodes:
            raise ValueError("grow_to must be >= the initial node target")
        if not (0.0 < self.balancer_threshold < 1.0):
            raise ValueError("balancer_threshold must be in (0, 1)")
        self.cluster.validate()
        self.workload.validate()
        self.faults.validate()
        self.obs.validate()

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "name": self.name,
            "description": self.description,
            "cluster": self.cluster.to_dict(),
            "workload": self.workload.to_dict(),
            "faults": self.faults.to_dict(),
            "obs": self.obs.to_dict(),
            "scheduler": self.scheduler,
            "seed": self.seed,
            "timeout": self.timeout,
            "grow_to": self.grow_to,
            "balance_during_run": self.balance_during_run,
            "balancer_threshold": self.balancer_threshold,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        d = dict(d)
        d["cluster"] = ClusterSpec.from_dict(d.get("cluster") or {})
        d["workload"] = WorkloadSpec.from_dict(d.get("workload") or {})
        d["faults"] = FaultSpec.from_dict(d.get("faults") or {})
        # Tolerate specs saved before the obs section existed.
        d["obs"] = ObsSpec.from_dict(d.pop("obs", None))
        return cls(**d)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec serialized by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
