"""The scenario registry: named, composable, parameterizable scenarios.

Every entry is a *builder* ``(n_nodes=None, scale=None, seed=0) →
ScenarioSpec``; ``None`` arguments take the scenario's preferred default,
so the same name runs at paper scale from the CLI and at a few dozen
nodes from the fast test tier.  Consumers may further tweak the returned
spec (it is plain data) — fig5, for instance, swaps the fault policy.

Built-ins
---------
``baseline``
    The paper's Figure 4 configuration: Table II workload, calibrated
    grid hardware, typical opportunistic churn.
``contended``
    Shuffle-heavy (2× intermediate data) on half-speed disks: shuffle
    serves and replication become genuinely *disk*-bound, exercising the
    channel core's joint disk+network demands.
``wan_staging``
    Every site uplink throttled hard while elevated churn keeps
    replacement glideins re-downloading the worker package — package
    staging, cross-site shuffle, and re-replication all share the same
    starved WAN legs.
``hetero_tiers``
    SSD/HDD site mix: two SSD sites, two stock-disk sites, one slow-HDD
    site, exercising placement and scheduling over per-site disk tiers.
``rebalance_under_load``
    Preload on a small cluster, grow it elastically (§IV-C), then run the
    HDFS balancer *concurrently* with the job stream — block migrations
    are rated jointly against live shuffle traffic at both endpoints.
``churn_heavy``
    Pinned diurnal preemption waves (a deterministic trace) sweeping
    site after site, on top of mild background churn.
``blackout``
    A full-site connectivity blackout mid-workload that heals before the
    run ends: the namenode re-replicates around the dark site, then the
    returning datanodes re-register with intact disks and the block map
    reconciles back to steady state (the long-horizon recovery scenario).
``flaky_wan``
    Degraded and partitioned WAN windows plus straggler nodes: uplinks
    run at a fraction of capacity, one site drops off the WAN entirely
    for a stretch, slow nodes drag the tail.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional

from ..core.config import NodeConfig
from ..faults.plan import FaultEvent, FaultPlan
from ..grid.preemption import PreemptionEvent, PreemptionTrace
from ..grid.site import PAPER_SITE_DOMAINS, PAPER_SITE_NAMES, SitePolicy
from ..hdfs.config import GB
from . import calibration
from .spec import ClusterSpec, FaultSpec, ObsSpec, ScenarioSpec, WorkloadSpec

__all__ = ["register", "names", "describe", "build", "ScenarioBuilder"]

ScenarioBuilder = Callable[..., ScenarioSpec]

_REGISTRY: Dict[str, ScenarioBuilder] = {}


def register(name: str) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator: add a builder to the registry under ``name``."""
    def deco(fn: ScenarioBuilder) -> ScenarioBuilder:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = fn
        return fn
    return deco


def names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def describe() -> Dict[str, str]:
    """``name → one-line description`` for every registered scenario."""
    return {name: builder.__doc__.strip().splitlines()[0]
            for name, builder in _REGISTRY.items()}


def build(name: str, n_nodes: Optional[int] = None,
          scale: Optional[float] = None, seed: int = 0) -> ScenarioSpec:
    """Build a registered scenario's spec.

    ``n_nodes``/``scale`` override the scenario's preferred defaults;
    further tweaks go directly on the returned (plain-data) spec.
    """
    builder = _REGISTRY.get(name)
    if builder is None:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"registered: {', '.join(_REGISTRY)}")
    return builder(n_nodes=n_nodes, scale=scale, seed=seed)


def _slow_disk_node() -> NodeConfig:
    """Half-speed spinning disks on otherwise calibrated grid hardware."""
    return replace(calibration.grid_node_config(),
                   disk_read_rate=45e6, disk_write_rate=35e6)


def _ssd_node() -> NodeConfig:
    """A 2012-era SATA SSD tier: ~4× the stock disk bandwidth."""
    return replace(calibration.grid_node_config(),
                   disk_read_rate=360e6, disk_write_rate=280e6)


@register("baseline")
def baseline(n_nodes: Optional[int] = None, scale: Optional[float] = None,
             seed: int = 0) -> ScenarioSpec:
    """The paper's evaluation setup: Table II workload under typical churn."""
    return ScenarioSpec(
        name="baseline",
        description="Table II Facebook workload on calibrated grid "
                    "hardware under typical opportunistic churn (the "
                    "Figure 4 configuration).",
        cluster=ClusterSpec(n_nodes=n_nodes or 55),
        workload=WorkloadSpec(scale=scale or 1.0),
        faults=FaultSpec(policy=calibration.default_grid_policy()),
        seed=seed,
    )


@register("contended")
def contended(n_nodes: Optional[int] = None, scale: Optional[float] = None,
              seed: int = 0) -> ScenarioSpec:
    """Shuffle-heavy workload (2x intermediate data) on half-speed disks."""
    base = calibration.default_loadgen()
    return ScenarioSpec(
        name="contended",
        description="2x the baseline intermediate data on half-speed "
                    "disks: every shuffle serve and replication stream is "
                    "a disk-bound joint disk+network demand.",
        cluster=ClusterSpec(n_nodes=n_nodes or 100, node=_slow_disk_node()),
        workload=WorkloadSpec(
            loadgen=replace(base,
                            map_output_ratio=2.0 * base.map_output_ratio),
            scale=scale or 1.0),
        faults=FaultSpec(policy=calibration.default_grid_policy()),
        seed=seed,
    )


@register("wan_staging")
def wan_staging(n_nodes: Optional[int] = None, scale: Optional[float] = None,
                seed: int = 0) -> ScenarioSpec:
    """Glidein package staging and shuffle sharing starved site uplinks."""
    # ~1.2 Gbps per site uplink (vs 10 Gbps default) and churn brisk
    # enough that replacement glideins are re-downloading the 75 MB worker
    # package throughout the run — downloads, cross-site shuffle, and
    # re-replication all contend on the same WAN legs.
    caps = {domain: 150e6 for domain in PAPER_SITE_DOMAINS}
    caps["unl.edu"] = 150e6  # the central package server's own uplink
    return ScenarioSpec(
        name="wan_staging",
        description="Site uplinks capped at ~1.2 Gbps while elevated "
                    "churn keeps glidein package downloads competing "
                    "with the shuffle on the WAN.",
        cluster=ClusterSpec(n_nodes=n_nodes or 60, uplink_caps=caps,
                            ramp_fraction=0.95),
        workload=WorkloadSpec(scale=scale or 1.0),
        faults=FaultSpec(policy=SitePolicy(
            preempt_rate=1.0 / 3500.0, burst_rate=1.0 / 2500.0,
            burst_fraction=0.15, scheduling_delay_mean=30.0)),
        seed=seed,
    )


@register("hetero_tiers")
def hetero_tiers(n_nodes: Optional[int] = None,
                 scale: Optional[float] = None,
                 seed: int = 0) -> ScenarioSpec:
    """Heterogeneous SSD/HDD site mix (two fast, two stock, one slow)."""
    tiers = {
        PAPER_SITE_NAMES[0]: _ssd_node(),
        PAPER_SITE_NAMES[1]: _ssd_node(),
        # sites 2 and 3 keep the calibrated stock disk
        PAPER_SITE_NAMES[4]: _slow_disk_node(),
    }
    return ScenarioSpec(
        name="hetero_tiers",
        description="Per-site disk tiers (SSD / stock / slow HDD): the "
                    "same workload crosses fast and slow storage domains "
                    "behind one scheduler.",
        cluster=ClusterSpec(n_nodes=n_nodes or 60, site_tiers=tiers),
        workload=WorkloadSpec(scale=scale or 1.0),
        faults=FaultSpec(policy=calibration.stable_policy()),
        seed=seed,
    )


@register("rebalance_under_load")
def rebalance_under_load(n_nodes: Optional[int] = None,
                         scale: Optional[float] = None,
                         seed: int = 0) -> ScenarioSpec:
    """HDFS balancer migrating blocks while the job stream is live."""
    n = n_nodes or 40
    # Small disks make the 244 GB input preload a substantial fraction of
    # each initial node's capacity, so the empty late-joiners leave a real
    # imbalance for the balancer to work off while jobs run.
    node = replace(calibration.grid_node_config(), disk_capacity=24 * GB)
    return ScenarioSpec(
        name="rebalance_under_load",
        description="Preload on a small cluster, grow it elastically "
                    "(fresh nodes join empty, §IV-C), then run the HDFS "
                    "balancer concurrently with the job stream: block "
                    "moves are rated jointly against live shuffle at "
                    "both the source disk and the target disk.",
        cluster=ClusterSpec(n_nodes=n, node=node),
        workload=WorkloadSpec(scale=scale or 0.25),
        faults=FaultSpec(policy=calibration.stable_policy()),
        grow_to=max(n + 1, int(round(n * 1.5))),
        balance_during_run=True,
        balancer_threshold=0.05,
        seed=seed,
    )


def diurnal_trace(n_nodes: int, n_sites: int = 5,
                  wave_period: float = 900.0, n_waves: int = 24,
                  victim_fraction: float = 0.3) -> PreemptionTrace:
    """Deterministic diurnal preemption waves.

    Every ``wave_period`` seconds one site (rotating round-robin) evicts
    ``victim_fraction`` of the scenario's per-site node share — the
    pinned, replayable counterpart of the stochastic burst model.  Waves
    beyond the run's end simply never fire.
    """
    per_site = max(1, int(round(victim_fraction * n_nodes / n_sites)))
    events = [
        PreemptionEvent(time=(w + 1) * wave_period,
                        site=PAPER_SITE_NAMES[w % n_sites],
                        count=per_site)
        for w in range(n_waves)
    ]
    return PreemptionTrace(events)


@register("churn_heavy")
def churn_heavy(n_nodes: Optional[int] = None,
                scale: Optional[float] = None,
                seed: int = 0) -> ScenarioSpec:
    """Diurnal preemption waves (pinned trace) over background churn."""
    n = n_nodes or 55
    return ScenarioSpec(
        name="churn_heavy",
        description="A pinned trace of diurnal preemption waves sweeps "
                    "the sites round-robin on top of mild background "
                    "churn — the deterministic heavy-fluctuation regime "
                    "of Figure 5c.",
        cluster=ClusterSpec(n_nodes=n, ramp_fraction=0.95),
        workload=WorkloadSpec(scale=scale or 1.0),
        faults=FaultSpec(policy=calibration.stable_policy(),
                         trace=diurnal_trace(n)),
        seed=seed,
    )


@register("blackout")
def blackout(n_nodes: Optional[int] = None, scale: Optional[float] = None,
             seed: int = 0) -> ScenarioSpec:
    """Full-site blackout that heals: long-horizon HDFS recovery."""
    n = n_nodes or 40
    plan = FaultPlan([
        # One site goes dark mid-workload (connectivity outage: daemons
        # stop, disks intact).  The namenode declares the nodes dead,
        # re-replicates around the hole; when the site heals, every node
        # re-registers with its full block report and the reconciliation
        # path trashes the now-excess replicas.
        FaultEvent(time=300.0, kind="site_blackout",
                   site=PAPER_SITE_NAMES[2], duration=450.0, mode="outage"),
    ])
    return ScenarioSpec(
        name="blackout",
        description="A full-site connectivity blackout heals mid-run: "
                    "re-replication storms around the dark site, then "
                    "re-registration block reports reconcile the block "
                    "map back to pre-fault steady state (asserted by the "
                    "settle phase's convergence finals).",
        cluster=ClusterSpec(n_nodes=n),
        workload=WorkloadSpec(scale=scale or 0.25),
        faults=FaultSpec(plan=plan),
        obs=ObsSpec(check_invariants=True),
        seed=seed,
    )


@register("flaky_wan")
def flaky_wan(n_nodes: Optional[int] = None, scale: Optional[float] = None,
              seed: int = 0) -> ScenarioSpec:
    """Degraded/partitioned WAN windows with stragglers and disk loss."""
    n = n_nodes or 40
    plan = FaultPlan([
        FaultEvent(time=120.0, kind="wan_degrade",
                   site=PAPER_SITE_NAMES[0], duration=600.0, value=0.15),
        FaultEvent(time=200.0, kind="straggler",
                   site=PAPER_SITE_NAMES[1], duration=700.0, count=3,
                   value=4.0),
        FaultEvent(time=300.0, kind="wan_degrade",
                   site=PAPER_SITE_NAMES[3], duration=450.0, value=0.25),
        # The hard window: one site drops off the WAN entirely — live
        # cross-site transfers abort, new ones fail fast for the duration.
        FaultEvent(time=600.0, kind="wan_degrade",
                   site=PAPER_SITE_NAMES[2], duration=240.0,
                   mode="partition"),
        FaultEvent(time=900.0, kind="disk_fail",
                   site=PAPER_SITE_NAMES[4], count=2),
    ])
    return ScenarioSpec(
        name="flaky_wan",
        description="Uplinks run at 15-25% capacity in overlapping "
                    "windows, one site is WAN-partitioned outright, "
                    "straggler nodes drag the tail, and two disks die "
                    "under their datanodes — the hostile-WAN regime.",
        cluster=ClusterSpec(n_nodes=n),
        workload=WorkloadSpec(scale=scale or 0.25),
        faults=FaultSpec(plan=plan),
        obs=ObsSpec(check_invariants=True),
        seed=seed,
    )
