"""Declarative scenarios: a registry of composable grid/workload setups
with one unified runner.

- :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and its parts
  (cluster shape, workload, fault model), dict/JSON round-trippable
- :mod:`repro.scenarios.registry` — named built-ins (``baseline``,
  ``contended``, ``wan_staging``, ``hetero_tiers``,
  ``rebalance_under_load``, ``churn_heavy``)
- :mod:`repro.scenarios.runner` — :class:`ScenarioRunner` →
  :class:`ScenarioResult` (makespan, per-phase wall/sim time,
  channel-core stats, locality and preemption counters)
- :mod:`repro.scenarios.calibration` — shared calibrated constants
- ``python -m repro.scenarios.run <name>`` — the CLI
"""

from . import calibration, registry
from .runner import (
    PhaseStat,
    ScenarioResult,
    ScenarioRunner,
    collect_result,
    drive_workload,
)
from .spec import ClusterSpec, FaultSpec, ScenarioSpec, WorkloadSpec

__all__ = [
    "calibration",
    "registry",
    "ClusterSpec",
    "WorkloadSpec",
    "FaultSpec",
    "ScenarioSpec",
    "ScenarioRunner",
    "ScenarioResult",
    "PhaseStat",
    "drive_workload",
    "collect_result",
]
