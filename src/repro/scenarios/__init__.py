"""Declarative scenarios: a registry of composable grid/workload setups
with one unified runner.

- :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and its parts
  (cluster shape, workload, fault model), dict/JSON round-trippable
- :mod:`repro.scenarios.registry` — named built-ins (``baseline``,
  ``contended``, ``wan_staging``, ``hetero_tiers``,
  ``rebalance_under_load``, ``churn_heavy``)
- :mod:`repro.scenarios.runner` — :class:`ScenarioRunner` →
  :class:`ScenarioResult` (makespan, per-phase wall/sim time,
  channel-core stats, locality and preemption counters)
- :mod:`repro.scenarios.parallel` — multiprocessing fan-out over
  serialized specs (``run_specs_parallel``), simulation-identical to
  serial runs
- :mod:`repro.scenarios.calibration` — shared calibrated constants
- ``python -m repro.scenarios.run <name>`` — the CLI
  (``--parallel N``, ``--profile``)
"""

from . import calibration, registry
from .parallel import run_spec_json, run_specs_parallel
from .runner import (
    PhaseStat,
    ScenarioResult,
    ScenarioRunner,
    collect_result,
    drive_workload,
)
from .spec import ClusterSpec, FaultSpec, ScenarioSpec, WorkloadSpec

__all__ = [
    "calibration",
    "registry",
    "ClusterSpec",
    "WorkloadSpec",
    "FaultSpec",
    "ScenarioSpec",
    "ScenarioRunner",
    "ScenarioResult",
    "PhaseStat",
    "drive_workload",
    "collect_result",
    "run_spec_json",
    "run_specs_parallel",
]
