"""The unified scenario runner.

One code path stands up ANY scenario — fig4-style sweeps, churn studies,
WAN-staging stress, heterogeneous disk tiers, rebalancing under load —
from its declarative :class:`~repro.scenarios.spec.ScenarioSpec`:

1. build the :class:`~repro.core.hog.HOGSystem` (per-site hardware tiers
   and WAN caps applied),
2. ramp to the node target (event-driven, §IV-A protocol),
3. arm the fault model (pinned trace replay and/or stochastic policy),
4. preload the workload inputs,
5. optionally grow the cluster elastically and start a concurrent HDFS
   balancer run (§IV-C),
6. replay the submission schedule to completion,
7. emit a structured, JSON-ready :class:`ScenarioResult` — makespan,
   per-phase wall/sim time, channel-core pass statistics, locality and
   preemption counters.

The experiment drivers (fig4/fig5) and the scale-sweep benchmark are thin
consumers of this runner; they carry no private setup code.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..core.config import HOGConfig
from ..core.hog import HOGSystem
from ..faults.injector import Injector
from ..faults.invariants import InvariantChecker
from ..grid.glidein import WrapperConfig
from ..grid.preemption import TraceDriver
from ..grid.site import SitePolicy, sites_with_policy
from ..hdfs.balancer import Balancer
from ..hdfs.config import hog_config
from ..mapreduce.config import hog_mr_config
from ..metrics.report import WorkloadResult
from ..obs.probes import ProbeSet
from ..obs.trace import Tracer
from ..sim.engine import Simulator
from ..sim.events import EngineProfile
from ..sim.monitor import StepSeries
from ..workload.schedule import SubmissionSchedule, build_facebook_schedule
from . import calibration
from .spec import ScenarioSpec

__all__ = ["PhaseStat", "ScenarioResult", "ScenarioRunner",
           "drive_workload", "collect_result"]

#: Channel-core statistics recorded per run.  Kept as the documented key
#: list of the result's ``channel`` section (benchmark JSON compat); the
#: values themselves now come from ``HOGSystem.registry.snapshot()``.
CHANNEL_STATS = ("rebalances", "uniform_groups", "uniform_completions",
                 "uniform_leaves", "uniform_joins", "uniform_pins",
                 "cross_partition_passes", "arrival_fast_paths",
                 "departure_fast_paths", "completion_fast_paths",
                 "uniform_fast_accepts",
                 "starvation_rescues", "peak_demands")


# -- shared workload-driving helpers (the single copy in the codebase) ----
def _submission_process(sim, system, schedule: SubmissionSchedule, jobs: list):
    """Replay the schedule: sleep each exponential gap, submit; then wait
    (event-driven) for every submitted job to finish."""
    last = 0.0
    for item in schedule.jobs:
        gap = item.submit_time - last
        if gap > 0:
            yield sim.timeout(gap)
        last = item.submit_time
        jobs.append((system.submit(item.spec), item.bin_id))
    if jobs:
        yield system.jobtracker.when_jobs_done([j for j, _ in jobs])


def drive_workload(sim, system, schedule: SubmissionSchedule, jobs: list,
                   timeout: float) -> None:
    """Run the submission replay to completion (or ``timeout`` sim-seconds).

    The driver process finishes at the exact instant the last job does;
    the engine advances straight through real events instead of polling
    job states."""
    driver = sim.process(_submission_process(sim, system, schedule, jobs),
                         name="workload-submitter")
    sim.run_until(driver, sim.now + timeout)


def collect_result(system_name: str, nodes: int, jobs, start: float,
                   end: float, series: Optional[StepSeries],
                   jobtracker) -> WorkloadResult:
    """Fold per-job outcomes into one :class:`WorkloadResult`."""
    bin_responses: Dict[int, List[float]] = {}
    failed = 0
    locality = {"data_local": 0, "site_local": 0, "remote": 0}
    for job, bin_id in jobs:
        if job.response_time is None or job.status != "succeeded":
            failed += 1
            continue
        bin_responses.setdefault(bin_id, []).append(job.response_time)
        for k, v in job.locality_counters.items():
            locality[k] += v
    area = series.integrate(start, end) if series is not None else None
    return WorkloadResult(
        system=system_name, nodes=nodes, start_time=start, end_time=end,
        bin_responses=bin_responses, failed_jobs=failed, node_area=area,
        locality=locality, counters=jobtracker.counters.as_dict())


# -- results ---------------------------------------------------------------
@dataclass
class PhaseStat:
    """Wall/sim cost of one runner phase."""

    name: str
    wall_seconds: float
    sim_seconds: float

    def to_dict(self) -> dict:
        return {"name": self.name,
                "wall_seconds": round(self.wall_seconds, 3),
                "sim_seconds": round(self.sim_seconds, 1)}


@dataclass
class ScenarioResult:
    """Structured outcome of one scenario run (JSON-ready).

    ``payload()`` strips the wall-clock fields, leaving only
    simulation-determined values — two runs of the same spec and seed must
    produce identical payloads (the determinism guard asserts this).
    """

    #: Result-record schema version (bump on key layout changes so the
    #: obs diff tooling can evolve safely).  v2 added the registry-fed
    #: sections, per-phase timelines, and the engine profile; v3 the
    #: fault-injection section and the obs-only invariant roll-up.
    SCHEMA_VERSION = 3

    scenario: str
    nodes: int
    seed: int
    scale: float
    #: Workload response time: first submission → last completion (§IV-A).
    makespan_seconds: float
    #: Simulated span of the whole run (ramp through drain).
    sim_seconds: float
    wall_seconds: float
    events: int
    phases: List[PhaseStat] = field(default_factory=list)
    #: Channel-core pass statistics plus the fabric's peak flow count
    #: (the registry's ``channel`` namespace).
    channel: Dict[str, int] = field(default_factory=dict)
    #: Control-plane counters (heartbeat rounds, scheduler index updates,
    #: namenode block-report aggregates) — the delta-driven path's cost
    #: (the registry's ``control`` namespace).
    control: Dict[str, int] = field(default_factory=dict)
    #: The namenode's full counter bag (the registry's ``hdfs``
    #: namespace).  Recovery-health leaves (``blocks_all_replicas_lost``,
    #: ``replication_retries_deferred``, ``replicas_trashed``...) surface
    #: in EVERY record — fault scenario or not — so the run-diff gate can
    #: flag a fault metric appearing in a scenario that should never lose
    #: data.
    hdfs: Dict[str, int] = field(default_factory=dict)
    #: Map-launch locality histogram summed over jobs.
    locality: Dict[str, int] = field(default_factory=dict)
    #: Glidein provisioning/preemption counters (the registry's ``grid``
    #: namespace, plus the trace driver's skip count when one ran).
    preemptions: Dict[str, int] = field(default_factory=dict)
    failed_jobs: int = 0
    jobs_completed: int = 0
    #: Area beneath the believed-node curve over the workload (Table IV).
    node_area: Optional[float] = None
    #: Concurrent-balancer outcome, when the scenario ran one.
    balancer: Optional[Dict[str, object]] = None
    #: Fault-injection outcome when the scenario scheduled a
    #: :class:`~repro.faults.plan.FaultPlan`: injector counters plus the
    #: post-settle recovery convergence finals.  Simulation-determined,
    #: so it IS part of :meth:`payload`.
    faults: Optional[Dict[str, object]] = None
    #: Per-phase gauge timelines ``{phase: {gauge: {"t": [...],
    #: "v": [...]}}}`` when probes were enabled; presence varies with the
    #: sampling cadence, so the section is NOT part of :meth:`payload`.
    timelines: Optional[Dict[str, dict]] = None
    #: Engine self-profile (dispatch mix, heap high-water); obs-only.
    engine: Optional[dict] = None
    #: Tracer roll-up (recorded/kept/dropped, per-category); obs-only.
    trace: Optional[dict] = None
    #: Invariant-checker roll-up (checks run, violations by invariant);
    #: obs-only — stripped from :meth:`payload` so the checker being
    #: on/off cannot change the determinism payload.
    invariants: Optional[dict] = None

    @property
    def events_per_second(self) -> Optional[int]:
        """Engine throughput over the whole run (wall-derived)."""
        if self.wall_seconds <= 0:
            return None
        return round(self.events / self.wall_seconds)

    def to_dict(self) -> dict:
        """Full JSON-ready record (wall-clock fields included)."""
        return {
            "schema_version": self.SCHEMA_VERSION,
            "scenario": self.scenario,
            "nodes": self.nodes,
            "seed": self.seed,
            "scale": self.scale,
            "makespan_seconds": round(self.makespan_seconds, 1),
            "sim_seconds": round(self.sim_seconds, 1),
            "wall_seconds": round(self.wall_seconds, 3),
            "events": self.events,
            "events_per_second": self.events_per_second,
            "phases": [p.to_dict() for p in self.phases],
            "channel": dict(self.channel),
            "control": dict(self.control),
            "hdfs": dict(self.hdfs),
            "locality": dict(self.locality),
            "preemptions": dict(self.preemptions),
            "failed_jobs": self.failed_jobs,
            "jobs_completed": self.jobs_completed,
            "node_area": (None if self.node_area is None
                          else round(self.node_area, 1)),
            "balancer": self.balancer,
            "faults": self.faults,
            "timelines": self.timelines,
            "engine": self.engine,
            "trace": self.trace,
            "invariants": self.invariants,
        }

    def payload(self) -> dict:
        """Simulation-determined subset of :meth:`to_dict` (no wall
        clocks) — identical across same-seed runs.

        Telemetry sections whose *presence or shape* depends on obs
        settings (timelines, engine profile, tracer stats) are stripped
        too: the payload must be byte-identical with telemetry off, on,
        and at any sampling cadence.
        """
        d = self.to_dict()
        d.pop("wall_seconds")
        d.pop("events_per_second")
        d.pop("timelines")
        d.pop("engine")
        d.pop("trace")
        d.pop("invariants")
        d["phases"] = [{"name": p["name"], "sim_seconds": p["sim_seconds"]}
                       for p in d["phases"]]
        return d

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the full record to JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """One human-readable line."""
        return (f"{self.scenario}[{self.nodes}]: makespan="
                f"{self.makespan_seconds:.0f}s sim={self.sim_seconds:.0f}s "
                f"wall={self.wall_seconds:.2f}s events={self.events} "
                f"failed={self.failed_jobs}")


# -- the runner ------------------------------------------------------------
class ScenarioRunner:
    """Builds, runs, and measures one :class:`ScenarioSpec`.

    After :meth:`run`, ``self.system`` (the live
    :class:`~repro.core.hog.HOGSystem`) and ``self.workload`` (the
    :class:`~repro.metrics.report.WorkloadResult`) stay available for
    consumers that need more than the :class:`ScenarioResult` — fig5 reads
    the believed-node series, fig4 the per-bin responses.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate()
        self.spec = spec
        self.sim: Optional[Simulator] = None
        self.system: Optional[HOGSystem] = None
        self.workload: Optional[WorkloadResult] = None
        self.result: Optional[ScenarioResult] = None
        #: Live tracer after :meth:`run` when ``spec.obs.trace`` was set —
        #: consumers export Chrome trace JSON via ``runner.tracer.write()``.
        self.tracer: Optional[Tracer] = None
        self.probes: Optional[ProbeSet] = None
        #: Live fault injector after :meth:`run` when the spec had a plan.
        self.injector: Optional[Injector] = None
        #: Live invariant checker when ``spec.obs.check_invariants`` was
        #: set (or an ``invariant_interval`` given).
        self.checker: Optional[InvariantChecker] = None

    # -- construction ------------------------------------------------------
    def build_config(self) -> HOGConfig:
        """Resolve the spec (``None`` → calibrated defaults) into a
        concrete :class:`~repro.core.config.HOGConfig`."""
        spec = self.spec
        c = spec.cluster
        policy = spec.faults.policy
        if policy is None:
            if spec.faults.trace is not None or spec.faults.plan is not None:
                # A pinned trace/plan with no stochastic policy: churn-free
                # sites, the pinned events are the only fault source.
                policy = SitePolicy()
            else:
                policy = calibration.default_grid_policy()
        capacity_target = max(c.n_nodes, spec.grow_to or 0)
        sites = sites_with_policy(policy, capacity_target, c.n_sites,
                                  headroom=c.capacity_headroom)
        fabric = c.fabric or calibration.grid_fabric()
        if c.uplink_caps:
            fabric = replace(fabric, site_uplink_overrides={
                **fabric.site_uplink_overrides, **c.uplink_caps})
        mr = c.mr or hog_mr_config()
        if mr.scheduler != spec.scheduler:
            mr = replace(mr, scheduler=spec.scheduler)
        return HOGConfig(
            sites=sites,
            hdfs=c.hdfs or hog_config(),
            mr=mr,
            fabric=fabric,
            wrapper=c.wrapper or WrapperConfig(),
            node=c.node or calibration.grid_node_config(),
            site_nodes=dict(c.site_tiers),
            site_awareness=c.site_awareness,
            seed=spec.seed,
        )

    def build_schedule(self) -> SubmissionSchedule:
        """The submission schedule this scenario replays."""
        w = self.spec.workload
        if w.schedule is not None:
            return w.schedule
        rng = np.random.default_rng(self.spec.seed + 77)
        return build_facebook_schedule(
            rng, w.loadgen or calibration.default_loadgen(),
            mean_interarrival=w.mean_interarrival, scale=w.scale)

    # -- execution ---------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Execute the scenario end-to-end; returns its result record."""
        spec = self.spec
        c = spec.cluster
        sim = Simulator()
        hog = HOGSystem(sim, self.build_config())
        self.sim, self.system = sim, hog

        # Telemetry (all off by default; none of it may change outcomes).
        obs = spec.obs
        if obs.trace:
            self.tracer = Tracer(capacity=obs.trace_capacity,
                                 categories=obs.trace_categories)
            hog.attach_tracer(self.tracer)
        if obs.profile_engine:
            sim.profile = EngineProfile()
        if obs.sample_interval is not None:
            self.probes = ProbeSet(sim, hog.registry.gauges(),
                                   obs.sample_interval)
            self.probes.start()
        if obs.check_invariants or obs.invariant_interval is not None:
            self.checker = InvariantChecker(sim, hog,
                                            interval=obs.invariant_interval)
            self.checker.start()

        phases: List[PhaseStat] = []
        #: (name, sim start, sim end) per phase, for timeline slicing.
        phase_bounds: List[tuple] = []
        wall_start = time.perf_counter()

        def phase(name: str, t0: float, s0: float) -> None:
            phases.append(PhaseStat(name, time.perf_counter() - t0,
                                    sim.now - s0))
            phase_bounds.append((name, s0, sim.now))
            if self.checker is not None:
                self.checker.check(name)

        # 1. Ramp: wait for the node target (§IV-A).
        t0, s0 = time.perf_counter(), sim.now
        hog.start(c.n_nodes)
        ramp_target = max(1, math.ceil(c.n_nodes * c.ramp_fraction))
        hog.run_until_nodes(ramp_target, timeout=spec.timeout)
        phase("ramp", t0, s0)

        # 2. Pinned fault replay starts once the cluster is up: the
        # preemption trace and the typed fault plan arm at the same
        # instant, so their event times share one origin.
        driver: Optional[TraceDriver] = None
        if spec.faults.trace is not None:
            driver = TraceDriver(sim, hog.factory, spec.faults.trace)
            driver.start()
        if spec.faults.plan is not None:
            self.injector = Injector(sim, hog, spec.faults.plan)
            self.injector.start()

        # 3. Preload the workload inputs (the §IV-A data upload).
        t0, s0 = time.perf_counter(), sim.now
        schedule = self.build_schedule()
        for input_file, n_blocks in schedule.inputs.items():
            hog.preload_input(input_file, n_blocks)
        phase("preload", t0, s0)

        # 4. Optional elastic growth (§IV-C): fresh nodes join empty.
        if spec.grow_to is not None and spec.grow_to > c.n_nodes:
            t0, s0 = time.perf_counter(), sim.now
            hog.set_target(spec.grow_to)
            grow_target = max(1, math.ceil(spec.grow_to * c.ramp_fraction))
            hog.run_until_nodes(grow_target, timeout=spec.timeout)
            phase("grow", t0, s0)

        # 5. Optional concurrent balancer run.
        balance_ev = None
        if spec.balance_during_run:
            balance_ev = Balancer(
                sim, hog.namenode,
                threshold=spec.balancer_threshold).run()

        # 6. The workload itself.
        t0, s0 = time.perf_counter(), sim.now
        jobs: list = []
        start = sim.now
        drive_workload(sim, hog, schedule, jobs, spec.timeout)
        end = sim.now
        phase("workload", t0, s0)

        # 7. Settle: after a fault plan, keep the clock running until
        # recovery converges (every repairable block back at target, the
        # trash queue drained) — the long-horizon correctness window.
        if self.injector is not None:
            t0, s0 = time.perf_counter(), sim.now
            self._settle(sim, hog, spec.timeout)
            phase("settle", t0, s0)

        # 8. Drain the balancer if it is still moving blocks.
        balancer_info: Optional[Dict[str, object]] = None
        if balance_ev is not None:
            if not balance_ev.triggered:
                t0, s0 = time.perf_counter(), sim.now
                sim.run_until(balance_ev, sim.now + spec.timeout)
                phase("drain", t0, s0)
            if balance_ev.triggered:
                report = balance_ev.value
                balancer_info = {
                    "completed": True,
                    "converged": report.converged,
                    "moved_blocks": report.moved_blocks,
                    "moved_bytes": round(report.moved_bytes, 1),
                    "iterations": report.iterations,
                }
            else:
                balancer_info = {"completed": False}

        faults_info: Optional[Dict[str, object]] = None
        if self.injector is not None:
            nn = hog.namenode
            faults_info = {
                "injected": self.injector.summary(),
                "convergence": {
                    "under_replicated_final": nn.under_replicated_count(),
                    "lost_blocks_final": nn.lost_block_count(),
                    "deferred_final": nn.deferred_replication_count(),
                    "invalidation_backlog_final":
                        nn.pending_invalidation_count(),
                    "block_map_size": nn.total_block_count(),
                    "repl_heap_final": len(nn._repl_heap),
                },
            }

        wall = time.perf_counter() - wall_start
        self.workload = collect_result(
            "HOG", c.n_nodes, jobs, start, end, hog.believed_series,
            hog.jobtracker)

        if self.probes is not None:
            self.probes.stop()
        # One registry snapshot replaces the old per-section hand-plucking;
        # the sections below are its namespaces verbatim.
        snap = hog.registry.snapshot()
        preempt = snap["grid"]
        if driver is not None:
            preempt["trace_events_skipped"] = driver.skipped
        # Fired probe/checker ticks are engine events too; subtract them
        # so the reported event count is identical at any cadence.
        events = sim.events_processed
        if self.probes is not None:
            events -= self.probes.events_injected
        if self.checker is not None:
            self.checker.stop()
            events -= self.checker.events_injected

        self.result = ScenarioResult(
            scenario=spec.name,
            nodes=c.n_nodes,
            seed=spec.seed,
            scale=spec.workload.scale,
            makespan_seconds=self.workload.response_time,
            sim_seconds=sim.now,
            wall_seconds=wall,
            events=events,
            phases=phases,
            channel=snap["channel"],
            control=snap["control"],
            hdfs=snap["hdfs"],
            locality=self.workload.locality,
            preemptions=preempt,
            failed_jobs=self.workload.failed_jobs,
            jobs_completed=sum(len(v) for v in
                               self.workload.bin_responses.values()),
            node_area=self.workload.node_area,
            balancer=balancer_info,
            faults=faults_info,
            timelines=self._phase_timelines(phase_bounds),
            engine=(sim.profile.as_dict() if sim.profile is not None
                    else None),
            trace=(self.tracer.stats() if self.tracer is not None else None),
            invariants=(self.checker.summary() if self.checker is not None
                        else None),
        )
        return self.result

    def _settle(self, sim: Simulator, hog: HOGSystem,
                timeout: float) -> None:
        """Advance until HDFS recovery converges (or wedges stably).

        Converged: nothing under-replicated, nothing deferred, the trash
        queue drained — the block map is back at steady state.  A cluster
        that genuinely cannot repair (capacity lost for good) reaches a
        *stable* non-converged state instead; the loop exits once the
        recovery gauges stop changing, and the result's ``faults``
        section records the finals either way."""
        nn = hog.namenode
        period = hog.config.hdfs.replication_monitor_period
        deadline = sim.now + timeout
        last = None
        stable = 0
        while sim.now < deadline:
            state = (nn.under_replicated_count(),
                     nn.deferred_replication_count(),
                     nn.pending_invalidation_count(),
                     nn.lost_block_count())
            if state[0] == 0 and state[1] == 0 and state[2] == 0:
                return
            stable = stable + 1 if state == last else 0
            last = state
            # ~3 backoff windows with no movement on any gauge = wedged.
            if stable * period > 3 * hog.config.hdfs.replication_retry_backoff:
                return
            sim.run(until=sim.now + period)

    def _phase_timelines(self, phase_bounds: List[tuple]
                         ) -> Optional[Dict[str, dict]]:
        """Slice the probe series into per-phase timelines.

        Each phase gets the samples taken during it (``s0 <= t < s1``;
        the final phase keeps its right boundary), downsampled to the
        spec's ``timeline_max_points``.  ``None`` when probes were off.
        """
        if self.probes is None:
            return None
        max_points = self.spec.obs.timeline_max_points
        out: Dict[str, dict] = {}
        for i, (name, s0, s1) in enumerate(phase_bounds):
            last = i == len(phase_bounds) - 1
            gauges: Dict[str, dict] = {}
            for gname, series in self.probes.series.items():
                sliced = StepSeries(gname)
                for t, v in zip(series.times, series.values):
                    if t < s0 or t > s1 or (t == s1 and not last):
                        continue
                    sliced.record(float(t), float(v))
                if len(sliced) == 0:
                    continue
                times, values = sliced.downsample(max(2, max_points))
                gauges[gname] = {"t": [round(t, 3) for t in times],
                                 "v": values}
            if gauges:
                out[name] = gauges
        return out
