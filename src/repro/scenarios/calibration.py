"""Calibration constants shared by every scenario and experiment.

(The module lives under :mod:`repro.scenarios` so the scenario registry —
which the experiment drivers consume — can use it without an import
cycle; :mod:`repro.experiments.calibration` re-exports it unchanged.)

Per DESIGN.md §5 we do not chase the paper's absolute seconds — our
substrate is a simulator, not the 2012 OSG — but these constants are tuned
so the *shape* of the evaluation holds:

- the Table III cluster lands in the paper's ≈3.9 k-second response band
  on the Table II workload,
- HOG's response-vs-size curve crosses the cluster line near 100 nodes,
- churn (Fig 5 / Table IV) orders response times correctly.

Everything here is shared verbatim between HOG and the baselines, so none
of it biases the comparison.
"""

from __future__ import annotations

from ..grid.site import SitePolicy
from ..net.fabric import FabricConfig
from ..workload.schedule import LoadgenParams

__all__ = [
    "default_loadgen",
    "grid_fabric",
    "cluster_fabric",
    "grid_node_config",
    "stable_policy",
    "default_grid_policy",
    "unstable_policy",
    "PAPER_FIG4_NODE_COUNTS",
    "PAPER_TABLE4",
    "PAPER_CLUSTER_RESPONSE_BAND",
]

#: The HOG node counts sampled in Figure 4's x-axis.
PAPER_FIG4_NODE_COUNTS = (40, 50, 55, 60, 99, 100, 132, 160, 171, 180, 974, 1101)

#: Table IV verbatim: figure panel → (response time s, area node·s).
PAPER_TABLE4 = {"5a": (4396.0, 181020.0),
                "5b": (3896.0, 172360.0),
                "5c": (6235.0, 252455.0)}

#: Figure 4's dashed line (the 100-core cluster) sits in this band.
PAPER_CLUSTER_RESPONSE_BAND = (3000.0, 4500.0)


def default_loadgen() -> LoadgenParams:
    """Loadgen cost model for the Table II workload."""
    return LoadgenParams(
        map_cpu_per_block=70.0,
        reduce_cpu=140.0,
        map_output_ratio=2.0,
        reduce_output_ratio=0.3,
    )


def grid_fabric() -> FabricConfig:
    """The OSG-like network: 1 Gbps NICs, 10 Gbps shared site uplinks,
    40 ms WAN latency, and a 4-RTT per-transfer handshake (HTTP over the
    WAN, §III-B2)."""
    return FabricConfig(
        nic_bandwidth=125e6,
        site_uplink_bandwidth=1250e6,
        intra_site_latency=0.0005,
        inter_site_latency=0.040,
        handshake_rtts=4.0,
    )


def cluster_fabric() -> FabricConfig:
    """The dedicated cluster's LAN (single rack; uplink unused)."""
    return FabricConfig(
        nic_bandwidth=125e6,
        site_uplink_bandwidth=1250e6,
        intra_site_latency=0.0005,
        inter_site_latency=0.040,
    )


def stable_policy() -> SitePolicy:
    """Low-churn grid conditions (Figures 5a/5b): occasional per-node
    preemptions, no bursts."""
    return SitePolicy(preempt_rate=1.0 / 6000.0, burst_rate=0.0,
                      scheduling_delay_mean=30.0)


def default_grid_policy() -> SitePolicy:
    """Typical opportunistic conditions used for the Figure 4 sweep."""
    return SitePolicy(preempt_rate=1.0 / 5000.0, burst_rate=1.0 / 3000.0,
                      burst_fraction=0.15, scheduling_delay_mean=30.0)


def unstable_policy() -> SitePolicy:
    """Heavy churn (Figure 5c): faster per-node preemption plus frequent
    simultaneous-preemption bursts."""
    return SitePolicy(preempt_rate=1.0 / 1500.0, burst_rate=1.0 / 700.0,
                      burst_fraction=0.35, scheduling_delay_mean=30.0)


def grid_node_config():
    """Hardware model of opportunistic grid workers.

    Grid slots are shared, virtualized, or background-loaded in ways a
    dedicated cluster's cores are not; we model an effective per-core
    speed of 0.75-0.85x the Table III cluster's cores.  This constant
    (together with the loadgen costs) places the equivalent-performance
    crossover near the paper's [99, 100] nodes.
    """
    from ..core.config import NodeConfig
    return NodeConfig(speed_min=0.75, speed_max=0.85)
