"""Multiprocessing fan-out for scenario runs.

Workers receive only a **serialized** :class:`~repro.scenarios.spec.ScenarioSpec`
(its JSON form) — never a live simulator or system object — rebuild it
with :meth:`ScenarioSpec.from_json`, run the ordinary
:class:`~repro.scenarios.runner.ScenarioRunner`, and ship the JSON-ready
result dict back to the parent.  Because a run is fully determined by its
spec (seed included) and the engine is hash-seed independent (the
no-set-iteration lint guards this), a parallel sweep's simulation
payloads are byte-identical to the serial ones — the determinism guard
test in ``tests/test_scenarios.py`` asserts exactly that.

Consumers: ``python -m repro.scenarios.run all --parallel N`` and the
scale-sweep benchmark's every-scenario coverage section.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Sequence, Union

from .runner import ScenarioRunner
from .spec import ScenarioSpec

__all__ = ["run_spec_json", "run_specs_parallel"]


def run_spec_json(spec_json: str) -> dict:
    """Worker entry point: run one serialized spec end-to-end.

    Importable at module top level so process pools can resolve it by
    reference; usable inline too (the serial fallback calls it directly).
    """
    spec = ScenarioSpec.from_json(spec_json)
    return ScenarioRunner(spec).run().to_dict()


def run_specs_parallel(specs: Sequence[Union[ScenarioSpec, str]],
                       workers: int) -> List[dict]:
    """Run scenario specs across ``workers`` processes.

    ``specs`` may mix live :class:`ScenarioSpec` objects and pre-serialized
    JSON strings.  Results come back in input order regardless of which
    worker finished first.  ``workers <= 1`` (or a single spec) degrades
    to an in-process serial loop — same code path, no pool overhead.
    """
    payloads = [s.to_json(indent=None) if isinstance(s, ScenarioSpec) else s
                for s in specs]
    if workers <= 1 or len(payloads) <= 1:
        return [run_spec_json(p) for p in payloads]
    with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
        return list(pool.map(run_spec_json, payloads))
