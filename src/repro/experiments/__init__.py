"""Experiment drivers: one module per paper table/figure.

- :mod:`repro.experiments.tables` — Tables I, II, III
- :mod:`repro.experiments.fig4` — equivalent performance sweep
- :mod:`repro.experiments.fig5` — node fluctuation + Table IV
- :mod:`repro.experiments.ablations` — design-choice ablations + HOD
- :mod:`repro.experiments.calibration` — shared constants
- :mod:`repro.experiments.common` — workload runners
"""

from . import ablations, calibration, common, fig4, fig5, tables

__all__ = ["ablations", "calibration", "common", "fig4", "fig5", "tables"]
