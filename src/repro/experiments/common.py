"""Shared experiment machinery: run the Facebook workload on a system.

Both runners follow the §IV-A protocol:

1. stand the system up (for HOG: request N nodes and *wait* until they
   have all joined — "we first configure a given number of nodes that HOG
   will achieve and wait until HOG reaches this number"),
2. upload the input data,
3. replay the 88-job exponential submission schedule,
4. measure the workload response time (first submission → last completion),
   and for HOG the area beneath the node-count curve (Table IV).

The HOG side is a thin consumer of the scenario subsystem: a
:class:`HogRunSettings` is translated into an ad-hoc
:class:`~repro.scenarios.spec.ScenarioSpec` and executed by the unified
:class:`~repro.scenarios.runner.ScenarioRunner` — the setup, phase, and
measurement code lives there, once, shared with every registry scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..baselines.dedicated import DedicatedClusterConfig, DedicatedCluster, table3_config
from ..core.config import NodeConfig
from ..grid.glidein import WrapperConfig
from ..grid.site import GridSiteConfig, SitePolicy, sites_with_policy
from ..hdfs.config import HdfsConfig
from ..mapreduce.config import MRConfig
from ..metrics.report import WorkloadResult
from ..net.fabric import FabricConfig
from ..scenarios.runner import ScenarioRunner, collect_result, drive_workload
from ..scenarios.spec import ClusterSpec, FaultSpec, ScenarioSpec, WorkloadSpec
from ..sim.engine import Simulator
from ..workload.schedule import LoadgenParams, build_facebook_schedule
from . import calibration

__all__ = ["HogRunSettings", "run_facebook_on_hog", "run_facebook_on_cluster",
           "paper_sites_with_policy", "settings_to_spec"]


def paper_sites_with_policy(policy: SitePolicy, total_capacity: int,
                            n_sites: int = 5) -> List[GridSiteConfig]:
    """Five OSG-like sites sharing one policy, sized so the grid can hold
    ``total_capacity`` workers with headroom for churn replacement."""
    return sites_with_policy(policy, total_capacity, n_sites)


@dataclass
class HogRunSettings:
    """Everything that varies between HOG experiment runs."""

    n_nodes: int = 55
    seed: int = 0
    policy: SitePolicy = field(default_factory=calibration.default_grid_policy)
    loadgen: LoadgenParams = field(default_factory=calibration.default_loadgen)
    #: Workload scale in (0, 1]: fraction of Table II's per-bin job counts.
    scale: float = 1.0
    hdfs: Optional[HdfsConfig] = None
    mr: Optional[MRConfig] = None
    wrapper: Optional[WrapperConfig] = None
    fabric: Optional["FabricConfig"] = None
    node: Optional[NodeConfig] = None
    site_awareness: bool = True
    n_sites: int = 5
    #: Fraction of ``n_nodes`` that must be *simultaneously* running before
    #: the workload starts.  1.0 reproduces the paper's strict §IV-A
    #: protocol; under churn the running count hovers just below the target
    #: (replacements are always in flight re-downloading the worker
    #: package), so large-scale sweeps use e.g. 0.98 to avoid waiting
    #: simulated hours for a churn lull.
    ramp_fraction: float = 1.0
    #: Cap on simulated seconds for safety.
    timeout: float = 400_000.0


def settings_to_spec(settings: HogRunSettings,
                     name: str = "adhoc") -> ScenarioSpec:
    """Translate experiment settings into an (unregistered) scenario spec."""
    return ScenarioSpec(
        name=name,
        cluster=ClusterSpec(
            n_nodes=settings.n_nodes,
            n_sites=settings.n_sites,
            site_awareness=settings.site_awareness,
            ramp_fraction=settings.ramp_fraction,
            node=settings.node,
            fabric=settings.fabric,
            hdfs=settings.hdfs,
            mr=settings.mr,
            wrapper=settings.wrapper,
        ),
        workload=WorkloadSpec(loadgen=settings.loadgen, scale=settings.scale),
        faults=FaultSpec(policy=settings.policy),
        scheduler=(settings.mr.scheduler if settings.mr is not None
                   else "fifo"),
        seed=settings.seed,
        timeout=settings.timeout,
    )


def run_facebook_on_hog(settings: HogRunSettings,
                        return_system: bool = False):
    """Run the Table II workload on a HOG deployment.

    Returns a :class:`WorkloadResult` (and optionally the live
    :class:`~repro.core.hog.HOGSystem` for inspection)."""
    runner = ScenarioRunner(settings_to_spec(settings))
    runner.run()
    if return_system:
        return runner.workload, runner.system
    return runner.workload


def run_facebook_on_cluster(seed: int = 0, scale: float = 1.0,
                            loadgen: Optional[LoadgenParams] = None,
                            cluster_config: Optional[DedicatedClusterConfig] = None,
                            timeout: float = 400_000.0,
                            return_system: bool = False):
    """Run the Table II workload on the Table III dedicated cluster."""
    sim = Simulator()
    cfg = cluster_config or table3_config(fabric=calibration.cluster_fabric())
    cluster = DedicatedCluster(sim, cfg)
    sim.run(until=10.0)  # let daemons register
    rng = np.random.default_rng(seed + 77)
    schedule = build_facebook_schedule(
        rng, loadgen or calibration.default_loadgen(), scale=scale)
    for input_file, n_blocks in schedule.inputs.items():
        cluster.preload_input(input_file, n_blocks)

    jobs: list = []
    start = sim.now
    drive_workload(sim, cluster, schedule, jobs, timeout)
    end = sim.now
    result = collect_result(
        f"Cluster({cfg.total_map_slots} cores)", cfg.total_nodes, jobs,
        start, end, None, cluster.jobtracker)
    if return_system:
        return result, cluster
    return result
