"""Shared experiment machinery: run the Facebook workload on a system.

Both runners follow the §IV-A protocol:

1. stand the system up (for HOG: request N nodes and *wait* until they
   have all joined — "we first configure a given number of nodes that HOG
   will achieve and wait until HOG reaches this number"),
2. upload the input data,
3. replay the 88-job exponential submission schedule,
4. measure the workload response time (first submission → last completion),
   and for HOG the area beneath the node-count curve (Table IV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines.dedicated import DedicatedCluster, DedicatedClusterConfig, table3_config
from ..core.config import HOGConfig, NodeConfig
from ..core.hog import HOGSystem
from ..grid.glidein import WrapperConfig
from ..grid.site import GridSiteConfig, SitePolicy
from ..hdfs.config import HdfsConfig, hog_config
from ..mapreduce.config import MRConfig, hog_mr_config
from ..metrics.report import WorkloadResult
from ..net.fabric import FabricConfig
from ..sim.engine import Simulator
from ..sim.monitor import StepSeries
from ..workload.schedule import (
    LoadgenParams,
    SubmissionSchedule,
    build_facebook_schedule,
)
from . import calibration

__all__ = ["HogRunSettings", "run_facebook_on_hog", "run_facebook_on_cluster",
           "paper_sites_with_policy"]


def paper_sites_with_policy(policy: SitePolicy, total_capacity: int,
                            n_sites: int = 5) -> List[GridSiteConfig]:
    """Five OSG-like sites sharing one policy, sized so the grid can hold
    ``total_capacity`` workers with headroom for churn replacement."""
    per_site = math.ceil(total_capacity * 1.3 / n_sites)
    domains = ["fnal.gov", "fnalwc1.gov", "ucsd.edu", "aglt2.org", "mit.edu"]
    names = ["FNAL_FERMIGRID", "USCMS-FNAL-WC1", "UCSDT2", "AGLT2", "MIT_CMS"]
    return [GridSiteConfig(names[i], domains[i], per_site, policy)
            for i in range(n_sites)]


@dataclass
class HogRunSettings:
    """Everything that varies between HOG experiment runs."""

    n_nodes: int = 55
    seed: int = 0
    policy: SitePolicy = field(default_factory=calibration.default_grid_policy)
    loadgen: LoadgenParams = field(default_factory=calibration.default_loadgen)
    #: Workload scale in (0, 1]: fraction of Table II's per-bin job counts.
    scale: float = 1.0
    hdfs: Optional[HdfsConfig] = None
    mr: Optional[MRConfig] = None
    wrapper: Optional[WrapperConfig] = None
    fabric: Optional["FabricConfig"] = None
    node: Optional[NodeConfig] = None
    site_awareness: bool = True
    n_sites: int = 5
    #: Fraction of ``n_nodes`` that must be *simultaneously* running before
    #: the workload starts.  1.0 reproduces the paper's strict §IV-A
    #: protocol; under churn the running count hovers just below the target
    #: (replacements are always in flight re-downloading the worker
    #: package), so large-scale sweeps use e.g. 0.98 to avoid waiting
    #: simulated hours for a churn lull.
    ramp_fraction: float = 1.0
    #: Cap on simulated seconds for safety.
    timeout: float = 400_000.0


def _submission_process(sim, system, schedule: SubmissionSchedule, jobs: list):
    """Replay the schedule: sleep each exponential gap, submit; then wait
    (event-driven) for every submitted job to finish."""
    last = 0.0
    for item in schedule.jobs:
        gap = item.submit_time - last
        if gap > 0:
            yield sim.timeout(gap)
        last = item.submit_time
        jobs.append((system.submit(item.spec), item.bin_id))
    if jobs:
        yield system.jobtracker.when_jobs_done([j for j, _ in jobs])


def _drive_workload(sim, system, schedule: SubmissionSchedule, jobs: list,
                    timeout: float) -> None:
    """Run the submission replay to completion (or ``timeout`` sim-seconds).

    The driver process finishes at the exact instant the last job does;
    the engine advances straight through real events instead of polling
    job states every 25 s."""
    driver = sim.process(_submission_process(sim, system, schedule, jobs),
                         name="workload-submitter")
    sim.run_until(driver, sim.now + timeout)


def _collect_result(system_name: str, nodes: int, jobs, start: float,
                    end: float, series: Optional[StepSeries],
                    jobtracker) -> WorkloadResult:
    bin_responses: Dict[int, List[float]] = {}
    failed = 0
    locality = {"data_local": 0, "site_local": 0, "remote": 0}
    for job, bin_id in jobs:
        if job.response_time is None or job.status != "succeeded":
            failed += 1
            continue
        bin_responses.setdefault(bin_id, []).append(job.response_time)
        for k, v in job.locality_counters.items():
            locality[k] += v
    area = series.integrate(start, end) if series is not None else None
    return WorkloadResult(
        system=system_name, nodes=nodes, start_time=start, end_time=end,
        bin_responses=bin_responses, failed_jobs=failed, node_area=area,
        locality=locality, counters=jobtracker.counters.as_dict())


def run_facebook_on_hog(settings: HogRunSettings,
                        return_system: bool = False):
    """Run the Table II workload on a HOG deployment.

    Returns a :class:`WorkloadResult` (and optionally the live
    :class:`HOGSystem` for inspection)."""
    sim = Simulator()
    cfg = HOGConfig(
        sites=paper_sites_with_policy(settings.policy, settings.n_nodes,
                                      settings.n_sites),
        hdfs=settings.hdfs or hog_config(),
        mr=settings.mr or hog_mr_config(),
        fabric=settings.fabric or calibration.grid_fabric(),
        wrapper=settings.wrapper or WrapperConfig(),
        node=settings.node or calibration.grid_node_config(),
        site_awareness=settings.site_awareness,
        seed=settings.seed,
    )
    hog = HOGSystem(sim, cfg)
    hog.start(settings.n_nodes)
    ramp_target = max(1, math.ceil(settings.n_nodes * settings.ramp_fraction))
    hog.run_until_nodes(ramp_target, timeout=settings.timeout)

    rng = np.random.default_rng(settings.seed + 77)
    schedule = build_facebook_schedule(rng, settings.loadgen,
                                       scale=settings.scale)
    for input_file, n_blocks in schedule.inputs.items():
        hog.preload_input(input_file, n_blocks)

    jobs: list = []
    start = sim.now
    _drive_workload(sim, hog, schedule, jobs, settings.timeout)
    end = sim.now
    result = _collect_result("HOG", settings.n_nodes, jobs, start, end,
                             hog.believed_series, hog.jobtracker)
    if return_system:
        return result, hog
    return result


def run_facebook_on_cluster(seed: int = 0, scale: float = 1.0,
                            loadgen: Optional[LoadgenParams] = None,
                            cluster_config: Optional[DedicatedClusterConfig] = None,
                            timeout: float = 400_000.0,
                            return_system: bool = False):
    """Run the Table II workload on the Table III dedicated cluster."""
    sim = Simulator()
    cfg = cluster_config or table3_config(fabric=calibration.cluster_fabric())
    cluster = DedicatedCluster(sim, cfg)
    sim.run(until=10.0)  # let daemons register

    rng = np.random.default_rng(seed + 77)
    schedule = build_facebook_schedule(
        rng, loadgen or calibration.default_loadgen(), scale=scale)
    for input_file, n_blocks in schedule.inputs.items():
        cluster.preload_input(input_file, n_blocks)

    jobs: list = []
    start = sim.now
    _drive_workload(sim, cluster, schedule, jobs, timeout)
    end = sim.now
    result = _collect_result(
        f"Cluster({cfg.total_map_slots} cores)", cfg.total_nodes, jobs,
        start, end, None, cluster.jobtracker)
    if return_system:
        return result, cluster
    return result
