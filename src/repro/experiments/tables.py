"""Tables I, II, and III — the static workload/configuration tables.

These are regenerated from the implementation (not hard-coded prints): the
workload generator's bin definitions produce Tables I and II, and the
dedicated-cluster baseline's configuration produces Table III.  The
benchmark assertions check them against the paper's published values.
"""

from __future__ import annotations

from typing import List

from ..baselines.dedicated import DedicatedClusterConfig, table3_config
from ..metrics.report import format_table
from ..workload.facebook import FACEBOOK_BINS, truncated_bins

__all__ = ["render_table1", "render_table2", "render_table3"]


def render_table1() -> str:
    """Table I: the Facebook production workload bins."""
    rows = []
    for b in FACEBOOK_BINS:
        rows.append([b.bin_id, b.maps_label, f"{b.percent_at_facebook:.0f}%",
                     b.maps_in_benchmark, b.jobs_in_benchmark])
    return format_table(
        ["Bin", "#Maps at Facebook", "%Jobs", "#Maps in Benchmark",
         "# of jobs in Benchmark"],
        rows, title="Table I: Facebook production workload")


def render_table2() -> str:
    """Table II: the truncated six-bin workload with reduce counts."""
    rows = [[b.bin_id, b.maps_in_benchmark, b.reduces_in_benchmark]
            for b in truncated_bins()]
    return format_table(["Bin", "Map Tasks", "Reduce Tasks"], rows,
                        title="Table II: truncated workload for this paper")


def render_table3(cfg: DedicatedClusterConfig = None) -> str:
    """Table III: the dedicated MapReduce cluster configuration."""
    cfg = cfg or table3_config()
    rows = [["Master node", 1, "masters only (Namenode + JobTracker)"]]
    for i, g in enumerate(cfg.groups):
        rows.append([f"Slave nodes-{'I' * (i + 1)}", g.count,
                     f"{g.map_slots} map and {g.reduce_slots} reduce "
                     f"slots per node"])
    table = format_table(["Nodes", "Quantity", "Hadoop configuration"], rows,
                         title="Table III: dedicated MapReduce cluster")
    totals = (f"\nTotals: {cfg.total_nodes} workers, "
              f"{cfg.total_map_slots} map slots (= cores), "
              f"{cfg.total_reduce_slots} reduce slots")
    return table + totals
