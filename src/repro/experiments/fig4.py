"""Figure 4 — "HOG vs. Cluster Equivalent Performance".

The paper runs the Table II workload on HOG at 12 node counts (3 runs
each) and on the 100-core Table III cluster, then reads off where the HOG
curve crosses the cluster's flat line: "the solid line crosses the dashed
line when the HOG has 99 to 100 nodes.  We see that the HOG system needs
[99,100] nodes to achieve equivalent performance."

This driver regenerates the full sweep.  Checked shape properties:

- the cluster's response sits in the paper's band,
- HOG's response broadly decreases with node count (churn makes it
  non-monotonic, as the paper observes),
- the crossover falls near 100 nodes,
- diminishing returns at the 974/1101-node scale (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.report import format_table
from ..scenarios import ScenarioRunner, registry
from . import calibration
from .common import run_facebook_on_cluster

__all__ = ["Fig4Point", "Fig4Result", "run_fig4", "find_crossover",
           "DEFAULT_NODE_COUNTS", "QUICK_NODE_COUNTS"]

#: The paper's exact x-axis.
DEFAULT_NODE_COUNTS: Tuple[int, ...] = calibration.PAPER_FIG4_NODE_COUNTS
#: Subset used by the default benchmark run (wall-clock friendly; the two
#: ~1000-node points take minutes each and are enabled with REPRO_FULL=1).
QUICK_NODE_COUNTS: Tuple[int, ...] = (40, 55, 100, 160, 200)


@dataclass
class Fig4Point:
    """All runs at one HOG size."""

    nodes: int
    responses: List[float]
    areas: List[float]

    @property
    def mean_response(self) -> float:
        """Mean workload response over the runs."""
        return float(np.mean(self.responses))

    @property
    def min_response(self) -> float:
        """Fastest run at this size."""
        return float(min(self.responses))

    @property
    def max_response(self) -> float:
        """Slowest run at this size."""
        return float(max(self.responses))


@dataclass
class Fig4Result:
    """The regenerated figure."""

    cluster_response: float
    points: List[Fig4Point]
    runs_per_point: int

    def crossover(self) -> Optional[Tuple[int, int]]:
        """Node-count bracket where HOG first beats the cluster."""
        return find_crossover(self.points, self.cluster_response)

    def to_table(self) -> str:
        """Figure 4 as text: one row per node count."""
        rows = []
        for p in self.points:
            rows.append([p.nodes, f"{p.mean_response:.0f}",
                         f"{p.min_response:.0f}", f"{p.max_response:.0f}",
                         f"{p.mean_response / self.cluster_response:.2f}x"])
        table = format_table(
            ["HOG nodes", "mean resp (s)", "min", "max", "vs cluster"],
            rows,
            title=(f"Figure 4: HOG vs Cluster (cluster response = "
                   f"{self.cluster_response:.0f}s, {self.runs_per_point} "
                   f"run(s)/point)"))
        cross = self.crossover()
        note = (f"\nEquivalent performance bracket: {cross[0]}..{cross[1]} nodes"
                if cross else "\nNo crossover within the sweep")
        return table + note


def find_crossover(points: Sequence[Fig4Point],
                   cluster_response: float) -> Optional[Tuple[int, int]]:
    """First adjacent node-count pair where HOG goes from slower than the
    cluster to at least as fast (the paper's [99,100] readout)."""
    ordered = sorted(points, key=lambda p: p.nodes)
    if not ordered:
        return None
    if ordered[0].mean_response <= cluster_response:
        return (0, ordered[0].nodes)
    for a, b in zip(ordered, ordered[1:]):
        if a.mean_response > cluster_response >= b.mean_response:
            return (a.nodes, b.nodes)
    return None


def run_fig4(node_counts: Sequence[int] = QUICK_NODE_COUNTS,
             runs_per_point: int = 1,
             scale: float = 1.0,
             seed: int = 0,
             policy=None) -> Fig4Result:
    """Regenerate Figure 4.

    ``runs_per_point=3`` matches the paper ("We performed 3 runs at each
    sampling point"); the quick default uses one.

    Each HOG point is the registry's ``baseline`` scenario at the wanted
    node count, run through the unified
    :class:`~repro.scenarios.runner.ScenarioRunner` — this driver carries
    no setup code of its own.
    """
    loadgen = calibration.default_loadgen()
    cluster = run_facebook_on_cluster(seed=seed, scale=scale, loadgen=loadgen)
    points: List[Fig4Point] = []
    for n in node_counts:
        responses, areas = [], []
        for r in range(runs_per_point):
            spec = registry.build("baseline", n_nodes=n, scale=scale,
                                  seed=seed + 1000 * r + n)
            spec.workload.loadgen = loadgen
            if policy is not None:
                spec.faults.policy = policy
            runner = ScenarioRunner(spec)
            runner.run()
            responses.append(runner.workload.response_time)
            areas.append(runner.workload.node_area or 0.0)
        points.append(Fig4Point(n, responses, areas))
    return Fig4Result(cluster.response_time, points, runs_per_point)
