"""Command-line entry point for the experiment drivers.

Usage::

    python -m repro.experiments.run tables
    python -m repro.experiments.run fig4  [--scale 0.25] [--nodes 40 100 200]
    python -m repro.experiments.run fig5  [--scale 0.25] [--nodes 55]
    python -m repro.experiments.run table4
    python -m repro.experiments.run hod
    python -m repro.experiments.run ablations [--which replication ...]

Each subcommand regenerates the corresponding paper table/figure and
prints it.  Scale < 1 shrinks the 88-job workload proportionally.
"""

from __future__ import annotations

import argparse
import sys

from ..metrics.report import format_table
from . import ablations, fig4, fig5, tables


def _cmd_tables(_args) -> None:
    print(tables.render_table1())
    print()
    print(tables.render_table2())
    print()
    print(tables.render_table3())


def _cmd_fig4(args) -> None:
    result = fig4.run_fig4(node_counts=tuple(args.nodes),
                           runs_per_point=args.runs, scale=args.scale,
                           seed=args.seed)
    print(result.to_table())


def _cmd_fig5(args) -> None:
    result = fig5.run_fig5(target_nodes=args.nodes[0], scale=args.scale)
    for run in result.runs:
        times, values = run.series
        print(f"run {run.label} ({'stable' if run.stable else 'unstable'}): "
              f"response={run.response_time:.0f}s area={run.area:.0f} "
              f"mean_nodes={run.mean_nodes:.1f}")
    print()
    print(result.table4())


def _cmd_table4(args) -> None:
    result = fig5.run_fig5(target_nodes=args.nodes[0], scale=args.scale)
    print(result.table4())


def _cmd_hod(args) -> None:
    print(ablations.compare_hod(n_nodes=args.nodes[0],
                                scale=min(args.scale, 0.25)).to_table())


def _cmd_ablations(args) -> None:
    scale = min(args.scale, 0.25)
    which = args.which or ["replication", "detection", "site", "zombie",
                           "copies", "schedulers"]
    if "replication" in which:
        res = ablations.ablate_replication(scale=scale)
        rows = [[f, f"{r.response_time:.0f}", r.failed_jobs]
                for f, r in sorted(res.items())]
        print(format_table(["replication", "response (s)", "failed"], rows,
                           title="Ablation: replication factor"))
    if "detection" in which:
        res = ablations.ablate_failure_detection(scale=scale)
        rows = [[f"{t:.0f}s", f"{r.response_time:.0f}",
                 r.counters.get("trackers_lost", 0)]
                for t, r in sorted(res.items())]
        print(format_table(["timeout", "response (s)", "trackers lost"],
                           rows, title="Ablation: failure detection"))
    if "site" in which:
        res = ablations.ablate_site_awareness(scale=scale)
        rows = [[on, f"{r.response_time:.0f}", r.locality["data_local"]]
                for on, r in sorted(res.items(), reverse=True)]
        print(format_table(["awareness", "response (s)", "data-local maps"],
                           rows, title="Ablation: site awareness"))
    if "zombie" in which:
        res = ablations.ablate_zombie_fix(scale=scale)
        rows = [[on, f"{r.response_time:.0f}",
                 r.counters.get("attempts_failed", 0)]
                for on, r in sorted(res.items(), reverse=True)]
        print(format_table(["fix", "response (s)", "attempts failed"], rows,
                           title="Ablation: zombie fix"))
    if "copies" in which:
        res = ablations.ablate_speculative_copies(scale=scale)
        rows = [[n, f"{r.response_time:.0f}",
                 r.counters.get("speculative_attempts", 0)]
                for n, r in sorted(res.items())]
        print(format_table(["max copies", "response (s)", "backups"], rows,
                           title="Ablation: N-copy execution (§VI)"))
    if "schedulers" in which:
        res = ablations.compare_schedulers(scale=scale)
        rows = []
        for name, r in res.items():
            total = sum(r.locality.values()) or 1
            rows.append([name, f"{r.response_time:.0f}",
                         f"{100 * r.locality['data_local'] / total:.0f}%"])
        print(format_table(["scheduler", "response (s)", "data-local"], rows,
                           title="Scheduler comparison"))


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="repro.experiments.run",
                                     description=__doc__)
    parser.add_argument("command",
                        choices=["tables", "fig4", "fig5", "table4", "hod",
                                 "ablations"])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--runs", type=int, default=1)
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=[40, 55, 100, 160, 200])
    parser.add_argument("--which", nargs="*", default=None,
                        help="subset of ablations to run")
    args = parser.parse_args(argv)
    {"tables": _cmd_tables, "fig4": _cmd_fig4, "fig5": _cmd_fig5,
     "table4": _cmd_table4, "hod": _cmd_hod,
     "ablations": _cmd_ablations}[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
