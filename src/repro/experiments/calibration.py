"""Calibration constants — re-exported from :mod:`repro.scenarios.calibration`.

The constants moved next to the scenario registry (which experiment
drivers are thin consumers of); this shim keeps the historical import
path working.
"""

from __future__ import annotations

from ..scenarios.calibration import (  # noqa: F401
    PAPER_CLUSTER_RESPONSE_BAND,
    PAPER_FIG4_NODE_COUNTS,
    PAPER_TABLE4,
    cluster_fabric,
    default_grid_policy,
    default_loadgen,
    grid_fabric,
    grid_node_config,
    stable_policy,
    unstable_policy,
)

__all__ = [
    "default_loadgen",
    "grid_fabric",
    "cluster_fabric",
    "grid_node_config",
    "stable_policy",
    "default_grid_policy",
    "unstable_policy",
    "PAPER_FIG4_NODE_COUNTS",
    "PAPER_TABLE4",
    "PAPER_CLUSTER_RESPONSE_BAND",
]
