"""Ablations of HOG's design choices (DESIGN.md per-experiment index).

Each function isolates one mechanism the paper motivates:

- **replication factor** (§III-B1): 3 vs the chosen 10 ("Too many replicas
  would impose extra replication overhead ... Too few would cause frequent
  data failures");
- **failure detection** (§III-B): 30 s vs stock ~15 min timeouts;
- **site awareness** (§III-B1): on vs off;
- **zombie fix** (§IV-D1): disk self-check + in-tree daemons vs the
  double-fork bug;
- **speculative copies** (§VI future work): the configurable N-copies
  execution the paper proposes;
- **HOD** (§V): per-job cluster reconstruction vs HOG's persistent
  platform.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from ..baselines.hod import HODConfig, HODRunner
from ..grid.glidein import WrapperConfig
from ..grid.site import SitePolicy
from ..hdfs.config import hog_config
from ..mapreduce.config import hog_mr_config
from ..metrics.report import WorkloadResult, format_table
from ..workload.schedule import build_facebook_schedule
from . import calibration
from .common import HogRunSettings, run_facebook_on_hog

__all__ = [
    "ablate_replication",
    "ablate_failure_detection",
    "ablate_site_awareness",
    "ablate_zombie_fix",
    "ablate_speculative_copies",
    "compare_hod",
]


def _base_settings(n_nodes: int, seed: int, policy: Optional[SitePolicy],
                   scale: float) -> HogRunSettings:
    return HogRunSettings(
        n_nodes=n_nodes, seed=seed,
        policy=policy or calibration.unstable_policy(),
        loadgen=calibration.default_loadgen(), scale=scale)


def ablate_replication(factors=(3, 10), n_nodes: int = 55, seed: int = 5,
                       scale: float = 1.0,
                       policy: Optional[SitePolicy] = None) -> Dict[int, WorkloadResult]:
    """Workload response and data-availability counters vs replication
    factor, under churn."""
    out: Dict[int, WorkloadResult] = {}
    for factor in factors:
        settings = _base_settings(n_nodes, seed, policy, scale)
        settings.hdfs = hog_config(replication=factor)
        out[factor] = run_facebook_on_hog(settings)
    return out


def ablate_failure_detection(timeouts=(30.0, 900.0), n_nodes: int = 55,
                             seed: int = 6, scale: float = 1.0,
                             policy: Optional[SitePolicy] = None) -> Dict[float, WorkloadResult]:
    """HOG's 30 s heartbeat timeout vs the stock ~15 min value, under churn.

    With slow detection, blocks on dead nodes are not re-replicated and
    lost tasks sit unnoticed until expiry."""
    out: Dict[float, WorkloadResult] = {}
    for timeout in timeouts:
        settings = _base_settings(n_nodes, seed, policy, scale)
        settings.hdfs = hog_config(heartbeat_timeout=timeout)
        settings.mr = hog_mr_config(tracker_expiry=timeout)
        out[timeout] = run_facebook_on_hog(settings)
    return out


def ablate_site_awareness(n_nodes: int = 55, seed: int = 7, scale: float = 1.0,
                          policy: Optional[SitePolicy] = None) -> Dict[bool, WorkloadResult]:
    """Site awareness on vs off.

    Off = every node in one flat domain: placement cannot spread replicas
    across sites (burst preemptions can take out all copies) and the
    scheduler cannot prefer nearby data."""
    out: Dict[bool, WorkloadResult] = {}
    for enabled in (True, False):
        settings = _base_settings(n_nodes, seed, policy, scale)
        settings.site_awareness = enabled
        out[enabled] = run_facebook_on_hog(settings)
    return out


def ablate_zombie_fix(n_nodes: int = 55, seed: int = 8, scale: float = 1.0,
                      policy: Optional[SitePolicy] = None) -> Dict[bool, WorkloadResult]:
    """The §IV-D1 fix on vs off.

    Off reproduces the first-iteration HOG: preempted nodes leave zombie
    daemons that keep heartbeating, eat task attempts, and pin phantom
    replicas.  (With the fix off we also disable the datanode disk
    self-check, matching the original Datanode.java.)"""
    out: Dict[bool, WorkloadResult] = {}
    for fixed in (True, False):
        settings = _base_settings(n_nodes, seed, policy, scale)
        settings.wrapper = WrapperConfig(zombie_fix=fixed)
        settings.hdfs = hog_config(
            disk_check_interval=180.0 if fixed else None)
        out[fixed] = run_facebook_on_hog(settings)
    return out


def ablate_speculative_copies(copies=(1, 2, 3), n_nodes: int = 55,
                              seed: int = 9, scale: float = 1.0,
                              policy: Optional[SitePolicy] = None) -> Dict[int, WorkloadResult]:
    """§VI future work: "we will make all tasks have configurable number
    of copies running in the HOG and take the fastest as the result."

    ``copies=1`` disables speculation; 2 is stock Hadoop; ≥3 is the
    proposed extension."""
    out: Dict[int, WorkloadResult] = {}
    for n_copies in copies:
        settings = _base_settings(n_nodes, seed, policy, scale)
        settings.mr = hog_mr_config(
            speculative_execution=(n_copies > 1),
            max_task_copies=max(1, n_copies))
        out[n_copies] = run_facebook_on_hog(settings)
    return out


@dataclass
class HodComparison:
    """HOG vs HOD on the same job mix (§V)."""

    hog_response: float
    hod_total_response: float
    hod_mean_overhead_fraction: float
    n_jobs: int

    def to_table(self) -> str:
        """Render the comparison as a report table."""
        rows = [
            ["HOG (persistent platform)", f"{self.hog_response:.0f}", "-"],
            ["HOD (per-job reconstruction)", f"{self.hod_total_response:.0f}",
             f"{100 * self.hod_mean_overhead_fraction:.0f}%"],
        ]
        return format_table(
            ["System", "workload response (s)", "mean overhead"],
            rows, title=f"HOG vs HOD on {self.n_jobs} jobs (§V)")


def compare_hod(n_nodes: int = 55, seed: int = 10, scale: float = 0.25,
                hod_config: Optional[HODConfig] = None) -> HodComparison:
    """Run the same (scaled) job mix on HOG and on HOD.

    HOD requests run back-to-back (its head node and cluster are rebuilt
    per request), so its workload response is the sum of per-request
    responses beyond the submission schedule."""
    settings = _base_settings(n_nodes, seed, calibration.stable_policy(), scale)
    hog_result = run_facebook_on_hog(settings)

    rng = np.random.default_rng(seed + 77)
    schedule = build_facebook_schedule(rng, calibration.default_loadgen(),
                                       scale=scale)
    runner = HODRunner(hod_config or HODConfig(nodes_per_request=n_nodes,
                                               map_slots_per_node=1,
                                               reduce_slots_per_node=1),
                       seed=seed)
    results = runner.run_schedule([j.spec for j in schedule.jobs])
    # HOD requests execute serially per user; workload response is bounded
    # below by the later of (submission time, previous completions).
    t = 0.0
    for item, res in zip(schedule.jobs, results):
        t = max(t, item.submit_time) + res.response_time
    overhead = float(np.mean([r.overhead_fraction for r in results]))
    return HodComparison(
        hog_response=hog_result.response_time,
        hod_total_response=t,
        hod_mean_overhead_fraction=overhead,
        n_jobs=len(results))


def compare_schedulers(n_nodes: int = 40, seed: int = 12, scale: float = 0.25,
                       policy: Optional[SitePolicy] = None) -> Dict[str, WorkloadResult]:
    """FIFO (HOG's scheduler, §III-B2) vs delay scheduling [3] vs
    matchmaking [20] on the same workload.

    The comparison of interest is map-launch *locality* (and, secondarily,
    response time): the alternatives trade a little waiting for a lot of
    locality when replication is low."""
    from ..hdfs.config import hog_config as _hog_config
    from ..mapreduce.delay_scheduler import DelayScheduler
    from ..mapreduce.matchmaking import MatchmakingScheduler
    from ..mapreduce.scheduler import FifoScheduler

    factories = {"fifo": FifoScheduler, "delay": DelayScheduler,
                 "matchmaking": MatchmakingScheduler}
    out: Dict[str, WorkloadResult] = {}
    for name, factory in factories.items():
        settings = _base_settings(n_nodes, seed, policy or
                                  calibration.stable_policy(), scale)
        # Low replication makes locality a real contest (10x replication
        # makes every scheduler look perfect).
        settings.hdfs = _hog_config(replication=2)
        settings.mr = hog_mr_config(scheduler=name)
        out[name] = run_facebook_on_hog(settings)
    return out
