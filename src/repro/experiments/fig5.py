"""Figure 5 + Table IV — node fluctuation at 55 nodes.

The paper examines "three executions of the HOG system with 55 nodes",
plotting the available-node count during the workload (Figure 5a/5b/5c)
and integrating the "area which is beneath the curve" (Table IV):

=======  =============  =======
Figure   Response time  Area
=======  =============  =======
5a       4396           181020
5b       3896           172360
5c       6235           252455
=======  =============  =======

The reproduced claim: "the more node fluctuation, the longer response we
will get for a given workload" — the unstable run (5c) has the longest
response, and among comparable runs the one with less area under the curve
(fewer node-seconds actually delivered, 5a vs 5b) is slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..grid.site import SitePolicy
from ..metrics.report import format_table
from ..scenarios import ScenarioRunner, registry
from ..sim.monitor import StepSeries
from . import calibration

__all__ = ["Fig5Run", "Fig5Result", "run_fig5"]


@dataclass
class Fig5Run:
    """One 55-node execution."""

    label: str
    seed: int
    stable: bool
    response_time: float
    area: float
    #: (times, node counts) of the believed-node series over the run.
    series: Tuple[np.ndarray, np.ndarray]

    @property
    def mean_nodes(self) -> float:
        """Time-averaged node count (area / response)."""
        return self.area / self.response_time if self.response_time else 0.0


@dataclass
class Fig5Result:
    """The three runs plus the Table IV readout."""

    runs: List[Fig5Run]
    target_nodes: int

    def table4(self) -> str:
        """Regenerate Table IV."""
        rows = [[r.label, f"{r.response_time:.0f}", f"{r.area:.0f}",
                 f"{r.mean_nodes:.1f}"]
                for r in self.runs]
        return format_table(
            ["Run", "Response Time (s)", "Area (node*s)", "mean nodes"],
            rows, title=f"Table IV: area beneath curves ({self.target_nodes}"
                        " max nodes)")

    def unstable_is_slowest(self) -> bool:
        """The paper's causal claim: the unstable run takes longest."""
        unstable = [r for r in self.runs if not r.stable]
        stable = [r for r in self.runs if r.stable]
        if not unstable or not stable:
            return False
        return min(u.response_time for u in unstable) > \
            max(s.response_time for s in stable)


def run_fig5(target_nodes: int = 55,
             scale: float = 1.0,
             seeds: Tuple[int, int, int] = (11, 12, 13),
             stable_policy: Optional[SitePolicy] = None,
             unstable_policy: Optional[SitePolicy] = None) -> Fig5Result:
    """Regenerate Figure 5's three executions (a/b stable, c unstable).

    Every run is the registry's ``baseline`` scenario with the fault
    policy swapped (stable for 5a/5b, unstable for 5c), executed by the
    unified :class:`~repro.scenarios.runner.ScenarioRunner`."""
    stable_policy = stable_policy or calibration.stable_policy()
    unstable_policy = unstable_policy or calibration.unstable_policy()
    plan = [("5a", seeds[0], True, stable_policy),
            ("5b", seeds[1], True, stable_policy),
            ("5c", seeds[2], False, unstable_policy)]
    runs: List[Fig5Run] = []
    for label, seed, stable, policy in plan:
        spec = registry.build("baseline", n_nodes=target_nodes, scale=scale,
                              seed=seed)
        spec.name = f"fig5-{label}"
        spec.faults.policy = policy
        runner = ScenarioRunner(spec)
        runner.run()
        result, hog = runner.workload, runner.system
        times, values = hog.believed_series.as_arrays()
        window = (times >= result.start_time) & (times <= result.end_time)
        runs.append(Fig5Run(
            label=label, seed=seed, stable=stable,
            response_time=result.response_time,
            area=result.node_area or 0.0,
            series=(times[window], values[window])))
    return Fig5Result(runs, target_nodes)
