"""Per-node local disk: capacity accounting and timed, shared-bandwidth I/O.

Two aspects matter for the paper:

- **Capacity** — map intermediate output is kept on local disk until the
  whole job finishes; with a slow WAN shuffle this accumulates and nodes
  fail with out-of-disk errors (§IV-D2 "Disk Overflow").  The disk tracks
  usage per label (``hdfs``, ``intermediate``, ...) so experiments can
  attribute overflows.
- **Availability** — preemption at a site deletes the job's working
  directory; a zombie daemon's subsequent I/O fails.  The paper's fix has
  the datanode re-check the working directory every 3 minutes by writing a
  small file and reading it back (§IV-D1).  :meth:`Disk.wipe` and
  :meth:`Disk.probe` model exactly this.

Concurrent reads (and, separately, writes) share the channel bandwidth
equally.  The sharing itself is delegated to the unified max-min core in
:mod:`repro.sim.channel`: each I/O direction is one
:class:`~repro.sim.channel.Constraint` on a :class:`~repro.sim.channel.FairQueue`.
A disk created with the *fabric's* queue (``channel=fabric.channel``)
exposes :attr:`Disk.read_constraint` / :attr:`Disk.write_constraint` so
streaming transfers (shuffle serves, HDFS reads, replication pipelines)
can be jointly rate-limited by disk and network at once.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.channel import Constraint, FairQueue
from ..sim.engine import Simulator
from ..sim.events import Event

__all__ = ["DiskFullError", "DiskIOError", "Disk"]


class DiskFullError(Exception):
    """An allocation would exceed disk capacity."""


class DiskIOError(Exception):
    """An I/O operation failed (working directory wiped / disk dead)."""


class Disk:
    """A node-local disk with capacity accounting and timed I/O.

    Parameters
    ----------
    sim:
        The simulator.
    host:
        Hostname owning the disk (diagnostics only).
    capacity:
        Usable bytes.
    read_rate / write_rate:
        Sequential bandwidth in bytes/second (defaults ≈ a 2012-era
        commodity SATA drive).
    channel:
        The :class:`~repro.sim.channel.FairQueue` to drain I/O through.
        Pass the network fabric's queue to enable joint disk+network
        rate limiting; defaults to a private queue.
    partition:
        Optional decoupling key for the disk's constraints (the site
        name, matching the fabric's link partitions).
    """

    __slots__ = ("sim", "host", "capacity", "_usage", "channel",
                 "read_constraint", "write_constraint", "_alive")

    def __init__(self, sim: Simulator, host: str, capacity: float,
                 read_rate: float = 90e6, write_rate: float = 70e6,
                 channel: Optional[FairQueue] = None,
                 partition: Optional[str] = None) -> None:
        if capacity <= 0:
            raise ValueError("disk capacity must be positive")
        if read_rate <= 0 or write_rate <= 0:
            raise ValueError("disk I/O rates must be positive")
        self.sim = sim
        self.host = host
        self.capacity = float(capacity)
        self._usage: Dict[str, float] = {}
        self.channel = channel or FairQueue(sim)
        #: Read-direction bandwidth constraint — share it with the fabric
        #: (``extra_constraints``) for disk-limited streaming sends.
        self.read_constraint: Constraint = self.channel.constraint(
            f"disk-read:{host}", read_rate, partition)
        #: Write-direction bandwidth constraint (streaming receives).
        self.write_constraint: Constraint = self.channel.constraint(
            f"disk-write:{host}", write_rate, partition)
        self._alive = True

    def shares_channel_with(self, other) -> bool:
        """True when ``other`` (a fabric or disk) drains through the same
        :class:`~repro.sim.channel.FairQueue`, i.e. joint disk+network
        demands are possible."""
        return getattr(other, "channel", None) is self.channel

    # -- capacity --------------------------------------------------------------
    @property
    def used(self) -> float:
        """Bytes currently allocated, across all labels."""
        return sum(self._usage.values())

    @property
    def free(self) -> float:
        """Bytes still available."""
        return self.capacity - self.used

    @property
    def alive(self) -> bool:
        """False after :meth:`wipe` (working directory destroyed)."""
        return self._alive

    def usage_by_label(self) -> Dict[str, float]:
        """Snapshot of per-label usage (e.g. ``hdfs`` vs ``intermediate``)."""
        return dict(self._usage)

    def allocate(self, nbytes: float, label: str = "data") -> None:
        """Reserve ``nbytes`` under ``label``.

        Raises
        ------
        DiskFullError
            If the allocation exceeds capacity — the out-of-disk failure
            mode of §IV-D2.
        DiskIOError
            If the disk has been wiped.
        """
        if not self._alive:
            raise DiskIOError(f"disk on {self.host} is gone")
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        if self.used + nbytes > self.capacity + 1e-6:
            raise DiskFullError(
                f"disk on {self.host}: need {nbytes:.0f}B, only {self.free:.0f}B free"
            )
        self._usage[label] = self._usage.get(label, 0.0) + nbytes

    def release(self, nbytes: float, label: str = "data") -> None:
        """Return ``nbytes`` previously allocated under ``label``."""
        have = self._usage.get(label, 0.0)
        if nbytes > have + 1e-6:
            raise ValueError(f"releasing {nbytes}B exceeds {label!r} usage {have}B")
        new = have - nbytes
        if new <= 1e-9:
            self._usage.pop(label, None)
        else:
            self._usage[label] = new

    def release_all(self, label: str) -> float:
        """Free everything under ``label``; returns bytes freed."""
        return self._usage.pop(label, 0.0)

    # -- timed I/O ---------------------------------------------------------------
    def read(self, nbytes: float) -> Event:
        """Timed sequential read; bandwidth shared with concurrent reads."""
        if not self._alive:
            ev = self.sim.event()
            ev.fail(DiskIOError(f"read on wiped disk at {self.host}"))
            return ev
        return self.channel.request(nbytes, (self.read_constraint,))

    def write(self, nbytes: float) -> Event:
        """Timed sequential write (capacity must be allocated separately)."""
        if not self._alive:
            ev = self.sim.event()
            ev.fail(DiskIOError(f"write on wiped disk at {self.host}"))
            return ev
        return self.channel.request(nbytes, (self.write_constraint,))

    # -- failure model --------------------------------------------------------------
    def wipe(self) -> None:
        """Destroy the working directory (what a preempting site does).

        All in-flight I/O fails; subsequent probes and I/O fail.
        """
        self._alive = False
        self._usage.clear()
        exc = DiskIOError(f"working directory on {self.host} was removed")
        self.channel.abort_constraint(self.read_constraint, exc)
        self.channel.abort_constraint(self.write_constraint, exc)

    def probe(self) -> bool:
        """The zombie self-check: write a small file and read it back.

        Returns True when the disk is healthy.  (The simulated check is
        instantaneous; its 3-minute cadence lives in the datanode.)
        """
        return self._alive

    def __repr__(self) -> str:
        state = "up" if self._alive else "WIPED"
        return f"<Disk {self.host} {state} {self.used:.2e}/{self.capacity:.2e}B>"
