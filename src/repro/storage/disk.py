"""Per-node local disk: capacity accounting and timed, shared-bandwidth I/O.

Two aspects matter for the paper:

- **Capacity** — map intermediate output is kept on local disk until the
  whole job finishes; with a slow WAN shuffle this accumulates and nodes
  fail with out-of-disk errors (§IV-D2 "Disk Overflow").  The disk tracks
  usage per label (``hdfs``, ``intermediate``, ...) so experiments can
  attribute overflows.
- **Availability** — preemption at a site deletes the job's working
  directory; a zombie daemon's subsequent I/O fails.  The paper's fix has
  the datanode re-check the working directory every 3 minutes by writing a
  small file and reading it back (§IV-D1).  :meth:`Disk.wipe` and
  :meth:`Disk.probe` model exactly this.

Concurrent reads (and, separately, writes) share the channel bandwidth
equally — a single-link special case of the fabric's max-min model.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Set

from ..sim.engine import Simulator
from ..sim.events import Event

__all__ = ["DiskFullError", "DiskIOError", "Disk"]


class DiskFullError(Exception):
    """An allocation would exceed disk capacity."""


class DiskIOError(Exception):
    """An I/O operation failed (working directory wiped / disk dead)."""


class _Op:
    """One in-flight read or write."""

    __slots__ = ("key", "done")

    def __init__(self, key: float, done: Event) -> None:
        #: Channel virtual-clock reading at which this op is fully drained.
        self.key = key
        self.done = done


class _FairChannel:
    """Equal-share bandwidth channel for one I/O direction.

    Because every in-flight op drains at the *same* rate, completion order
    is fixed at submit time.  The channel therefore runs a virtual clock —
    cumulative bytes drained per op — and keeps ops in a heap keyed by the
    clock reading at which each finishes.  One armed timer per channel
    replaces the per-op timer storm: a membership change just re-aims the
    single wake-up instead of rescheduling every op.
    """

    #: Residual bytes below which an operation counts as drained (guards
    #: against floating-point residue stranding a nearly-done op).
    EPSILON = 1e-3

    def __init__(self, sim: Simulator, rate: float) -> None:
        self.sim = sim
        self.rate = float(rate)
        self._ops: Set[_Op] = set()
        #: (finish_key, seq, op) min-heap; entries for aborted ops linger
        #: until popped (lazy deletion).
        self._heap: list = []
        self._seq = 0
        #: Bytes drained per op since the channel was created.
        self._drained = 0.0
        self._clock_at = sim.now
        #: Absolute sim time of the armed wake-up (None when idle).
        self._armed_at: Optional[float] = None

    def submit(self, nbytes: float) -> Event:
        """Start an operation of ``nbytes``; event fires when drained."""
        done = self.sim.event()
        if nbytes <= 0:
            done.succeed(None)
            return done
        self._advance_clock()
        op = _Op(self._drained + float(nbytes), done)
        self._ops.add(op)
        self._seq += 1
        heapq.heappush(self._heap, (op.key, self._seq, op))
        self._rearm()
        return done

    def abort_all(self, exc: Exception) -> None:
        """Fail every in-flight operation with ``exc`` (disk wiped)."""
        self._advance_clock()
        for op in list(self._ops):
            self._ops.discard(op)
            if not op.done.triggered:
                op.done.fail(exc)
                op.done.defused()
        self._heap.clear()

    def _advance_clock(self) -> None:
        """Bring the per-op drained total up to `now`."""
        now = self.sim.now
        if self._ops and now > self._clock_at:
            self._drained += self.rate / len(self._ops) * (now - self._clock_at)
        self._clock_at = now

    def _drain_finished(self) -> None:
        """Complete every op whose finish key the clock has reached."""
        heap = self._heap
        while heap and heap[0][0] <= self._drained + self.EPSILON:
            op = heapq.heappop(heap)[2]
            if op not in self._ops:
                continue  # aborted; lazy-deleted entry
            self._ops.discard(op)
            if not op.done.triggered:
                op.done.succeed(None)

    def _rearm(self) -> None:
        """Aim the channel's single wake-up at the earliest possible finish.

        A wake-up that fires early (ops joined meanwhile, shares shrank) is
        harmless: it re-checks and re-aims.  Only when the earliest finish
        moved *earlier* than the armed time is a new timer needed."""
        while self._heap and self._heap[0][2] not in self._ops:
            heapq.heappop(self._heap)
        if not self._heap:
            self._armed_at = None
            return
        eta = max(0.0, (self._heap[0][0] - self._drained)
                  * len(self._ops) / self.rate)
        fire_at = self.sim.now + eta
        if self._armed_at is not None and self._armed_at <= fire_at:
            return  # the armed wake-up fires first and will re-aim

        self._armed_at = fire_at

        def on_fire(_ev: Event) -> None:
            if self._armed_at != fire_at:
                return  # superseded by an earlier wake-up
            self._armed_at = None
            self._advance_clock()
            self._drain_finished()
            self._rearm()

        self.sim.timeout(eta).callbacks.append(on_fire)


class Disk:
    """A node-local disk with capacity accounting and timed I/O.

    Parameters
    ----------
    sim:
        The simulator.
    host:
        Hostname owning the disk (diagnostics only).
    capacity:
        Usable bytes.
    read_rate / write_rate:
        Sequential bandwidth in bytes/second (defaults ≈ a 2012-era
        commodity SATA drive).
    """

    def __init__(self, sim: Simulator, host: str, capacity: float,
                 read_rate: float = 90e6, write_rate: float = 70e6) -> None:
        if capacity <= 0:
            raise ValueError("disk capacity must be positive")
        self.sim = sim
        self.host = host
        self.capacity = float(capacity)
        self._usage: Dict[str, float] = {}
        self._reads = _FairChannel(sim, read_rate)
        self._writes = _FairChannel(sim, write_rate)
        self._alive = True

    # -- capacity --------------------------------------------------------------
    @property
    def used(self) -> float:
        """Bytes currently allocated, across all labels."""
        return sum(self._usage.values())

    @property
    def free(self) -> float:
        """Bytes still available."""
        return self.capacity - self.used

    @property
    def alive(self) -> bool:
        """False after :meth:`wipe` (working directory destroyed)."""
        return self._alive

    def usage_by_label(self) -> Dict[str, float]:
        """Snapshot of per-label usage (e.g. ``hdfs`` vs ``intermediate``)."""
        return dict(self._usage)

    def allocate(self, nbytes: float, label: str = "data") -> None:
        """Reserve ``nbytes`` under ``label``.

        Raises
        ------
        DiskFullError
            If the allocation exceeds capacity — the out-of-disk failure
            mode of §IV-D2.
        DiskIOError
            If the disk has been wiped.
        """
        if not self._alive:
            raise DiskIOError(f"disk on {self.host} is gone")
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        if self.used + nbytes > self.capacity + 1e-6:
            raise DiskFullError(
                f"disk on {self.host}: need {nbytes:.0f}B, only {self.free:.0f}B free"
            )
        self._usage[label] = self._usage.get(label, 0.0) + nbytes

    def release(self, nbytes: float, label: str = "data") -> None:
        """Return ``nbytes`` previously allocated under ``label``."""
        have = self._usage.get(label, 0.0)
        if nbytes > have + 1e-6:
            raise ValueError(f"releasing {nbytes}B exceeds {label!r} usage {have}B")
        new = have - nbytes
        if new <= 1e-9:
            self._usage.pop(label, None)
        else:
            self._usage[label] = new

    def release_all(self, label: str) -> float:
        """Free everything under ``label``; returns bytes freed."""
        return self._usage.pop(label, 0.0)

    # -- timed I/O ---------------------------------------------------------------
    def read(self, nbytes: float) -> Event:
        """Timed sequential read; bandwidth shared with concurrent reads."""
        if not self._alive:
            ev = self.sim.event()
            ev.fail(DiskIOError(f"read on wiped disk at {self.host}"))
            return ev
        return self._reads.submit(nbytes)

    def write(self, nbytes: float) -> Event:
        """Timed sequential write (capacity must be allocated separately)."""
        if not self._alive:
            ev = self.sim.event()
            ev.fail(DiskIOError(f"write on wiped disk at {self.host}"))
            return ev
        return self._writes.submit(nbytes)

    # -- failure model --------------------------------------------------------------
    def wipe(self) -> None:
        """Destroy the working directory (what a preempting site does).

        All in-flight I/O fails; subsequent probes and I/O fail.
        """
        self._alive = False
        self._usage.clear()
        exc = DiskIOError(f"working directory on {self.host} was removed")
        self._reads.abort_all(exc)
        self._writes.abort_all(exc)

    def probe(self) -> bool:
        """The zombie self-check: write a small file and read it back.

        Returns True when the disk is healthy.  (The simulated check is
        instantaneous; its 3-minute cadence lives in the datanode.)
        """
        return self._alive

    def __repr__(self) -> str:
        state = "up" if self._alive else "WIPED"
        return f"<Disk {self.host} {state} {self.used:.2e}/{self.capacity:.2e}B>"
