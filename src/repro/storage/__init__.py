"""Local storage substrate (per-node disks)."""

from .disk import Disk, DiskFullError, DiskIOError

__all__ = ["Disk", "DiskFullError", "DiskIOError"]
