"""repro — a from-scratch reproduction of "HOG: Distributed Hadoop MapReduce
on the Grid" (He, Weitzel, Swanson, Lu; SC Companion 2012).

Subpackages:

- ``repro.sim``        discrete-event simulation engine
- ``repro.net``        site topology + max-min fair network fabric
- ``repro.storage``    node-local disks
- ``repro.hdfs``       simulated HDFS (namenode/datanodes/placement/balancer)
- ``repro.mapreduce``  simulated MapReduce 1.0 (jobtracker/tasktrackers/FIFO)
- ``repro.grid``       OSG sites, Condor, GlideinWMS, preemption
- ``repro.core``       the assembled HOG system
- ``repro.workload``   the Facebook evaluation workload (Tables I/II)
- ``repro.baselines``  dedicated cluster (Table III) and HOD
- ``repro.metrics``    time series, areas, report tables
- ``repro.experiments`` drivers regenerating every table and figure
"""

__version__ = "1.0.0"
