"""HOGSystem: the assembled Hadoop-On-the-Grid deployment.

Mirrors Figure 3's architecture: a stable central server hosting the
Namenode and JobTracker, plus elastic opportunistic worker nodes — each
running a datanode and a tasktracker over one node-local disk — provisioned
through Condor/GlideinWMS onto whitelisted OSG sites.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..grid.condor import CondorSchedd
from ..grid.glidein import GlideinFactory
from ..grid.site import GridSite
from ..hdfs.client import HdfsClient
from ..hdfs.datanode import Datanode
from ..hdfs.namenode import Namenode
from ..hdfs.placement import SiteAwarePolicy
from ..mapreduce.job import Job, JobSpec
from ..mapreduce.jobtracker import JobTracker
from ..mapreduce.tasktracker import TaskTracker
from ..net.fabric import NetworkFabric
from ..net.topology import DnsSiteResolver, FlatResolver, NetworkTopology
from ..obs.registry import Registry
from ..obs.trace import Tracer
from ..sim.engine import Simulator
from ..sim.events import Interrupt
from ..sim.monitor import StepSeries
from ..storage.disk import Disk
from .config import HOGConfig

__all__ = ["WorkerNode", "HOGSystem"]


class WorkerNode:
    """One opportunistic worker: shared disk + datanode + tasktracker."""

    __slots__ = ("host", "site_name", "disk", "datanode", "tasktracker")

    def __init__(self, host: str, site_name: str, disk: Disk,
                 datanode: Datanode, tasktracker) -> None:
        self.host = host
        self.site_name = site_name
        self.disk = disk
        self.datanode = datanode
        self.tasktracker = tasktracker

    def preempt(self, zombie: bool) -> None:
        """The site evicted us.  ``zombie=True`` models the double-fork
        bug: the working directory is wiped but both daemons keep running
        (§IV-D1).  ``zombie=False`` is the fixed behaviour: daemons die
        with the process tree."""
        if zombie:
            self.disk.wipe()
            self.datanode.make_zombie()
            self.tasktracker.make_zombie()
        else:
            self.datanode.kill()
            self.tasktracker.kill()

    def shutdown(self) -> None:
        """Graceful stop (elastic shrink via ``condor_rm``)."""
        self.datanode.shutdown()
        self.tasktracker.shutdown()

    def pause(self) -> None:
        """Connectivity outage (site blackout without eviction): both
        daemons stop dead — in-flight transfers abort, heartbeats cease,
        the masters declare the node lost — but the disk and its block
        replicas stay intact for :meth:`resume`."""
        self.datanode.kill()
        self.tasktracker.kill()

    def resume(self) -> bool:
        """Outage over: restart the daemons on the surviving disk.  The
        datanode re-registers carrying its full block report (the
        namenode reconciles it); the tasktracker rejoins empty.  Returns
        False when the node cannot come back (disk lost meanwhile)."""
        if not self.disk.alive:
            return False
        if self.datanode.state == Datanode.DEAD:
            self.datanode.start()
        if self.tasktracker.state == TaskTracker.DEAD:
            self.tasktracker.start()
        return True

    def __repr__(self) -> str:
        return f"<WorkerNode {self.host} @{self.site_name}>"


class HOGSystem:
    """The full HOG deployment over a simulator instance.

    Typical use::

        sim = Simulator()
        hog = HOGSystem(sim, HOGConfig())
        hog.start(target_nodes=100)
        hog.run_until_nodes(100)
        hog.preload_input("/in/data", n_blocks=50)
        job = hog.submit(JobSpec(...))
        hog.run_until_jobs_done([job])
    """

    def __init__(self, sim: Simulator, config: Optional[HOGConfig] = None) -> None:
        self.sim = sim
        self.config = config or HOGConfig()
        self.config.validate()
        self.rng = np.random.default_rng(self.config.seed)

        resolver = (DnsSiteResolver() if self.config.site_awareness
                    else FlatResolver("flat-grid"))
        self.topology = NetworkTopology(resolver)
        # Even with site awareness off, the *physical* network still has
        # sites: bandwidth asymmetry is real whether or not Hadoop can see
        # it.  The fabric gets its own DNS-resolved topology.
        self.physical_topology = NetworkTopology(DnsSiteResolver())
        self.fabric = NetworkFabric(sim, self.physical_topology,
                                    self.config.fabric)
        # The central server (stable, hosts master daemons + the package
        # repository) must be in the topologies before anyone talks to it.
        self.topology.add_host(self.config.central_host)
        self.physical_topology.add_host(self.config.central_host)

        placement = SiteAwarePolicy(
            self.topology, np.random.default_rng(self.config.seed + 1))
        self.namenode = Namenode(sim, self.topology, placement, self.config.hdfs)
        self.namenode.start()
        self.jobtracker = JobTracker(sim, self.namenode, self.topology,
                                     self.config.mr)
        self.jobtracker.start()

        self.schedd = CondorSchedd()
        self.sites = [GridSite(sc) for sc in self.config.sites]
        self.factory = GlideinFactory(
            sim, self.schedd, self.sites, self.fabric,
            np.random.default_rng(self.config.seed + 2),
            node_start=self._node_start,
            node_preempt=self._node_preempt,
            node_shutdown=self._node_shutdown,
            wrapper=self.config.wrapper,
            negotiation_interval=self.config.negotiation_interval)

        self.nodes: Dict[str, WorkerNode] = {}
        #: Actual running worker nodes over time.
        self.node_series = StepSeries("running_nodes", initial=0, t0=sim.now)
        #: Node count as the masters believe it (what Figure 5 plots:
        #: "the reported number of nodes ... fluctuated above 55
        #: momentarily as nodes left but were not reported dead for their
        #: heartbeat timeout").
        self.believed_series = StepSeries("believed_nodes", initial=0, t0=sim.now)
        self.factory.node_count_listeners.append(
            lambda n: self.node_series.record(self.sim.now, n))
        # Change-driven believed recorder: every live-tracker-count change
        # lands in the series at its exact timestamp, instead of being
        # sampled on a 5 s polling grid.
        self.jobtracker.tracker_count_listeners.append(
            lambda n: self.believed_series.record(self.sim.now, n))
        self._sampler_started = False
        #: The unified metrics registry over every subsystem counter;
        #: consumers call ``hog.registry.snapshot()`` instead of plucking
        #: fields off live objects.
        self.registry = self._build_registry()
        self.tracer: Optional[Tracer] = None

    def _build_registry(self) -> Registry:
        """Bind every scattered counter and gauge into one registry.

        Bindings are *reads over live objects*: hot paths keep their plain
        attribute increments, and the registry only aggregates at snapshot
        time — so absorbing a counter here costs its owner nothing.
        """
        reg = Registry()
        channel = self.fabric.channel
        reg.bind_attrs("channel", channel, (
            "rebalances", "uniform_groups", "uniform_completions",
            "uniform_leaves", "uniform_joins", "uniform_pins",
            "cross_partition_passes", "arrival_fast_paths",
            "departure_fast_paths", "completion_fast_paths",
            "uniform_fast_accepts", "starvation_rescues", "peak_demands",
            "pass_size_hist"))
        reg.bind_attrs("channel", self.fabric, ("peak_flows",))
        reg.bind_snapshot("control", self.control_plane_stats)
        reg.bind_counterset("grid", self.factory.counters, prefix="glideins")
        reg.bind_counterset("grid", self.factory.counters, prefix="preemption")
        # The full namenode bag: recovery health (blocks_all_replicas_lost,
        # replication_retries_deferred, replicas_trashed...) must surface
        # in result records so the run-diff gate can flag fault metrics
        # appearing in scenarios that should never lose data.
        reg.bind_counterset("hdfs", self.namenode.counters)
        # Read-only gauges for the sim-time sampler (ProbeSet): every
        # reader below is a pure O(small) state read with no side effects.
        reg.gauge("running_nodes", self.factory.running_count)
        reg.gauge("believed_nodes", self.jobtracker.live_tracker_count)
        reg.gauge("active_flows", lambda: self.fabric.active_flows)
        reg.gauge("active_demands", lambda: channel.active_demands)
        reg.gauge("pending_maps", lambda: sum(
            len(j.pending_map_tasks) for j in self.jobtracker.active_jobs()))
        reg.gauge("pending_reduces", lambda: sum(
            len(j.pending_reduce_tasks) for j in self.jobtracker.active_jobs()))
        reg.gauge("under_replicated", self.namenode.under_replicated_count)
        reg.gauge("repl_heap_depth", lambda: len(self.namenode._repl_heap))
        reg.gauge("event_heap_depth", lambda: len(self.sim._heap))
        reg.gauge("lost_blocks", self.namenode.lost_block_count)
        reg.gauge("deferred_replications",
                  self.namenode.deferred_replication_count)
        reg.gauge("invalidation_backlog",
                  self.namenode.pending_invalidation_count)
        return reg

    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Install (or remove, with ``None``) the causal tracer.

        One call wires every emission site: the jobtracker (job/attempt
        spans, heartbeat rounds), the namenode (datanodes read it for
        HDFS flow spans), the glidein factory (preemption bursts), and
        the channel core (filling passes).  Nodes provisioned later pick
        it up through their master daemons, so attaching before or after
        :meth:`start` both work.
        """
        self.tracer = tracer
        self.jobtracker.tracer = tracer
        self.namenode.tracer = tracer
        self.factory.tracer = tracer
        self.fabric.channel.tracer = tracer

    # -- node lifecycle hooks (called by the glidein factory) -----------------------
    def _node_start(self, host: str, site: GridSite) -> WorkerNode:
        node_cfg = self.config.site_nodes.get(site.name, self.config.node)
        speed = float(self.rng.uniform(node_cfg.speed_min, node_cfg.speed_max))
        # The disk drains through the fabric's shared channel so shuffle
        # serves, HDFS reads, and replication streams are jointly
        # constrained by disk and network bandwidth.
        disk = Disk(self.sim, host, node_cfg.disk_capacity,
                    node_cfg.disk_read_rate, node_cfg.disk_write_rate,
                    channel=self.fabric.channel,
                    partition=self.fabric.topology.site_of(host))
        dn = Datanode(self.sim, host, disk, self.fabric, self.namenode,
                      self.config.hdfs)
        dn.start()
        tt = TaskTracker(self.sim, host, disk, self.fabric,
                         self.namenode, self.jobtracker,
                         node_cfg.map_slots, node_cfg.reduce_slots,
                         speed, self.config.mr)
        tt.start()
        node = WorkerNode(host, site.name, disk, dn, tt)
        self.nodes[host] = node
        return node

    def _node_preempt(self, node: WorkerNode, zombie: bool) -> None:
        node.preempt(zombie)

    def _node_shutdown(self, node: WorkerNode) -> None:
        node.shutdown()

    # -- control ---------------------------------------------------------------------
    def start(self, target_nodes: int) -> None:
        """Request ``target_nodes`` glideins and start all monitors."""
        self.factory.start()
        self.factory.set_target(target_nodes)
        if not self._sampler_started:
            self._sampler_started = True
            self.sim.process(self._believed_sampler(), name="hog-believed-sampler")

    def set_target(self, n: int) -> None:
        """Elastically grow or shrink the node request (§IV-C)."""
        self.factory.set_target(n)

    def _believed_sampler(self, period: float = 60.0):
        """Coarse fallback recorder.

        The believed series is recorded change-driven (see ``__init__``);
        this loop only re-stamps the current value at a coarse period so
        long quiet stretches still show up in exports.  It no longer drives
        accuracy, so the period is 12x the old 5 s polling grid."""
        try:
            while True:
                self.believed_series.record(
                    self.sim.now, self.jobtracker.live_tracker_count())
                yield self.sim.timeout(period)
        except Interrupt:
            return

    # -- run helpers ---------------------------------------------------------------------
    def run_until_nodes(self, n: int, timeout: float = 36_000.0,
                        step: Optional[float] = None) -> float:
        """Advance simulation until ``n`` workers are running (the paper
        waits for the target before starting the workload, §IV-A).
        Returns the exact time the count is reached; raises on timeout.

        Event-driven: the engine jumps straight from real event to real
        event instead of advancing on a fixed polling grid.  ``step`` is
        kept for backwards compatibility and ignored."""
        if self.factory.running_count() >= n:
            return self.sim.now
        reached = self.factory.when_running(n)
        if self.sim.run_until(reached, self.sim.now + timeout):
            return self.sim.now
        self.factory.cancel_wait(reached)
        raise TimeoutError(
            f"only {self.factory.running_count()}/{n} nodes after {timeout}s")

    def run_until_jobs_done(self, jobs: List[Job], timeout: float = 200_000.0,
                            step: Optional[float] = None) -> float:
        """Advance simulation until every job in ``jobs`` finished.

        Returns the exact finish timestamp of the last job (not rounded up
        to a polling step).  ``step`` is kept for backwards compatibility
        and ignored."""
        done = self.jobtracker.when_jobs_done(jobs)
        if self.sim.run_until(done, self.sim.now + timeout):
            return self.sim.now
        self.jobtracker.cancel_wait(done)
        unfinished = [(j.job_id, j.status) for j in jobs if j.finish_time is None]
        raise TimeoutError(f"jobs unfinished after {timeout}s: {unfinished}")

    # -- workload interface ---------------------------------------------------------------
    def client(self) -> HdfsClient:
        """An HDFS client running on the central server."""
        return HdfsClient(self.sim, self.namenode, self.fabric,
                          self.config.central_host)

    def preload_input(self, name: str, n_blocks: int) -> None:
        """Instantly place an input file of ``n_blocks`` full blocks
        (models the pre-measurement data upload of §IV-A)."""
        self.client().preload_file(
            name, n_blocks * self.config.hdfs.block_size)

    def submit(self, spec: JobSpec) -> Job:
        """Submit a MapReduce job."""
        return self.jobtracker.submit_job(spec)

    def running_nodes(self) -> int:
        """Actual running worker count."""
        return self.factory.running_count()

    def control_plane_stats(self) -> Dict[str, int]:
        """Counters for the delta-driven control plane: how much work the
        heartbeat/index/metadata paths actually did (the scale story is
        these growing ~linearly with events, not with nodes × jobs)."""
        jt = self.jobtracker
        nn = self.namenode
        index = getattr(jt.scheduler, "index", None)
        return {
            "heartbeats": jt.heartbeats,
            "heartbeat_rounds": jt.heartbeat_rounds,
            "sched_index_updates": index.updates if index is not None else 0,
            "nn_block_reports": nn.counters.get("block_reports"),
            "nn_block_report_blocks": nn.counters.get("block_report_blocks"),
            "nn_replications_started": nn.counters.get("replications_started"),
        }

    def preempt_host(self, host: str, zombie: bool = False) -> None:
        """Force a site preemption of the glidein running at ``host``.

        Goes through the glidein lifecycle (capacity released, factory
        notified, replacement requested next cycle), exactly like a
        spontaneous preemption.  ``zombie`` forces the double-fork zombie
        outcome regardless of the wrapper's ``zombie_fix`` setting."""
        glidein = self.factory.find_by_hostname(host)
        if glidein is None:
            raise KeyError(f"no running glidein at {host}")
        glidein.preempt(zombie=zombie)

    def __repr__(self) -> str:
        return (f"<HOGSystem nodes={self.factory.running_count()}"
                f"/{self.factory.target} sites={len(self.sites)}>")
