"""Top-level HOG system configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..grid.glidein import WrapperConfig
from ..grid.site import PAPER_SITES, GridSiteConfig
from ..hdfs.config import GB, HdfsConfig, hog_config
from ..mapreduce.config import MRConfig, hog_mr_config
from ..net.fabric import FabricConfig

__all__ = ["NodeConfig", "HOGConfig"]


@dataclass
class NodeConfig:
    """Hardware model of one opportunistic worker node.

    HOG workers get one core each, hence 1 map + 1 reduce slot (§IV-A).
    Grid nodes are heterogeneous; ``speed_min``/``speed_max`` bound a
    uniform per-node CPU speed factor.
    """

    disk_capacity: float = 200 * GB
    disk_read_rate: float = 90e6
    disk_write_rate: float = 70e6
    map_slots: int = 1
    reduce_slots: int = 1
    speed_min: float = 1.0
    speed_max: float = 1.0

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical settings."""
        if self.disk_capacity <= 0:
            raise ValueError("disk_capacity must be positive")
        if self.disk_read_rate <= 0 or self.disk_write_rate <= 0:
            raise ValueError("disk rates must be positive")
        if self.map_slots < 0 or self.reduce_slots < 0:
            raise ValueError("slot counts cannot be negative")
        if not (0 < self.speed_min <= self.speed_max):
            raise ValueError("need 0 < speed_min <= speed_max")


@dataclass
class HOGConfig:
    """Everything needed to stand up a HOG instance.

    Defaults reproduce the paper's deployment: the five OSG sites of
    Listing 1, replication 10, 30 s failure detection, the zombie fix on,
    and 1+1 slots per worker.
    """

    central_host: str = "hog-central.unl.edu"
    sites: List[GridSiteConfig] = field(default_factory=PAPER_SITES)
    hdfs: HdfsConfig = field(default_factory=hog_config)
    mr: MRConfig = field(default_factory=hog_mr_config)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    wrapper: WrapperConfig = field(default_factory=WrapperConfig)
    node: NodeConfig = field(default_factory=NodeConfig)
    #: Per-site hardware overrides keyed by grid site *name* (e.g.
    #: ``"UCSDT2"``).  Workers at a listed site get that hardware model
    #: instead of ``node`` — heterogeneous SSD/HDD site mixes are one
    #: entry per tier.
    site_nodes: Dict[str, NodeConfig] = field(default_factory=dict)
    #: Condor negotiation cycle period, seconds.
    negotiation_interval: float = 20.0
    #: The paper's site awareness (§III-B1).  False drops every worker
    #: into one flat failure domain — the ablation baseline: placement
    #: cannot spread replicas across sites and the scheduler cannot tell
    #: near from far.
    site_awareness: bool = True
    seed: int = 0

    def validate(self) -> None:
        """Validate every sub-config."""
        if not self.sites:
            raise ValueError("HOG needs at least one grid site")
        for s in self.sites:
            s.validate()
        self.hdfs.validate()
        self.mr.validate()
        self.fabric.validate()
        self.wrapper.validate()
        self.node.validate()
        site_names = {s.name for s in self.sites}
        for name, node in self.site_nodes.items():
            node.validate()
            if name not in site_names:
                raise ValueError(f"site_nodes names unknown site {name!r}")
        if self.negotiation_interval <= 0:
            raise ValueError("negotiation_interval must be positive")
        # The wrapper downloads its package from the central server.
        if self.wrapper.package_host != self.central_host:
            self.wrapper.package_host = self.central_host

    @property
    def total_grid_capacity(self) -> int:
        """Sum of per-site capacities — the most nodes HOG can ever hold."""
        return sum(s.capacity for s in self.sites)
