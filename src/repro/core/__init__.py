"""HOG core: the assembled Hadoop-On-the-Grid system."""

from .config import HOGConfig, NodeConfig
from .hog import HOGSystem, WorkerNode

__all__ = ["HOGConfig", "NodeConfig", "HOGSystem", "WorkerNode"]
