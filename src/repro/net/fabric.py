"""Fluid-flow network model with max-min fair bandwidth sharing.

Every byte that moves between simulated hosts — HDFS write pipelines,
remote block reads, and the MapReduce shuffle — is a :class:`Flow` through
this fabric.  A flow's path is:

- intra-site: ``src NIC(tx) → dst NIC(rx)`` (site switches assumed
  non-blocking, as Hadoop assumes for racks), or
- inter-site: ``src NIC(tx) → src site WAN uplink → dst site WAN downlink →
  dst NIC(rx)``.

Rates are the max-min fair allocation over link capacities.  This captures
the paper's central bandwidth asymmetry — "sites usually have very high
bandwidth between their worker nodes, and lower bandwidth to the outside
world" (§III-B1) — which is what makes site-aware placement and scheduling
pay off, and what makes the cross-site shuffle slow (§IV-D2).

Latency is charged once per transfer, before the fluid phase.

The rate arithmetic itself — incremental per-component progressive
filling, per-constraint virtual clocks, per-bottleneck group timers, and
per-site partitioning — lives in :mod:`repro.sim.channel`; this module is
an adapter.  It owns host naming, topology-driven path construction (with
memoisation), latency/handshake setup phases, per-host flow indexes for
node-death aborts, and byte-class accounting.  Because links are plain
:class:`~repro.sim.channel.Constraint` objects on a shared
:class:`~repro.sim.channel.FairQueue`, a transfer can be *jointly*
constrained by non-network resources: pass a disk's read or write
constraint via ``extra_constraints`` and the stream is rated by the
slowest of disk and network at every instant (streaming I/O, not
store-and-forward).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sim.channel import Constraint, Demand, FairQueue
from ..sim.engine import Simulator
from ..sim.events import Event
from .topology import NetworkTopology

__all__ = ["FabricConfig", "TransferFailed", "Flow", "Link", "NetworkFabric"]


@dataclass
class FabricConfig:
    """Capacities and latencies of the simulated network.

    Defaults model the paper's environment: 1 Gbps node NICs (Table III),
    multi-Gbps site uplinks shared by all of a site's workers, sub-ms LAN
    round trips and tens-of-ms WAN round trips.
    """

    #: Per-node NIC bandwidth, bytes/second (1 Gbps full duplex).
    nic_bandwidth: float = 125e6
    #: Per-site WAN uplink/downlink bandwidth, bytes/second (default 10 Gbps).
    site_uplink_bandwidth: float = 1250e6
    #: One-way latency between two nodes in the same site, seconds.
    intra_site_latency: float = 0.0005
    #: One-way latency between nodes in different sites, seconds (WAN).
    inter_site_latency: float = 0.040
    #: Extra per-transfer protocol overhead, seconds (HTTP/RPC setup; the
    #: paper notes HOG's jobtracker/tasktracker HTTP runs over the WAN).
    connection_overhead: float = 0.0
    #: Per-transfer handshake cost in round trips (TCP + HTTP setup).
    #: Charged as ``handshake_rtts * 2 * latency``, so cross-site
    #: transfers pay far more than LAN ones — "the HTTP requests and
    #: responses are over the WAN which has high latency and long
    #: transmission time compared with the LAN of a cluster ... it is
    #: expected that the startup and data transfer initiations will be
    #: increased" (§III-B2).
    handshake_rtts: float = 0.0
    #: Per-site WAN bandwidth overrides, bytes/second, keyed by topology
    #: site name (the DNS domain, e.g. ``"fnal.gov"``).  Sites not listed
    #: keep ``site_uplink_bandwidth``.  This is what heterogeneous-WAN
    #: scenarios tune: a throttled site uplink is shared by that site's
    #: shuffle traffic, HDFS replication, *and* glidein package downloads.
    site_uplink_overrides: Dict[str, float] = field(default_factory=dict)

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical settings."""
        if self.nic_bandwidth <= 0 or self.site_uplink_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if any(v <= 0 for v in self.site_uplink_overrides.values()):
            raise ValueError("site uplink overrides must be positive")
        if self.intra_site_latency < 0 or self.inter_site_latency < 0:
            raise ValueError("latencies cannot be negative")
        if self.connection_overhead < 0 or self.handshake_rtts < 0:
            raise ValueError("connection overheads cannot be negative")


class TransferFailed(Exception):
    """A transfer was aborted (endpoint died mid-flight)."""


class Link(Constraint):
    """A directed network resource (NIC direction or WAN leg)."""

    __slots__ = ()


class Flow(Demand):
    """One in-flight transfer."""

    __slots__ = ("id", "src", "dst")

    def __init__(self, fid: int, src: str, dst: str, size: float,
                 links: Sequence[Constraint], done: Event, now: float) -> None:
        super().__init__(size, links, done, now)
        self.id = fid
        self.src = src
        self.dst = dst

    @property
    def links(self) -> Tuple[Constraint, ...]:
        """The constraints this flow drains through (path + any extras)."""
        return self.constraints

    def __repr__(self) -> str:
        return (f"<Flow #{self.id} {self.src}->{self.dst} "
                f"{self.remaining:.0f}/{self.size:.0f}B @{self.rate:g}B/s>")


class NetworkFabric:
    """The shared network all simulated hosts communicate over."""

    #: Residual bytes below which a flow counts as drained.
    EPSILON = FairQueue.EPSILON

    #: How long a starved flow waits before forcing another filling pass.
    STARVATION_RETRY = FairQueue.STARVATION_RETRY

    #: Path-cache entries before a wholesale reset (guards memory on huge
    #: all-to-all shuffles; entries are cheap to recompute).
    _PATH_CACHE_LIMIT = 131072

    def __init__(self, sim: Simulator, topology: NetworkTopology,
                 config: Optional[FabricConfig] = None,
                 channel: Optional[FairQueue] = None) -> None:
        config = config or FabricConfig()
        config.validate()
        self.sim = sim
        self.topology = topology
        self.config = config
        #: Runtime mirror of ``config.site_uplink_overrides`` — fault
        #: injection retunes uplinks through :meth:`set_site_uplink`
        #: without mutating the (possibly shared/serialized) config.
        self._uplink_overrides: Dict[str, float] = dict(
            config.site_uplink_overrides)
        #: Sites whose WAN uplink is currently partitioned (insertion-
        #: ordered dict as a set): cross-site transfers touching one fail
        #: fast instead of queueing on a dead link.
        self._partitioned_sites: Dict[str, None] = {}
        #: The shared max-min drain engine.  Disks created with
        #: ``channel=fabric.channel`` participate in joint allocations.
        self.channel = channel or FairQueue(sim)
        self._node_tx: Dict[str, Link] = {}
        self._node_rx: Dict[str, Link] = {}
        self._site_tx: Dict[str, Link] = {}
        self._site_rx: Dict[str, Link] = {}
        # Insertion-ordered dicts used as sets: abort/iteration order must
        # not depend on the interpreter's hash seed (reproducible runs).
        self._flows: Dict[Flow, None] = {}
        #: host → flows in the fluid phase touching it (src or dst).
        self._flows_by_host: Dict[str, Dict[Flow, None]] = {}
        #: host → transfers still in their latency/handshake setup phase.
        self._pending_by_host: Dict[str, Dict[Flow, None]] = {}
        #: (src, dst) → (links, same_site) memo.
        self._path_cache: Dict[Tuple[str, str], Tuple[List[Link], bool]] = {}
        self._flow_counter = 0
        #: Total bytes ever delivered, by (same-site?) class — used by tests
        #: and locality accounting.
        self.bytes_intra_site = 0.0
        self.bytes_inter_site = 0.0
        #: Highwater mark of concurrent fluid-phase flows (benchmarks).
        self.peak_flows = 0

    # -- stats (delegated to the shared channel core) -------------------------
    @property
    def rebalances(self) -> int:
        """Progressive-filling passes executed (benchmarks / perf tests)."""
        return self.channel.rebalances

    @property
    def starvation_rescues(self) -> int:
        """Times the zero-rate starvation guard had to rescue a demand."""
        return self.channel.starvation_rescues

    # -- link management -----------------------------------------------------
    def _nic(self, host: str, direction: str) -> Link:
        table = self._node_tx if direction == "tx" else self._node_rx
        link = table.get(host)
        if link is None:
            link = Link(f"nic-{direction}:{host}", self.config.nic_bandwidth,
                        partition=self.topology.site_of(host))
            table[host] = link
        return link

    def _wan(self, site: str, direction: str) -> Link:
        table = self._site_tx if direction == "tx" else self._site_rx
        link = table.get(site)
        if link is None:
            capacity = self._uplink_overrides.get(
                site, self.config.site_uplink_bandwidth)
            link = Link(f"wan-{direction}:{site}", capacity, partition=site)
            table[site] = link
        return link

    def set_site_uplink(self, site: str, bandwidth: Optional[float],
                        abort_active: bool = False) -> int:
        """Retune a site's WAN uplink capacity *live* (fault injection).

        ``bandwidth`` is the new uplink capacity in bytes/s; ``None``
        restores the config's setting for the site.  New transfers see
        the new capacity immediately (the old ``Link`` objects are
        retired and the path cache reset); flows already in the fluid
        phase keep the reservation they were rated with — model-wise, an
        established stream rides out a routing change — unless
        ``abort_active`` is set, which fails them with
        :class:`TransferFailed` (their owners' retry paths take over).
        Returns the number of aborted flows."""
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("uplink bandwidth must be positive or None")
        if bandwidth is None:
            self._uplink_overrides.pop(site, None)
            base = self.config.site_uplink_overrides.get(site)
            if base is not None:
                self._uplink_overrides[site] = base
        else:
            self._uplink_overrides[site] = float(bandwidth)
        aborted = 0
        for table in (self._site_tx, self._site_rx):
            old = table.pop(site, None)
            if old is not None and abort_active:
                aborted += self.channel.abort_constraint(
                    old, TransferFailed(
                        f"wan uplink of {site} reconfigured"))
        self._path_cache.clear()
        return aborted

    def partition_site(self, site: str) -> int:
        """WAN-partition ``site``: every in-flight cross-site transfer
        touching it fails now, and new ones fail fast until
        :meth:`heal_site`.  Intra-site traffic (and the direct-call
        control plane — heartbeats are modelled out-of-band) continues.
        Returns the number of aborted transfers."""
        self._partitioned_sites[site] = None
        aborted = 0
        # Fluid-phase flows cross the site's WAN legs, so the uplink
        # constraints name them all.
        for table in (self._site_tx, self._site_rx):
            old = table.pop(site, None)
            if old is not None:
                aborted += self.channel.abort_constraint(
                    old, TransferFailed(f"site {site} partitioned"))
        # Setup-phase transfers are not on constraints yet: sweep the
        # pending index for cross-site ones touching the site.
        pending: Dict[Flow, None] = {}
        for bucket in self._pending_by_host.values():
            for flow in bucket:
                pending[flow] = None
        for flow in list(pending):
            if self.topology.same_site(flow.src, flow.dst):
                continue
            if site not in (self.topology.site_of(flow.src),
                            self.topology.site_of(flow.dst)):
                continue
            self._unindex_pending(flow)
            if not flow.done.triggered:
                flow.done.fail(TransferFailed(
                    f"site {site} partitioned while setting up {flow!r}"))
                flow.done.defused()
                aborted += 1
        self._path_cache.clear()
        return aborted

    def heal_site(self, site: str) -> None:
        """End a WAN partition started by :meth:`partition_site`."""
        self._partitioned_sites.pop(site, None)

    def site_partitioned(self, site: str) -> bool:
        """True while ``site`` is WAN-partitioned."""
        return site in self._partitioned_sites

    def _path(self, src: str, dst: str) -> Tuple[List[Link], bool]:
        """Links for a src→dst flow and whether it stays inside one site.

        Memoised: topology site assignments are resolve-once, so a host
        pair's path never changes and repeated transfers (shuffle fetches,
        block reads) skip the topology lookups entirely.
        """
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        same = self.topology.same_site(src, dst)
        links = [self._nic(src, "tx")]
        if not same:
            links.append(self._wan(self.topology.site_of(src), "tx"))
            links.append(self._wan(self.topology.site_of(dst), "rx"))
        links.append(self._nic(dst, "rx"))
        if len(self._path_cache) >= self._PATH_CACHE_LIMIT:
            self._path_cache.clear()
        self._path_cache[key] = (links, same)
        return links, same

    # -- public API ------------------------------------------------------------
    def latency(self, src: str, dst: str) -> float:
        """One-way latency between two hosts."""
        if src == dst:
            return 0.0
        if self.topology.same_site(src, dst):
            return self.config.intra_site_latency
        return self.config.inter_site_latency

    def transfer(self, src: str, dst: str, nbytes: float,
                 extra_constraints: Optional[Sequence[Constraint]] = None,
                 validate: Optional[Callable[[], bool]] = None) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Returns an event that succeeds (value = the :class:`Flow`) when the
        last byte lands, or fails with :class:`TransferFailed` if an
        endpoint is torn down mid-transfer.

        ``extra_constraints`` jointly rate-limits the stream by additional
        resources (source disk read, destination disk write): the flow
        drains at the max-min share of its *whole* constraint set, which
        models streaming (disk and network overlapped), not
        store-and-forward.  Loopback transfers skip the network but still
        drain through any extra constraints; without extras they complete
        after zero network time.

        ``validate`` is re-checked when the setup (latency/handshake)
        phase ends: if it returns False the transfer fails instead of
        entering the fluid phase.  Joint streams use it to close the
        wipe-during-setup window — a disk death is otherwise only visible
        to demands already registered on its constraints.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer {nbytes!r} bytes")
        done = self.sim.event()
        if src == dst or nbytes == 0:
            if nbytes > 0 and extra_constraints:
                # Local stream: disk-limited only.
                flow = self._make_flow(src, dst, nbytes,
                                       list(extra_constraints), done)
                self._begin(flow, delay=0.0, validate=validate)
                return done
            done.succeed(None)
            return done

        links, same = self._path(src, dst)
        if not same and self._partitioned_sites and (
                self.topology.site_of(src) in self._partitioned_sites
                or self.topology.site_of(dst) in self._partitioned_sites):
            # Cross-site stream into a partitioned site: fail fast (after
            # the would-be connection setup) so callers' retry paths run
            # instead of the flow stalling on a dead link forever.
            def refuse(_arg: Any) -> None:
                if not done.triggered:
                    done.fail(TransferFailed(
                        f"wan partition blocks {src}->{dst}"))
                    done.defused()
            self.sim.call_after(self._setup_delay(src, dst), refuse)
            return done
        if same:
            self.bytes_intra_site += nbytes
        else:
            self.bytes_inter_site += nbytes
        if extra_constraints:
            links = links + list(extra_constraints)

        flow = self._make_flow(src, dst, nbytes, links, done)
        self._begin(flow, delay=self._setup_delay(src, dst), validate=validate)
        return done

    def _make_flow(self, src: str, dst: str, nbytes: float,
                   links: List[Constraint], done: Event) -> Flow:
        self._flow_counter += 1
        flow = Flow(self._flow_counter, src, dst, nbytes, links, done,
                    self.sim.now)
        flow.on_exit = self._flow_exited
        return flow

    def _begin(self, flow: Flow, delay: float,
               validate: Optional[Callable[[], bool]] = None) -> None:
        """Run the setup (latency/handshake) phase, then enter the fluid
        phase on the shared channel."""
        # Index the setup-phase transfer so endpoint death during the
        # latency/handshake window aborts it instead of letting it start
        # and "deliver" bytes to a dead host.
        self._pending_by_host.setdefault(flow.src, {})[flow] = None
        self._pending_by_host.setdefault(flow.dst, {})[flow] = None

        def start(_arg: Any) -> None:
            self._unindex_pending(flow)
            if flow.done.triggered:  # aborted during the latency phase
                return
            if validate is not None and not validate():
                flow.done.fail(TransferFailed(
                    f"stream precondition lost while setting up {flow!r}"))
                flow.done.defused()
                return
            self._flows[flow] = None
            nflows = len(self._flows)
            if nflows > self.peak_flows:
                self.peak_flows = nflows
            self._flows_by_host.setdefault(flow.src, {})[flow] = None
            self._flows_by_host.setdefault(flow.dst, {})[flow] = None
            self.channel.start(flow)

        if delay > 0.0:
            self.sim.call_after(delay, start)
        else:
            self.sim.call_at(self.sim.now, start)

    def _flow_exited(self, demand: Demand) -> None:
        """Channel exit hook: tear down the fabric-side indexes."""
        flow: Flow = demand  # type: ignore[assignment]
        self._flows.pop(flow, None)
        for host in (flow.src, flow.dst):
            bucket = self._flows_by_host.get(host)
            if bucket is not None:
                bucket.pop(flow, None)
                if not bucket:
                    del self._flows_by_host[host]

    def _unindex_pending(self, flow: Flow) -> None:
        for host in (flow.src, flow.dst):
            bucket = self._pending_by_host.get(host)
            if bucket is not None:
                bucket.pop(flow, None)
                if not bucket:
                    del self._pending_by_host[host]

    def _setup_delay(self, src: str, dst: str) -> float:
        """Pre-transfer delay: one-way latency + connection setup."""
        lat = self.latency(src, dst)
        return (lat + self.config.connection_overhead
                + self.config.handshake_rtts * 2.0 * lat)

    def serve_stream(self, src: str, dst: str, nbytes: float, disk) -> Event:
        """Stream ``nbytes`` read from ``src``'s disk to ``dst``.

        With the normal wiring (the disk shares this fabric's channel)
        this is ONE jointly-constrained demand over the disk read, the
        NICs, and (cross-site) the WAN legs.  A standalone disk falls
        back to overlapped disk read + transfer: the elapsed time is the
        slower of the two.  Both shapes fail if the disk read or any
        network leg fails."""
        if disk.shares_channel_with(self):
            return self.transfer(src, dst, nbytes,
                                 extra_constraints=(disk.read_constraint,),
                                 validate=lambda: disk.alive)
        return self.sim.all_of([disk.read(nbytes),
                                self.transfer(src, dst, nbytes)])

    def transfer_time_estimate(self, src: str, dst: str, nbytes: float) -> float:
        """Uncontended lower-bound duration of a transfer (for planning)."""
        if src == dst or nbytes == 0:
            return 0.0
        links, _ = self._path(src, dst)
        rate = min(l.capacity for l in links)
        return self._setup_delay(src, dst) + nbytes / rate

    def abort_host_flows(self, host: str) -> int:
        """Fail every transfer touching ``host`` (node death): flows in the
        fluid phase *and* transfers still in their setup delay.  Returns the
        number of aborted transfers."""
        victims = list(self._flows_by_host.get(host, ()))
        for flow in victims:
            self.channel.abort(
                flow, TransferFailed(f"endpoint {host} lost during {flow!r}"))
        pending = list(self._pending_by_host.get(host, ()))
        for flow in pending:
            self._unindex_pending(flow)
            if not flow.done.triggered:
                flow.done.fail(TransferFailed(
                    f"endpoint {host} lost while setting up {flow!r}"))
                flow.done.defused()
        return len(victims) + len(pending)

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows (fluid phase)."""
        return len(self._flows)
