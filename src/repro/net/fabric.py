"""Fluid-flow network model with max-min fair bandwidth sharing.

Every byte that moves between simulated hosts — HDFS write pipelines,
remote block reads, and the MapReduce shuffle — is a :class:`Flow` through
this fabric.  A flow's path is:

- intra-site: ``src NIC(tx) → dst NIC(rx)`` (site switches assumed
  non-blocking, as Hadoop assumes for racks), or
- inter-site: ``src NIC(tx) → src site WAN uplink → dst site WAN downlink →
  dst NIC(rx)``.

Rates are the max-min fair allocation over link capacities, recomputed by
progressive filling whenever the set of flows changes.  This captures the
paper's central bandwidth asymmetry — "sites usually have very high
bandwidth between their worker nodes, and lower bandwidth to the outside
world" (§III-B1) — which is what makes site-aware placement and scheduling
pay off, and what makes the cross-site shuffle slow (§IV-D2).

Latency is charged once per transfer, before the fluid phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..sim.engine import Simulator
from ..sim.events import Event
from .topology import NetworkTopology

__all__ = ["FabricConfig", "TransferFailed", "Flow", "Link", "NetworkFabric"]


@dataclass
class FabricConfig:
    """Capacities and latencies of the simulated network.

    Defaults model the paper's environment: 1 Gbps node NICs (Table III),
    multi-Gbps site uplinks shared by all of a site's workers, sub-ms LAN
    round trips and tens-of-ms WAN round trips.
    """

    #: Per-node NIC bandwidth, bytes/second (1 Gbps full duplex).
    nic_bandwidth: float = 125e6
    #: Per-site WAN uplink/downlink bandwidth, bytes/second (default 10 Gbps).
    site_uplink_bandwidth: float = 1250e6
    #: One-way latency between two nodes in the same site, seconds.
    intra_site_latency: float = 0.0005
    #: One-way latency between nodes in different sites, seconds (WAN).
    inter_site_latency: float = 0.040
    #: Extra per-transfer protocol overhead, seconds (HTTP/RPC setup; the
    #: paper notes HOG's jobtracker/tasktracker HTTP runs over the WAN).
    connection_overhead: float = 0.0
    #: Per-transfer handshake cost in round trips (TCP + HTTP setup).
    #: Charged as ``handshake_rtts * 2 * latency``, so cross-site
    #: transfers pay far more than LAN ones — "the HTTP requests and
    #: responses are over the WAN which has high latency and long
    #: transmission time compared with the LAN of a cluster ... it is
    #: expected that the startup and data transfer initiations will be
    #: increased" (§III-B2).
    handshake_rtts: float = 0.0

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical settings."""
        if self.nic_bandwidth <= 0 or self.site_uplink_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.intra_site_latency < 0 or self.inter_site_latency < 0:
            raise ValueError("latencies cannot be negative")
        if self.connection_overhead < 0 or self.handshake_rtts < 0:
            raise ValueError("connection overheads cannot be negative")


class TransferFailed(Exception):
    """A transfer was aborted (endpoint died mid-flight)."""


class Link:
    """A capacity-constrained directed resource (NIC direction or WAN leg)."""

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: float) -> None:
        self.name = name
        self.capacity = float(capacity)
        #: Flows currently traversing this link.
        self.flows: Set["Flow"] = set()

    def __repr__(self) -> str:
        return f"<Link {self.name} cap={self.capacity:g} flows={len(self.flows)}>"


class Flow:
    """One in-flight transfer."""

    __slots__ = (
        "id", "src", "dst", "size", "remaining", "rate", "links",
        "done", "_last_update", "_timer_version",
    )

    def __init__(self, fid: int, src: str, dst: str, size: float,
                 links: List[Link], done: Event, now: float) -> None:
        self.id = fid
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.links = links
        self.done = done
        self._last_update = now
        self._timer_version = 0

    def __repr__(self) -> str:
        return (f"<Flow #{self.id} {self.src}->{self.dst} "
                f"{self.remaining:.0f}/{self.size:.0f}B @{self.rate:g}B/s>")


class NetworkFabric:
    """The shared network all simulated hosts communicate over."""

    #: Residual bytes below which a flow counts as drained (guards against
    #: floating-point residue stranding a nearly-done flow).
    EPSILON = 1e-3

    def __init__(self, sim: Simulator, topology: NetworkTopology,
                 config: Optional[FabricConfig] = None) -> None:
        config = config or FabricConfig()
        config.validate()
        self.sim = sim
        self.topology = topology
        self.config = config
        self._node_tx: Dict[str, Link] = {}
        self._node_rx: Dict[str, Link] = {}
        self._site_tx: Dict[str, Link] = {}
        self._site_rx: Dict[str, Link] = {}
        self._flows: Set[Flow] = set()
        self._flow_counter = 0
        self._rebalance_scheduled = False
        #: Total bytes ever delivered, by (same-site?) class — used by tests
        #: and locality accounting.
        self.bytes_intra_site = 0.0
        self.bytes_inter_site = 0.0

    # -- link management -----------------------------------------------------
    def _nic(self, host: str, direction: str) -> Link:
        table = self._node_tx if direction == "tx" else self._node_rx
        link = table.get(host)
        if link is None:
            link = Link(f"nic-{direction}:{host}", self.config.nic_bandwidth)
            table[host] = link
        return link

    def _wan(self, site: str, direction: str) -> Link:
        table = self._site_tx if direction == "tx" else self._site_rx
        link = table.get(site)
        if link is None:
            link = Link(f"wan-{direction}:{site}", self.config.site_uplink_bandwidth)
            table[site] = link
        return link

    def _path(self, src: str, dst: str) -> Tuple[List[Link], bool]:
        """Links for a src→dst flow and whether it stays inside one site."""
        same = self.topology.same_site(src, dst)
        links = [self._nic(src, "tx")]
        if not same:
            links.append(self._wan(self.topology.site_of(src), "tx"))
            links.append(self._wan(self.topology.site_of(dst), "rx"))
        links.append(self._nic(dst, "rx"))
        return links, same

    # -- public API ------------------------------------------------------------
    def latency(self, src: str, dst: str) -> float:
        """One-way latency between two hosts."""
        if src == dst:
            return 0.0
        if self.topology.same_site(src, dst):
            return self.config.intra_site_latency
        return self.config.inter_site_latency

    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Returns an event that succeeds (value = the :class:`Flow`) when the
        last byte lands, or fails with :class:`TransferFailed` if an
        endpoint is torn down mid-transfer.  Loopback transfers complete
        after zero network time.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer {nbytes!r} bytes")
        done = self.sim.event()
        if src == dst or nbytes == 0:
            done.succeed(None)
            return done

        links, same = self._path(src, dst)
        if same:
            self.bytes_intra_site += nbytes
        else:
            self.bytes_inter_site += nbytes

        self._flow_counter += 1
        flow = Flow(self._flow_counter, src, dst, nbytes, links, done, self.sim.now)
        delay = self._setup_delay(src, dst)

        def start(_ev: Event) -> None:
            if done.triggered:  # aborted during the latency phase
                return
            self._flows.add(flow)
            flow._last_update = self.sim.now
            for link in links:
                link.flows.add(flow)
            self._mark_dirty()

        self.sim.timeout(delay).callbacks.append(start)
        return done

    def _setup_delay(self, src: str, dst: str) -> float:
        """Pre-transfer delay: one-way latency + connection setup."""
        lat = self.latency(src, dst)
        return (lat + self.config.connection_overhead
                + self.config.handshake_rtts * 2.0 * lat)

    def transfer_time_estimate(self, src: str, dst: str, nbytes: float) -> float:
        """Uncontended lower-bound duration of a transfer (for planning)."""
        if src == dst or nbytes == 0:
            return 0.0
        links, _ = self._path(src, dst)
        rate = min(l.capacity for l in links)
        return self._setup_delay(src, dst) + nbytes / rate

    def abort_host_flows(self, host: str) -> int:
        """Fail every flow touching ``host`` (node death).  Returns count."""
        victims = [f for f in self._flows if f.src == host or f.dst == host]
        for flow in victims:
            self._remove_flow(flow)
            if not flow.done.triggered:
                flow.done.fail(TransferFailed(f"endpoint {host} lost during {flow!r}"))
                flow.done.defused()  # callers may not be listening anymore
        if victims:
            self._mark_dirty()
        return len(victims)

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows (fluid phase)."""
        return len(self._flows)

    # -- fluid dynamics -----------------------------------------------------------
    def _mark_dirty(self) -> None:
        """Schedule a single rebalance at the current timestamp.

        Batching matters: heartbeat-driven scheduling starts many flows in
        the same instant, and one progressive-filling pass covers them all.
        """
        if self._rebalance_scheduled:
            return
        self._rebalance_scheduled = True

        def do(_ev: Event) -> None:
            self._rebalance_scheduled = False
            self._rebalance()

        self.sim.timeout(0.0).callbacks.append(do)

    def _advance_progress(self) -> None:
        """Drain bytes according to current rates up to `now`."""
        now = self.sim.now
        for flow in self._flows:
            dt = now - flow._last_update
            if dt > 0 and flow.rate > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            flow._last_update = now

    def _rebalance(self) -> None:
        """Progressive filling: compute max-min fair rates, reschedule timers."""
        self._advance_progress()

        # Complete any flows that drained exactly at this instant.
        finished = [f for f in self._flows if f.remaining <= self.EPSILON]
        for flow in finished:
            self._finish_flow(flow)

        if not self._flows:
            return

        # Progressive filling.  Per-link sets of not-yet-frozen flows keep
        # each round O(live links) + O(4) per frozen flow, instead of
        # rescanning every link's flow list each round.
        unfrozen_on: Dict[Link, Set[Flow]] = {}
        residual: Dict[Link, float] = {}
        for flow in self._flows:
            for link in flow.links:
                bucket = unfrozen_on.get(link)
                if bucket is None:
                    bucket = unfrozen_on[link] = set()
                    residual[link] = link.capacity
                bucket.add(flow)

        remaining_flows = len(self._flows)
        while remaining_flows > 0:
            best_share = float("inf")
            best_link: Optional[Link] = None
            for link, bucket in unfrozen_on.items():
                n = len(bucket)
                if n:
                    share = residual[link] / n
                    if share < best_share:
                        best_share = share
                        best_link = link
            if best_link is None:
                break
            for flow in list(unfrozen_on[best_link]):
                flow.rate = best_share
                self._schedule_completion(flow)
                remaining_flows -= 1
                for link in flow.links:
                    residual[link] = max(0.0, residual[link] - best_share)
                    unfrozen_on[link].discard(flow)

    def _schedule_completion(self, flow: Flow) -> None:
        flow._timer_version += 1
        version = flow._timer_version
        if flow.rate <= 0:
            return  # starved; will be rescheduled on the next rebalance
        eta = flow.remaining / flow.rate

        def on_fire(_ev: Event) -> None:
            if flow._timer_version != version or flow not in self._flows:
                return  # stale timer: rates changed since it was set
            self._advance_progress()
            if flow.remaining <= self.EPSILON:
                self._finish_flow(flow)
                self._mark_dirty()
            else:
                # Rounding left a residue; run the tail down.
                self._schedule_completion(flow)

        self.sim.timeout(eta).callbacks.append(on_fire)

    def _finish_flow(self, flow: Flow) -> None:
        self._remove_flow(flow)
        if not flow.done.triggered:
            flow.done.succeed(flow)

    def _remove_flow(self, flow: Flow) -> None:
        self._flows.discard(flow)
        flow._timer_version += 1
        for link in flow.links:
            link.flows.discard(flow)
