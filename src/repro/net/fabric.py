"""Fluid-flow network model with max-min fair bandwidth sharing.

Every byte that moves between simulated hosts — HDFS write pipelines,
remote block reads, and the MapReduce shuffle — is a :class:`Flow` through
this fabric.  A flow's path is:

- intra-site: ``src NIC(tx) → dst NIC(rx)`` (site switches assumed
  non-blocking, as Hadoop assumes for racks), or
- inter-site: ``src NIC(tx) → src site WAN uplink → dst site WAN downlink →
  dst NIC(rx)``.

Rates are the max-min fair allocation over link capacities, recomputed by
progressive filling whenever the set of flows changes.  This captures the
paper's central bandwidth asymmetry — "sites usually have very high
bandwidth between their worker nodes, and lower bandwidth to the outside
world" (§III-B1) — which is what makes site-aware placement and scheduling
pay off, and what makes the cross-site shuffle slow (§IV-D2).

Latency is charged once per transfer, before the fluid phase.

Scalability notes (what keeps 1000-node runs fast):

- rebalances are *incremental*: a flow arrival/departure only re-rates the
  connected component of flows reachable from the links it touched, so
  link-disjoint traffic (e.g. two unrelated sites shuffling internally)
  never pays for each other's churn;
- flows whose fair share did not change keep their completion timer — no
  timer storm of stale heap entries on every arrival;
- per-host flow and pending-transfer indexes make
  :meth:`NetworkFabric.abort_host_flows` O(flows touching the host);
- progress is advanced lazily per flow, never by scanning all flows.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..sim.engine import Simulator
from ..sim.events import Event
from .topology import NetworkTopology

__all__ = ["FabricConfig", "TransferFailed", "Flow", "Link", "NetworkFabric"]


@dataclass
class FabricConfig:
    """Capacities and latencies of the simulated network.

    Defaults model the paper's environment: 1 Gbps node NICs (Table III),
    multi-Gbps site uplinks shared by all of a site's workers, sub-ms LAN
    round trips and tens-of-ms WAN round trips.
    """

    #: Per-node NIC bandwidth, bytes/second (1 Gbps full duplex).
    nic_bandwidth: float = 125e6
    #: Per-site WAN uplink/downlink bandwidth, bytes/second (default 10 Gbps).
    site_uplink_bandwidth: float = 1250e6
    #: One-way latency between two nodes in the same site, seconds.
    intra_site_latency: float = 0.0005
    #: One-way latency between nodes in different sites, seconds (WAN).
    inter_site_latency: float = 0.040
    #: Extra per-transfer protocol overhead, seconds (HTTP/RPC setup; the
    #: paper notes HOG's jobtracker/tasktracker HTTP runs over the WAN).
    connection_overhead: float = 0.0
    #: Per-transfer handshake cost in round trips (TCP + HTTP setup).
    #: Charged as ``handshake_rtts * 2 * latency``, so cross-site
    #: transfers pay far more than LAN ones — "the HTTP requests and
    #: responses are over the WAN which has high latency and long
    #: transmission time compared with the LAN of a cluster ... it is
    #: expected that the startup and data transfer initiations will be
    #: increased" (§III-B2).
    handshake_rtts: float = 0.0

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical settings."""
        if self.nic_bandwidth <= 0 or self.site_uplink_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.intra_site_latency < 0 or self.inter_site_latency < 0:
            raise ValueError("latencies cannot be negative")
        if self.connection_overhead < 0 or self.handshake_rtts < 0:
            raise ValueError("connection overheads cannot be negative")


class TransferFailed(Exception):
    """A transfer was aborted (endpoint died mid-flight)."""


class Link:
    """A capacity-constrained directed resource (NIC direction or WAN leg)."""

    __slots__ = ("name", "capacity", "flows", "group_version")

    def __init__(self, name: str, capacity: float) -> None:
        self.name = name
        self.capacity = float(capacity)
        #: Flows currently traversing this link.
        self.flows: Set["Flow"] = set()
        #: Version stamp of the link's group completion timer (see
        #: ``NetworkFabric._rebalance`` single-bottleneck fast path).
        self.group_version = 0

    def __repr__(self) -> str:
        return f"<Link {self.name} cap={self.capacity:g} flows={len(self.flows)}>"


class Flow:
    """One in-flight transfer."""

    __slots__ = (
        "id", "src", "dst", "size", "remaining", "rate", "links",
        "done", "_last_update", "_timer_version", "_timer_at", "_fill_mark",
    )

    def __init__(self, fid: int, src: str, dst: str, size: float,
                 links: List[Link], done: Event, now: float) -> None:
        self.id = fid
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.links = links
        self.done = done
        self._last_update = now
        self._timer_version = 0
        #: Absolute sim time of the live completion timer (None when none).
        self._timer_at: Optional[float] = None
        #: Progressive-filling pass id this flow was last frozen in.
        self._fill_mark = 0

    def __repr__(self) -> str:
        return (f"<Flow #{self.id} {self.src}->{self.dst} "
                f"{self.remaining:.0f}/{self.size:.0f}B @{self.rate:g}B/s>")


class NetworkFabric:
    """The shared network all simulated hosts communicate over."""

    #: Residual bytes below which a flow counts as drained (guards against
    #: floating-point residue stranding a nearly-done flow).
    EPSILON = 1e-3

    #: How long a starved flow (rate pinned to zero by a degenerate
    #: progressive-filling pass) waits before forcing another rebalance.
    STARVATION_RETRY = 1.0

    #: Path-cache entries before a wholesale reset (guards memory on huge
    #: all-to-all shuffles; entries are cheap to recompute).
    _PATH_CACHE_LIMIT = 131072

    def __init__(self, sim: Simulator, topology: NetworkTopology,
                 config: Optional[FabricConfig] = None) -> None:
        config = config or FabricConfig()
        config.validate()
        self.sim = sim
        self.topology = topology
        self.config = config
        self._node_tx: Dict[str, Link] = {}
        self._node_rx: Dict[str, Link] = {}
        self._site_tx: Dict[str, Link] = {}
        self._site_rx: Dict[str, Link] = {}
        self._flows: Set[Flow] = set()
        #: host → flows in the fluid phase touching it (src or dst).
        self._flows_by_host: Dict[str, Set[Flow]] = {}
        #: host → transfers still in their latency/handshake setup phase.
        self._pending_by_host: Dict[str, Set[Flow]] = {}
        #: Links whose flow set changed since the last rebalance; the next
        #: pass only re-rates the flow component reachable from these.
        self._dirty_links: Set[Link] = set()
        #: (src, dst) → (links, same_site) memo.
        self._path_cache: Dict[Tuple[str, str], Tuple[List[Link], bool]] = {}
        self._flow_counter = 0
        self._rebalance_scheduled = False
        #: Total bytes ever delivered, by (same-site?) class — used by tests
        #: and locality accounting.
        self.bytes_intra_site = 0.0
        self.bytes_inter_site = 0.0
        #: Highwater mark of concurrent fluid-phase flows (benchmarks).
        self.peak_flows = 0
        #: Progressive-filling passes executed (benchmarks / perf tests).
        self.rebalances = 0
        #: Times the zero-rate starvation guard had to rescue a flow.
        self.starvation_rescues = 0

    # -- link management -----------------------------------------------------
    def _nic(self, host: str, direction: str) -> Link:
        table = self._node_tx if direction == "tx" else self._node_rx
        link = table.get(host)
        if link is None:
            link = Link(f"nic-{direction}:{host}", self.config.nic_bandwidth)
            table[host] = link
        return link

    def _wan(self, site: str, direction: str) -> Link:
        table = self._site_tx if direction == "tx" else self._site_rx
        link = table.get(site)
        if link is None:
            link = Link(f"wan-{direction}:{site}", self.config.site_uplink_bandwidth)
            table[site] = link
        return link

    def _path(self, src: str, dst: str) -> Tuple[List[Link], bool]:
        """Links for a src→dst flow and whether it stays inside one site.

        Memoised: topology site assignments are resolve-once, so a host
        pair's path never changes and repeated transfers (shuffle fetches,
        block reads) skip the topology lookups entirely.
        """
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        same = self.topology.same_site(src, dst)
        links = [self._nic(src, "tx")]
        if not same:
            links.append(self._wan(self.topology.site_of(src), "tx"))
            links.append(self._wan(self.topology.site_of(dst), "rx"))
        links.append(self._nic(dst, "rx"))
        if len(self._path_cache) >= self._PATH_CACHE_LIMIT:
            self._path_cache.clear()
        self._path_cache[key] = (links, same)
        return links, same

    # -- public API ------------------------------------------------------------
    def latency(self, src: str, dst: str) -> float:
        """One-way latency between two hosts."""
        if src == dst:
            return 0.0
        if self.topology.same_site(src, dst):
            return self.config.intra_site_latency
        return self.config.inter_site_latency

    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Returns an event that succeeds (value = the :class:`Flow`) when the
        last byte lands, or fails with :class:`TransferFailed` if an
        endpoint is torn down mid-transfer.  Loopback transfers complete
        after zero network time.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer {nbytes!r} bytes")
        done = self.sim.event()
        if src == dst or nbytes == 0:
            done.succeed(None)
            return done

        links, same = self._path(src, dst)
        if same:
            self.bytes_intra_site += nbytes
        else:
            self.bytes_inter_site += nbytes

        self._flow_counter += 1
        flow = Flow(self._flow_counter, src, dst, nbytes, links, done, self.sim.now)
        delay = self._setup_delay(src, dst)
        # Index the setup-phase transfer so endpoint death during the
        # latency/handshake window aborts it instead of letting it start
        # and "deliver" bytes to a dead host.
        self._pending_by_host.setdefault(src, set()).add(flow)
        self._pending_by_host.setdefault(dst, set()).add(flow)

        def start(_ev: Event) -> None:
            self._unindex_pending(flow)
            if done.triggered:  # aborted during the latency phase
                return
            self._flows.add(flow)
            nflows = len(self._flows)
            if nflows > self.peak_flows:
                self.peak_flows = nflows
            self._flows_by_host.setdefault(src, set()).add(flow)
            self._flows_by_host.setdefault(dst, set()).add(flow)
            flow._last_update = self.sim.now
            for link in links:
                link.flows.add(flow)
            self._dirty_links.update(links)
            self._mark_dirty()

        self.sim.timeout(delay).callbacks.append(start)
        return done

    def _unindex_pending(self, flow: Flow) -> None:
        for host in (flow.src, flow.dst):
            bucket = self._pending_by_host.get(host)
            if bucket is not None:
                bucket.discard(flow)
                if not bucket:
                    del self._pending_by_host[host]

    def _setup_delay(self, src: str, dst: str) -> float:
        """Pre-transfer delay: one-way latency + connection setup."""
        lat = self.latency(src, dst)
        return (lat + self.config.connection_overhead
                + self.config.handshake_rtts * 2.0 * lat)

    def transfer_time_estimate(self, src: str, dst: str, nbytes: float) -> float:
        """Uncontended lower-bound duration of a transfer (for planning)."""
        if src == dst or nbytes == 0:
            return 0.0
        links, _ = self._path(src, dst)
        rate = min(l.capacity for l in links)
        return self._setup_delay(src, dst) + nbytes / rate

    def abort_host_flows(self, host: str) -> int:
        """Fail every transfer touching ``host`` (node death): flows in the
        fluid phase *and* transfers still in their setup delay.  Returns the
        number of aborted transfers."""
        victims = list(self._flows_by_host.get(host, ()))
        for flow in victims:
            self._remove_flow(flow)
            if not flow.done.triggered:
                flow.done.fail(TransferFailed(f"endpoint {host} lost during {flow!r}"))
                flow.done.defused()  # callers may not be listening anymore
        pending = list(self._pending_by_host.get(host, ()))
        for flow in pending:
            self._unindex_pending(flow)
            if not flow.done.triggered:
                flow.done.fail(TransferFailed(
                    f"endpoint {host} lost while setting up {flow!r}"))
                flow.done.defused()
        return len(victims) + len(pending)

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows (fluid phase)."""
        return len(self._flows)

    # -- fluid dynamics -----------------------------------------------------------
    def _mark_dirty(self) -> None:
        """Schedule a single rebalance at the current timestamp.

        Batching matters: heartbeat-driven scheduling starts many flows in
        the same instant, and one progressive-filling pass covers them all.
        """
        if self._rebalance_scheduled:
            return
        self._rebalance_scheduled = True

        def do(_ev: Event) -> None:
            self._rebalance_scheduled = False
            self._rebalance()

        self.sim.timeout(0.0).callbacks.append(do)

    @staticmethod
    def _advance_flow(flow: Flow, now: float) -> None:
        """Drain one flow's bytes according to its current rate up to `now`."""
        dt = now - flow._last_update
        if dt > 0 and flow.rate > 0:
            flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
        flow._last_update = now

    def _rebalance(self) -> None:
        """Progressive filling over the affected component only: compute
        max-min fair rates, rescheduling timers just for flows whose rate
        actually changed.

        The component walk (connected flows over shared links, seeded from
        the dirty links) is fused with progress advancement: each flow is
        drained up to `now` the moment the walk discovers it.  Link-disjoint
        flow sets are skipped entirely — their max-min rates are unaffected
        by the change, and their completion timers stay valid."""
        if not self._dirty_links:
            return
        self.rebalances += 1
        now = self.sim.now
        eps = self.EPSILON

        affected: Set[Flow] = set()
        links_seen: Set[Link] = set(self._dirty_links)
        links = list(links_seen)
        drained: List[Flow] = []
        frontier: List[Flow] = []
        extend = frontier.extend
        pop = frontier.pop
        add_flow = affected.add
        add_link = links_seen.add
        push_link = links.append
        for link in links:
            extend(link.flows)
        while frontier:
            flow = pop()
            if flow in affected:
                continue
            add_flow(flow)
            dt = now - flow._last_update
            if dt > 0.0 and flow.rate > 0.0:
                rem = flow.remaining - flow.rate * dt
                flow.remaining = rem if rem > 0.0 else 0.0
            flow._last_update = now
            if flow.remaining <= eps:
                drained.append(flow)
            for link in flow.links:
                if link not in links_seen:
                    add_link(link)
                    push_link(link)
                    extend(link.flows)
        self._dirty_links.clear()

        # Complete any flows that drained exactly at this instant.  Their
        # links stay in scope (co-flows are already in `affected`), so the
        # freed capacity is redistributed by this same pass.
        for flow in drained:
            affected.discard(flow)
            self._remove_flow(flow, requeue=False)
            if not flow.done.triggered:
                flow.done.succeed(flow)

        if not affected:
            return

        # Every flow on a component link is in `affected` (closure), so the
        # per-link unfrozen count is just the link's live flow count — no
        # per-flow build loop needed.
        ucount: Dict[Link, int] = {}
        heap = []
        seq = 0
        for link in links:
            n = len(link.flows)
            if n:
                ucount[link] = n
                heap.append((link.capacity / n, seq, link))
                seq += 1

        # Single-bottleneck fast path: when the minimum-share link carries
        # *every* component flow, round one of progressive filling freezes
        # the whole component at that share.  Arm ONE group timer on the
        # link (aimed at the earliest finish) instead of per-flow timers —
        # this is what keeps a 1000-flow flood through one NIC (the glidein
        # package downloads, reducer fan-in) at O(1) timers per change
        # instead of O(flows).
        best_share, _, best_link = min(heap)
        if ucount[best_link] == len(affected):
            min_remaining = float("inf")
            for flow in affected:
                flow.rate = best_share
                if flow.remaining < min_remaining:
                    min_remaining = flow.remaining
            self._arm_group_timer(best_link, min_remaining / best_share)
            return

        # Progressive filling.  Per-link residual capacity and unfrozen
        # counts (no per-pass flow sets — freezing is recorded by stamping
        # the flow with this pass's id) plus a lazy min-heap of
        # (fair share, link) candidates.  Heap entries self-validate on
        # pop: shares only grow as competitors freeze, so a stale entry is
        # re-pushed with its recomputed share.
        pid = self.rebalances  # this pass's fill-mark stamp
        residual: Dict[Link, float] = {link: link.capacity for link in ucount}
        heapq.heapify(heap)

        remaining_flows = len(affected)
        while remaining_flows > 0 and heap:
            share, _, link = heapq.heappop(heap)
            n = ucount[link]
            if n == 0:
                continue  # all this link's flows froze via other links
            cur = residual[link] / n
            if cur > share:
                heapq.heappush(heap, (cur, seq, link))
                seq += 1
                continue  # stale entry: competitors froze since the push
            if cur <= 0.0:
                # Degenerate residual (floating-point underflow after many
                # freeze rounds).  A zero rate would strand the flow with
                # no completion timer; fall back to an exactly recomputed
                # residual, or a plain fair split of the link (the
                # oversubscription is bounded by the rounding residue).
                frozen_sum = 0.0
                unfrozen = 0
                for f in link.flows:
                    if f._fill_mark == pid:
                        frozen_sum += f.rate
                    else:
                        unfrozen += 1
                exact = link.capacity - frozen_sum
                if exact > 0.0:
                    cur = exact / unfrozen
                else:
                    cur = link.capacity / len(link.flows)
                self.starvation_rescues += unfrozen
            best_share = cur
            for flow in link.flows:
                if flow._fill_mark == pid:
                    continue
                flow._fill_mark = pid
                flow.rate = best_share
                # Keep-aware re-arm: a live timer firing at or before the
                # new completion time re-aims itself; only a flow that
                # would otherwise finish late needs a fresh timer.
                armed = flow._timer_at
                if armed is None or armed > now + flow.remaining / best_share:
                    self._schedule_completion(flow)
                remaining_flows -= 1
                for l2 in flow.links:
                    r = residual[l2] - best_share
                    residual[l2] = r if r > 0.0 else 0.0
                    ucount[l2] -= 1

    def _arm_group_timer(self, link: Link, eta: float) -> None:
        """One timer for a whole single-bottleneck flow group.

        Fires at the group's earliest completion and simply marks the link
        dirty: the resulting pass drains whatever finished, re-rates the
        survivors, and re-arms.  The cascade finishes every flow at its
        exact completion instant with one timer per change instead of one
        per flow."""
        link.group_version += 1
        version = link.group_version

        def on_fire(_ev: Event) -> None:
            if link.group_version != version or not link.flows:
                return
            self._dirty_links.add(link)
            self._mark_dirty()

        self.sim.timeout(eta if eta > 0.0 else 0.0).callbacks.append(on_fire)

    def _schedule_completion(self, flow: Flow) -> None:
        if flow.rate <= 0:
            # Starved.  Waiting for "the next rebalance" is not enough — if
            # no other flow ever arrives or departs there is none, and the
            # transfer (and anyone waiting on it) hangs forever.  Force a
            # retry pass; the filling guard above then assigns a real rate.
            flow._timer_version += 1
            flow._timer_at = None
            version = flow._timer_version

            def retry(_ev: Event) -> None:
                if flow._timer_version != version or flow not in self._flows:
                    return
                if flow.rate > 0:
                    return
                self._dirty_links.update(flow.links)
                self._mark_dirty()

            self.sim.timeout(self.STARVATION_RETRY).callbacks.append(retry)
            return

        now = self.sim.now
        fire_at = now + flow.remaining / flow.rate
        armed = flow._timer_at
        if armed is not None and armed <= fire_at:
            # The live timer fires at or before the new completion time; it
            # re-checks and re-aims on firing.  Slowing down (competitors
            # arrived) therefore never allocates a new timer — only a
            # speed-up (earlier finish) does.
            return
        flow._timer_version += 1
        flow._timer_at = fire_at
        version = flow._timer_version

        def on_fire(_ev: Event) -> None:
            if flow._timer_version != version or flow not in self._flows:
                return  # stale timer: rates changed since it was set
            flow._timer_at = None
            self._advance_flow(flow, self.sim.now)
            if flow.remaining <= self.EPSILON:
                self._finish_flow(flow)
            else:
                # Fired early (rate dropped meanwhile) or rounding left a
                # residue; aim again at the updated completion time.
                self._schedule_completion(flow)

        self.sim.timeout(fire_at - now).callbacks.append(on_fire)

    def _finish_flow(self, flow: Flow) -> None:
        self._remove_flow(flow)
        if not flow.done.triggered:
            flow.done.succeed(flow)

    def _remove_flow(self, flow: Flow, requeue: bool = True) -> None:
        """Drop a flow from every index.  ``requeue`` marks its links dirty
        and schedules a pass so survivors can claim the freed capacity (off
        only when called from inside a rebalance, which already has the
        links in scope)."""
        self._flows.discard(flow)
        for host in (flow.src, flow.dst):
            bucket = self._flows_by_host.get(host)
            if bucket is not None:
                bucket.discard(flow)
                if not bucket:
                    del self._flows_by_host[host]
        flow._timer_version += 1
        for link in flow.links:
            link.flows.discard(flow)
        if requeue:
            # Only links that still carry traffic can redistribute the
            # freed capacity; a departure from empty links needs no pass.
            dirty = [link for link in flow.links if link.flows]
            if dirty:
                self._dirty_links.update(dirty)
                self._mark_dirty()
