"""Network substrate: topology (site awareness) and the shared fabric."""

from .fabric import FabricConfig, Flow, Link, NetworkFabric, TransferFailed
from .topology import (
    DEFAULT_SITE,
    DnsSiteResolver,
    FlatResolver,
    NetworkTopology,
    SiteResolver,
)

__all__ = [
    "NetworkTopology",
    "SiteResolver",
    "DnsSiteResolver",
    "FlatResolver",
    "DEFAULT_SITE",
    "NetworkFabric",
    "FabricConfig",
    "Flow",
    "Link",
    "TransferFailed",
]
