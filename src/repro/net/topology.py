"""Grid network topology: hosts grouped into sites.

The paper (§III-B1) replaces Hadoop's rack awareness with *site awareness*:
worker nodes are classified by the last two labels of their DNS name
(``workername.site.edu`` → site ``site.edu``) using a topology script
configured as ``topology.script.file.name``.  :class:`DnsSiteResolver`
implements exactly that rule; :class:`NetworkTopology` is the registry the
Namenode and JobTracker consult.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "DEFAULT_SITE",
    "SiteResolver",
    "DnsSiteResolver",
    "FlatResolver",
    "NetworkTopology",
]

#: Site assigned to hosts the resolver cannot classify (mirrors Hadoop's
#: ``/default-rack``).
DEFAULT_SITE = "default-site"


class SiteResolver:
    """Maps a hostname to a site (failure/bandwidth domain) name.

    Subclasses implement :meth:`resolve`.  This plays the role of Hadoop's
    ``topology.script.file.name`` executable.
    """

    def resolve(self, hostname: str) -> str:
        """Return the site name for ``hostname``."""
        raise NotImplementedError


class DnsSiteResolver(SiteResolver):
    """The paper's DNS rule: site = last ``labels`` DNS labels of the host.

    ``node07.red.unl.edu`` → ``unl.edu`` with the default ``labels=2``.
    Hostnames with fewer labels than required fall back to
    :data:`DEFAULT_SITE`.
    """

    def __init__(self, labels: int = 2) -> None:
        if labels < 1:
            raise ValueError("labels must be >= 1")
        self.labels = labels

    def resolve(self, hostname: str) -> str:
        parts = hostname.strip().strip(".").split(".")
        if len(parts) <= self.labels:
            return DEFAULT_SITE
        return ".".join(parts[-self.labels:])


class FlatResolver(SiteResolver):
    """Places every host in one site — models a single-rack dedicated
    cluster (the paper's Table III baseline is configured as one rack)."""

    def __init__(self, site: str = "local-cluster") -> None:
        self.site = site

    def resolve(self, hostname: str) -> str:
        return self.site


class NetworkTopology:
    """Registry of known hosts and their site assignments.

    Mirrors Hadoop's ``NetworkTopology``: hosts are resolved once, on first
    contact (the topology script "is executed each time a new node is
    discovered by the namenode and the jobtracker").
    """

    #: Pair-cache entries before a wholesale reset (bounds memory on huge
    #: all-to-all communication patterns).
    _PAIR_CACHE_LIMIT = 262144

    def __init__(self, resolver: Optional[SiteResolver] = None) -> None:
        self._resolver = resolver or DnsSiteResolver()
        self._site_of: Dict[str, str] = {}
        self._members: Dict[str, List[str]] = {}
        #: (a, b) → same-site? memo; the locality test is the hottest
        #: lookup in the system (placement, scheduling, and every fabric
        #: path computation go through it).
        self._same_site_cache: Dict[tuple, bool] = {}
        self._resolutions = 0

    @property
    def resolutions(self) -> int:
        """How many times the resolver script has been invoked."""
        return self._resolutions

    def add_host(self, hostname: str) -> str:
        """Register ``hostname``; returns its site.  Idempotent."""
        site = self._site_of.get(hostname)
        if site is None:
            site = self._resolver.resolve(hostname)
            self._resolutions += 1
            self._site_of[hostname] = site
            self._members.setdefault(site, []).append(hostname)
        return site

    def remove_host(self, hostname: str) -> None:
        """Forget ``hostname`` (e.g. permanently decommissioned)."""
        site = self._site_of.pop(hostname, None)
        if site is not None:
            self._members[site].remove(hostname)
            if not self._members[site]:
                del self._members[site]
            # A stateful resolver could re-classify the host on re-add.
            self._same_site_cache.clear()

    def site_of(self, hostname: str) -> str:
        """Site of a registered host (registers it if unknown)."""
        return self._site_of.get(hostname) or self.add_host(hostname)

    def knows(self, hostname: str) -> bool:
        """True if the host has been registered."""
        return hostname in self._site_of

    def same_site(self, a: str, b: str) -> bool:
        """True if two hosts share a site (the locality test used by both
        block placement and map-task scheduling).  Memoised per pair."""
        key = (a, b)
        hit = self._same_site_cache.get(key)
        if hit is None:
            hit = self.site_of(a) == self.site_of(b)
            if len(self._same_site_cache) >= self._PAIR_CACHE_LIMIT:
                self._same_site_cache.clear()
            self._same_site_cache[key] = hit
        return hit

    def sites(self) -> List[str]:
        """All sites with at least one registered host."""
        return sorted(self._members)

    def hosts_in(self, site: str) -> List[str]:
        """Registered hosts in ``site``."""
        return list(self._members.get(site, ()))

    def num_hosts(self) -> int:
        """Total registered hosts."""
        return len(self._site_of)

    def distance(self, a: str, b: str) -> int:
        """Hadoop-style distance: 0 same node, 2 same site, 4 cross-site."""
        if a == b:
            return 0
        return 2 if self.same_site(a, b) else 4

    def __repr__(self) -> str:
        return f"<NetworkTopology {len(self._site_of)} hosts in {len(self._members)} sites>"
