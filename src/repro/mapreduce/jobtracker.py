"""The simulated JobTracker: job lifecycle, tracker tracking, failure
handling.

The jobtracker lives on the stable central server next to the namenode
(§III-B).  Tasktrackers "report their status to the jobtracker and accept
task assignments from it"; assignment happens when a heartbeat arrives
from a tracker with free slots, mirroring MR1.

Grid failure handling implemented here:

- tracker expiry (no heartbeat for ``tracker_expiry`` seconds → lost):
  running attempts are re-queued, and completed *map* outputs on the lost
  node are re-executed if any unfinished reduce still needs them;
- shuffle fetch failures: reported by reducers; the map re-runs when its
  output host is gone;
- per-job tracker blacklisting after repeated failures (which is what
  eventually sidelines §IV-D1 zombie tasktrackers).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

from ..hdfs.block import Block
from ..hdfs.namenode import Namenode
from ..net.topology import NetworkTopology
from ..sim.engine import Simulator
from ..sim.events import Event, Interrupt
from ..sim.monitor import CounterSet
from .config import MRConfig
from .job import (
    Job,
    JobSpec,
    JobStatus,
    MapOutput,
    Task,
    TaskAttempt,
    TaskStatus,
    TaskType,
)
from .tasktracker import TaskTracker

__all__ = ["JobTracker", "TrackerDescriptor", "JobFailedError"]


class JobFailedError(Exception):
    """A job exhausted its retries."""


class TrackerDescriptor:
    """Jobtracker-side view of one tasktracker."""

    __slots__ = ("tracker", "last_heartbeat", "alive")

    def __init__(self, tracker: TaskTracker, now: float) -> None:
        self.tracker = tracker
        self.last_heartbeat = now
        self.alive = True

    @property
    def host(self) -> str:
        """Hostname of the tracked tasktracker."""
        return self.tracker.host


class JobTracker:
    """Master scheduler for the simulated MapReduce framework."""

    def __init__(self, sim: Simulator, namenode: Namenode,
                 topology: NetworkTopology,
                 config: Optional[MRConfig] = None,
                 scheduler_factory: Optional[Callable] = None) -> None:
        self.sim = sim
        self.namenode = namenode
        self.topology = topology
        self.config = config or MRConfig()
        self.config.validate()
        if scheduler_factory is None:
            scheduler_factory = self._resolve_scheduler(self.config.scheduler)
        #: Bumped whenever the schedulable-job list changes (submit or
        #: finish).  The scheduler's cluster index reconciles only when
        #: this moves, making its per-heartbeat sync O(1).
        self.jobs_version = 0
        #: Monotonic submit counter.  Unlike ``len(active_jobs())`` it
        #: never moves on job *completion* — matchmaking's marker reset
        #: keys off it (a finish must not clear markers; a submit plus a
        #: finish at one instant must).
        self.jobs_submitted_seq = 0
        #: Heartbeats processed / distinct heartbeat rounds started.  A
        #: *round* is one (sim instant, jobs_version) pair: every tracker
        #: heartbeating at that instant shares the round's snapshots.
        self.heartbeats = 0
        self.heartbeat_rounds = 0
        self._round_key: Optional[tuple] = None
        self._trackers: Dict[str, TrackerDescriptor] = {}
        #: Lazy (deadline, host) min-heap for tracker expiry: entries are
        #: pushed on (re-)registration, never per heartbeat, and deadlines
        #: are recomputed from ``last_heartbeat`` on pop — the monitor's
        #: tick is O(expired) instead of O(trackers).
        self._expiry_heap: List[Tuple[float, str]] = []
        #: Set when a live tracker is replaced in place (its running
        #: attempts are orphaned with no failure report); gates the
        #: monitor's requeue safety-net scan so steady-state ticks skip it.
        self._needs_orphan_scan = False
        self._jobs: List[Job] = []
        self._next_job_id = 0
        self.scheduler = scheduler_factory(self)
        self._input_blocks: Dict[int, List[Block]] = {}
        #: Fetch-failure strikes per (job_id, map_index).
        self._fetch_failures: Dict[tuple, int] = {}
        #: Per-job, per-tracker attempt failures (drives blacklisting).
        self._tracker_failures: Dict[tuple, int] = {}
        self.counters = CounterSet()
        #: Optional :class:`~repro.obs.trace.Tracer` for job/attempt spans
        #: and heartbeat-round marks; ``None`` disables all emission.
        self.tracer = None
        #: Fired with the Job whenever one finishes (success or failure).
        self.job_done_listeners: List[Callable[[Job], None]] = []
        #: Fired with the live-tracker count whenever it changes (the
        #: "believed" node count of Figure 5 — recorded change-driven
        #: instead of being polled on a 5 s grid).
        self.tracker_count_listeners: List[Callable[[int], None]] = []
        self._live_trackers = 0
        #: Cached active-job list; invalidated on submit and job finish.
        #: The scheduler asks for it on every heartbeat.
        self._active_jobs_cache: Optional[List[Job]] = None
        #: when_jobs_done event → its job_done listener (for cancel_wait).
        self._job_waiters: Dict[Event, Callable[[Job], None]] = {}
        self._monitor_started = False

    @staticmethod
    def _resolve_scheduler(name: str):
        """Map a config scheduler name to its class (import-cycle safe)."""
        from .delay_scheduler import DelayScheduler
        from .matchmaking import MatchmakingScheduler
        from .scheduler import FifoScheduler
        return {"fifo": FifoScheduler, "delay": DelayScheduler,
                "matchmaking": MatchmakingScheduler}[name]

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        """Start the tracker-expiry monitor."""
        if self._monitor_started:
            return
        self._monitor_started = True
        self.sim.process(self._expiry_monitor(), name="jt-expiry-monitor")

    def heartbeat_interval(self) -> float:
        """Per-tracker heartbeat period: the configured floor, lengthened
        as the cluster grows so the jobtracker's cluster-wide heartbeat
        rate stays near ``config.heartbeats_per_second`` (stock Hadoop
        1.x behaviour).  Small clusters always get the floor."""
        rate = self.config.heartbeats_per_second
        base = self.config.heartbeat_interval
        if rate <= 0:
            return base
        return max(base, self._live_trackers / rate)

    def tracker_expiry(self) -> float:
        """Effective no-heartbeat expiry: the configured value, stretched
        to several adaptive periods so scaled-up clusters do not flap
        trackers whose period exceeds the configured expiry."""
        return max(self.config.tracker_expiry, 4.0 * self.heartbeat_interval())

    def _expiry_monitor(self):
        heap = self._expiry_heap
        try:
            while True:
                yield self.sim.timeout(self.config.expiry_check_period)
                now = self.sim.now
                # Re-derive per tick: the effective expiry tracks the
                # adaptive heartbeat period as the cluster grows/shrinks.
                expiry = self.tracker_expiry()
                cutoff = now - expiry
                # Lazy heap: an entry's deadline is a *lower bound* on the
                # tracker's true deadline (heartbeats only push it later),
                # so anything with heap deadline >= now is provably alive
                # and the tick costs O(actually-expired).
                while heap and heap[0][0] < now:
                    _, host = heappop(heap)
                    desc = self._trackers.get(host)
                    if desc is None or not desc.alive:
                        continue  # lost/replaced; revival pushes anew
                    if desc.last_heartbeat < cutoff:
                        self._lost_tracker(desc)
                    else:
                        heappush(heap, (desc.last_heartbeat + expiry, host))
                # Safety net: a task whose every attempt died without a
                # failure report (a live tracker replaced in place) must
                # return to the pending queue.  Only that replacement path
                # orphans attempts silently, so the scan is gated on it.
                if self._needs_orphan_scan:
                    self._needs_orphan_scan = False
                    for job in self.active_jobs():
                        for task in list(job.running_map_tasks):
                            self._requeue_if_needed(task)
                        for task in list(job.running_reduce_tasks):
                            self._requeue_if_needed(task)
        except Interrupt:
            return

    # -- tracker protocol ------------------------------------------------------------
    def _live_count_changed(self, delta: int) -> None:
        self._live_trackers += delta
        for cb in self.tracker_count_listeners:
            cb(self._live_trackers)

    def register_tracker(self, tracker: TaskTracker) -> None:
        """First contact from a tasktracker; resolves its site."""
        self.topology.add_host(tracker.host)
        old = self._trackers.get(tracker.host)
        self._trackers[tracker.host] = TrackerDescriptor(tracker, self.sim.now)
        self.counters.incr("trackers_registered")
        if old is None or not old.alive:
            # Dead/unknown hosts have no live heap entry; give them one.
            heappush(self._expiry_heap,
                     (self.sim.now + self.tracker_expiry(), tracker.host))
            self._live_count_changed(+1)
        elif old.tracker is not tracker:
            # A live tracker replaced in place: its running attempts die
            # without any failure report.  Flag the monitor's safety net.
            self._needs_orphan_scan = True

    def heartbeat(self, tracker: TaskTracker) -> None:
        """Tracker status report; schedules tasks onto its free slots."""
        desc = self._trackers.get(tracker.host)
        if desc is None or desc.tracker is not tracker:
            self.register_tracker(tracker)
            desc = self._trackers[tracker.host]
        desc.last_heartbeat = self.sim.now
        if not desc.alive:
            desc.alive = True
            self.counters.incr("trackers_reregistered")
            heappush(self._expiry_heap,
                     (self.sim.now + self.tracker_expiry(), tracker.host))
            self._live_count_changed(+1)
        self.heartbeats += 1
        round_key = (self.sim.now, self.jobs_version)
        if round_key != self._round_key:
            # First heartbeat of this (instant, job-list) round: let the
            # scheduler refresh its round-scoped snapshots once; the other
            # trackers landing at this instant share them.
            self._round_key = round_key
            self.heartbeat_rounds += 1
            tr = self.tracer
            if tr is not None:
                tr.instant("control", "heartbeat-round", self.sim.now,
                           "jobtracker", args={"round": self.heartbeat_rounds,
                                               "trackers": self._live_trackers})
            self.scheduler.begin_round()
        for task, speculative, locality in self.scheduler.assign(tracker):
            self._launch(task, tracker, speculative, locality)

    def _lost_tracker(self, desc: TrackerDescriptor) -> None:
        """Heartbeat expiry: recover the lost node's work."""
        desc.alive = False
        self._live_count_changed(-1)
        host = desc.host
        self.counters.incr("trackers_lost")
        # 1. Re-queue attempts that were running there.  Attempts may
        #    already be marked failed (the kill happened before expiry);
        #    what matters is returning their tasks to the pending queue.
        for job in self.active_jobs():
            for task in list(job.running_map_tasks) + list(job.running_reduce_tasks):
                for attempt in task.running_attempts:
                    if attempt.tracker.host == host:
                        self.trace_attempt(attempt, "lost")
                        attempt.status = TaskStatus.FAILED
                self._requeue_if_needed(task)
            # 2. Re-execute completed maps whose output lived on the lost
            #    node and is still needed by an unfinished reduce.
            for idx, output in list(job.map_outputs.items()):
                if output.host != host:
                    continue
                if self._output_still_needed(job, output):
                    job.retract_map_output(idx)
                    task = job.maps[idx]
                    if task.status == TaskStatus.COMPLETED:
                        task.set_status(TaskStatus.PENDING)
                        task.finish_time = None
                        task.completed_on = None
                        self.counters.incr("maps_reexecuted")

    @staticmethod
    def _output_still_needed(job: Job, output: MapOutput) -> bool:
        for reduce in job.reduces:
            if reduce.status != TaskStatus.COMPLETED and \
                    reduce.index not in output.fetched_by:
                return True
        return False

    def _requeue_if_needed(self, task: Task) -> None:
        if task.status == TaskStatus.RUNNING and not task.running_attempts:
            task.set_status(TaskStatus.PENDING)

    def live_tracker_count(self) -> int:
        """Trackers the jobtracker currently believes alive (O(1))."""
        return self._live_trackers

    def tracker(self, host: str) -> TaskTracker:
        """The tracker object registered at ``host``."""
        return self._trackers[host].tracker

    # -- job lifecycle ----------------------------------------------------------------
    def submit_job(self, spec: JobSpec) -> Job:
        """Accept a job whose input file already exists in HDFS."""
        spec.validate()
        fi = self.namenode.get_file(spec.input_file)
        data_blocks = [b for b in fi.blocks if b.size > 0]
        if len(data_blocks) < spec.num_maps:
            raise ValueError(
                f"input {spec.input_file} has {len(data_blocks)} blocks, "
                f"job wants {spec.num_maps} maps")
        job = Job(self._next_job_id, spec, self.sim.now)
        self._next_job_id += 1
        self._jobs.append(job)
        self._input_blocks[job.job_id] = data_blocks[:spec.num_maps]
        self._active_jobs_cache = None
        self.jobs_version += 1
        self.jobs_submitted_seq += 1
        self.counters.incr("jobs_submitted")
        return job

    def input_blocks(self, job: Job) -> List[Block]:
        """The input blocks (one per map task) of a job."""
        return self._input_blocks[job.job_id]

    def jobs(self) -> List[Job]:
        """All jobs ever submitted, in submit order."""
        return list(self._jobs)

    def active_jobs(self) -> List[Job]:
        """Jobs not yet finished, in FIFO order (cached between changes)."""
        cache = self._active_jobs_cache
        if cache is None:
            cache = self._active_jobs_cache = [
                j for j in self._jobs
                if j.status in (JobStatus.WAITING, JobStatus.RUNNING)]
        return cache

    def schedulable_jobs(self) -> List[Job]:
        """FIFO view the scheduler iterates."""
        return self.active_jobs()

    def when_jobs_done(self, jobs: List[Job]) -> Event:
        """An event firing the instant every job in ``jobs`` has finished
        (succeeded or failed).

        This is the event-driven replacement for polling job states on a
        fixed time grid: ``sim.run_until(jt.when_jobs_done(jobs))`` stops
        at the exact finish timestamp of the last job.  A caller that
        abandons the wait (timeout) should pass the event to
        :meth:`cancel_wait` so the listener is released."""
        done = self.sim.event()
        waiting = {j.job_id for j in jobs if j.finish_time is None}
        if not waiting:
            done.succeed(self.sim.now)
            return done

        def on_job_done(job: Job) -> None:
            waiting.discard(job.job_id)
            if not waiting and not done.triggered:
                self.cancel_wait(done)
                done.succeed(self.sim.now)

        self.job_done_listeners.append(on_job_done)
        self._job_waiters[done] = on_job_done
        return done

    def cancel_wait(self, event: Event) -> None:
        """Release the listener behind an abandoned :meth:`when_jobs_done`
        event (timeout paths).  Idempotent."""
        listener = self._job_waiters.pop(event, None)
        if listener is not None:
            try:
                self.job_done_listeners.remove(listener)
            except ValueError:
                pass

    # -- task events --------------------------------------------------------------------
    def _launch(self, task: Task, tracker: TaskTracker, speculative: bool,
                locality: str) -> None:
        job = task.job
        if job.status == JobStatus.WAITING:
            job.status = JobStatus.RUNNING
            job.start_time = self.sim.now
        attempt = TaskAttempt(task, tracker, self.sim.now, speculative)
        task.attempts.append(attempt)
        job.note_attempt_launched(attempt)
        if task.status == TaskStatus.PENDING:
            task.set_status(TaskStatus.RUNNING)
        if task.type == TaskType.MAP and not speculative:
            job.locality_counters[locality] += 1
        if speculative:
            self.counters.incr("speculative_attempts")
        self.counters.incr(f"{task.type}_attempts_launched")
        tracker.launch(attempt)

    def trace_attempt(self, attempt: TaskAttempt, outcome: str) -> None:
        """Emit the attempt's causal span (``task`` category).

        The span covers launch → report on the executing tracker's lane,
        parented to the owning job's span id, so Perfetto shows the full
        job → attempt → shuffle chain.
        """
        tr = self.tracer
        if tr is None:
            return
        task = attempt.task
        tr.span("task", f"{task.type}-{task.index}",
                attempt.start_time, self.sim.now,
                track=attempt.tracker.host,
                span_id=f"a{attempt.attempt_id}",
                parent=f"j{task.job.job_id}",
                args={"outcome": outcome,
                      "speculative": attempt.speculative})

    def _trace_job(self, job: Job) -> None:
        """Emit the job's submit → finish span (``job`` category)."""
        tr = self.tracer
        if tr is None:
            return
        tr.span("job", f"job-{job.job_id}", job.submit_time, self.sim.now,
                track="jobtracker", span_id=f"j{job.job_id}",
                args={"status": str(job.status),
                      "maps": job.spec.num_maps,
                      "reduces": job.spec.num_reduces})

    def map_attempt_completed(self, attempt: TaskAttempt,
                              output: MapOutput) -> None:
        """A map attempt finished; first winner completes the task."""
        self.trace_attempt(attempt, "completed")
        task = attempt.task
        job = task.job
        if task.status == TaskStatus.COMPLETED or job.status != JobStatus.RUNNING:
            return  # lost the speculation race (or job already over)
        task.set_status(TaskStatus.COMPLETED)
        task.finish_time = self.sim.now
        task.completed_on = attempt.tracker.host
        job.note_task_duration(task.type, self.sim.now - attempt.start_time)
        self._kill_other_attempts(task, attempt)
        job.publish_map_output(output)
        self.counters.incr("maps_completed")
        self._maybe_finish_job(job)

    def reduce_attempt_completed(self, attempt: TaskAttempt) -> None:
        """A reduce attempt finished; first winner completes the task."""
        self.trace_attempt(attempt, "completed")
        task = attempt.task
        job = task.job
        if task.status == TaskStatus.COMPLETED or job.status != JobStatus.RUNNING:
            return
        task.set_status(TaskStatus.COMPLETED)
        task.finish_time = self.sim.now
        task.completed_on = attempt.tracker.host
        job.note_task_duration(task.type, self.sim.now - attempt.start_time)
        self._kill_other_attempts(task, attempt)
        self.counters.incr("reduces_completed")
        self._maybe_finish_job(job)

    def _kill_other_attempts(self, task: Task, winner: TaskAttempt) -> None:
        for attempt in list(task.running_attempts):
            if attempt is not winner:
                attempt.tracker.kill_attempt(attempt)
                self.counters.incr("speculative_attempts_killed")

    def attempt_failed(self, attempt: TaskAttempt, reason: str) -> None:
        """An attempt reported failure: count, maybe blacklist, re-queue."""
        self.trace_attempt(attempt, "failed")
        task = attempt.task
        job = task.job
        if task.status == TaskStatus.COMPLETED or job.status != JobStatus.RUNNING:
            return
        task.failures += 1
        self.counters.incr("attempts_failed")
        key = (job.job_id, attempt.tracker.host)
        self._tracker_failures[key] = self._tracker_failures.get(key, 0) + 1
        if self._tracker_failures[key] >= self.config.tracker_blacklist_failures:
            if attempt.tracker.host not in job.blacklist:
                job.blacklist.add(attempt.tracker.host)
                self.counters.incr("trackers_blacklisted")
        if task.failures >= self.config.max_attempts:
            self._fail_job(job, f"{task!r} failed {task.failures} times: {reason}")
            return
        self._requeue_if_needed(task)

    def report_fetch_failure(self, job: Job, map_index: int, host: str) -> None:
        """A reducer could not fetch a map output from ``host``.

        The map re-runs immediately when the host is known-lost, or after
        three strikes otherwise (transient network trouble)."""
        self.counters.incr("fetch_failures")
        desc = self._trackers.get(host)
        key = (job.job_id, map_index)
        self._fetch_failures[key] = self._fetch_failures.get(key, 0) + 1
        host_gone = desc is None or not desc.alive or not desc.tracker.is_alive
        if host_gone or self._fetch_failures[key] >= 3:
            self._fetch_failures[key] = 0
            output = job.map_outputs.get(map_index)
            if output is not None and output.host == host:
                job.retract_map_output(map_index)
                task = job.maps[map_index]
                if task.status == TaskStatus.COMPLETED:
                    task.set_status(TaskStatus.PENDING)
                    task.finish_time = None
                    task.completed_on = None
                    self.counters.incr("maps_reexecuted")

    # -- job completion --------------------------------------------------------------------
    def _maybe_finish_job(self, job: Job) -> None:
        if not job.is_complete:
            return
        job.status = JobStatus.SUCCEEDED
        job.finish_time = self.sim.now
        self._active_jobs_cache = None
        self.jobs_version += 1
        self.counters.incr("jobs_succeeded")
        self._trace_job(job)
        self._cleanup_job(job)

    def _fail_job(self, job: Job, reason: str) -> None:
        job.status = JobStatus.FAILED
        job.finish_time = self.sim.now
        self._active_jobs_cache = None
        self.jobs_version += 1
        self.counters.incr("jobs_failed")
        self._trace_job(job)
        for task in list(job.maps) + list(job.reduces):
            for attempt in task.running_attempts:
                attempt.tracker.kill_attempt(attempt)
        self._cleanup_job(job)

    def _cleanup_job(self, job: Job) -> None:
        """Free intermediate map output everywhere — only now, because
        "Hadoop will not delete map intermediate data until the entire job
        is done" (§IV-D2)."""
        for desc in self._trackers.values():
            if desc.tracker.is_alive:
                desc.tracker.cleanup_job(job)
        # Iterate a copy: when_jobs_done listeners remove themselves on
        # their final job, which would otherwise skip the next listener.
        for listener in list(self.job_done_listeners):
            listener(job)

    def __repr__(self) -> str:
        return (f"<JobTracker trackers={self.live_tracker_count()}/"
                f"{len(self._trackers)} jobs={len(self._jobs)}>")
