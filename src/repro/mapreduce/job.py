"""Job and task state: the jobtracker's view of submitted work.

A :class:`JobSpec` describes a loadgen-style synthetic job (the paper's
evaluation workload): ``num_maps`` maps — one per 64 MB input block — and
``num_reduces`` reduces, with data volumes derived from the input size via
the ``map_output_ratio`` / ``reduce_output_ratio`` knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .tasktracker import TaskTracker

__all__ = [
    "JobSpec", "Job", "Task", "TaskAttempt", "MapOutput",
    "TaskType", "TaskStatus", "JobStatus",
]


class TaskType:
    """Task kinds: ``MAP`` / ``REDUCE``."""

    MAP = "map"
    REDUCE = "reduce"


class TaskStatus:
    """Task/attempt lifecycle states."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


class JobStatus:
    """Job lifecycle states."""

    WAITING = "waiting"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class JobSpec:
    """Static description of one MapReduce job.

    Parameters mirror the evaluation's loadgen jobs: the input file has
    ``num_maps`` blocks; each map reads one block, burns
    ``map_cpu_per_block`` seconds of CPU (scaled by node speed), and emits
    ``map_output_ratio`` × input bytes of intermediate data, partitioned
    evenly over the reduces.  Each reduce shuffles its partition, merges at
    the configured sort rate, burns ``reduce_cpu`` seconds, and writes
    ``reduce_output_ratio`` × its shuffled bytes to HDFS.
    """

    name: str
    num_maps: int
    num_reduces: int
    input_file: str
    #: CPU seconds per map at unit node speed.
    map_cpu_per_block: float = 10.0
    #: CPU seconds per reduce at unit node speed (post-shuffle).
    reduce_cpu: float = 10.0
    #: Intermediate bytes produced per input byte.
    map_output_ratio: float = 1.0
    #: Output bytes per shuffled byte at each reduce.
    reduce_output_ratio: float = 0.3

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical parameters."""
        if self.num_maps < 1:
            raise ValueError("a job needs at least one map")
        if self.num_reduces < 0:
            raise ValueError("num_reduces cannot be negative")
        if self.map_cpu_per_block < 0 or self.reduce_cpu < 0:
            raise ValueError("CPU costs cannot be negative")
        if self.map_output_ratio < 0 or self.reduce_output_ratio < 0:
            raise ValueError("data ratios cannot be negative")


class MapOutput:
    """Record of one completed map's intermediate output."""

    __slots__ = ("map_index", "host", "tracker", "partition_size", "fetched_by")

    def __init__(self, map_index: int, host: str, partition_size: float,
                 tracker: "TaskTracker" = None) -> None:
        self.map_index = map_index
        #: Tasktracker host holding the output (on local disk, §IV-D2).
        self.host = host
        #: The tracker daemon that serves this output over HTTP; fetches
        #: fail when it is dead or a zombie.
        self.tracker = tracker
        #: Bytes destined for *each* reduce partition.
        self.partition_size = partition_size
        #: Reduce indices that have successfully fetched this output.
        self.fetched_by: Set[int] = set()


class TaskAttempt:
    """One execution of a task on one tasktracker."""

    _ids = 0

    __slots__ = ("attempt_id", "task", "tracker", "start_time", "process",
                 "status", "speculative")

    def __init__(self, task: "Task", tracker: "TaskTracker", start_time: float,
                 speculative: bool = False) -> None:
        TaskAttempt._ids += 1
        self.attempt_id = TaskAttempt._ids
        self.task = task
        self.tracker = tracker
        self.start_time = start_time
        self.process = None  # set by the tasktracker
        self.status = TaskStatus.RUNNING
        #: True if this is a backup (speculative) copy.
        self.speculative = speculative

    def __repr__(self) -> str:
        return (f"<Attempt #{self.attempt_id} {self.task} on "
                f"{self.tracker.host} {self.status}>")


class Task:
    """One map or reduce task of a job."""

    __slots__ = ("job", "type", "index", "status", "attempts", "failures",
                 "finish_time", "completed_on")

    def __init__(self, job: "Job", task_type: str, index: int) -> None:
        self.job = job
        self.type = task_type
        self.index = index
        self.status = TaskStatus.PENDING
        self.attempts: List[TaskAttempt] = []
        self.failures = 0
        self.finish_time: Optional[float] = None
        #: Host the winning attempt ran on.
        self.completed_on: Optional[str] = None

    def set_status(self, new_status: str) -> None:
        """Transition status, keeping the job's progress counters exact.

        All status changes must go through here — the scheduler relies on
        the job-level counters/sets being O(1)-fresh.
        """
        old = self.status
        if new_status == old:
            return
        self.status = new_status
        self.job._on_task_transition(self, old, new_status)

    @property
    def running_attempts(self) -> List[TaskAttempt]:
        """Attempts currently executing."""
        return [a for a in self.attempts if a.status == TaskStatus.RUNNING]

    def __repr__(self) -> str:
        return f"<{self.type}-{self.job.job_id}-{self.index} {self.status}>"


class Job:
    """Dynamic state of a submitted job."""

    __slots__ = (
        "job_id", "spec", "submit_time", "start_time", "finish_time",
        "status", "maps", "reduces", "map_outputs", "blacklist",
        "locality_counters", "_map_completed_listeners",
        "_requeue_listeners", "_transition_listeners",
        "pending_map_tasks", "pending_reduce_tasks",
        "running_map_tasks", "running_reduce_tasks",
        "_n_completed_maps", "_n_completed_reduces",
        "_dur_sum", "_dur_count", "_attempt_heaps", "spec_gate",
    )

    def __init__(self, job_id: int, spec: JobSpec, submit_time: float) -> None:
        self.job_id = job_id
        self.spec = spec
        self.submit_time = submit_time
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.status = JobStatus.WAITING
        self.maps = [Task(self, TaskType.MAP, i) for i in range(spec.num_maps)]
        self.reduces = [Task(self, TaskType.REDUCE, i)
                        for i in range(spec.num_reduces)]
        #: map_index → MapOutput of the winning attempt.
        self.map_outputs: Dict[int, MapOutput] = {}
        #: Trackers blacklisted for this job (too many failures).
        self.blacklist: Set[str] = set()
        #: data_local / site_local / remote map-launch counts.
        self.locality_counters: Dict[str, int] = {
            "data_local": 0, "site_local": 0, "remote": 0}
        self._map_completed_listeners: List = []
        #: Fired with the task whenever one returns to PENDING (failure
        #: recovery, lost map output): index maintainers re-admit it.
        self._requeue_listeners: List = []
        #: Fired with ``(task, old, new)`` on *every* status transition,
        #: after the per-status sets/counters above are current.  The
        #: cluster-wide scheduler index hangs off this: indexes update on
        #: task-state events, never by rescanning.
        self._transition_listeners: List = []
        # O(1) progress bookkeeping (kept exact by Task.set_status).
        # Insertion-ordered dicts used as sets: scheduler scans iterate
        # these, and hash-order iteration over *objects* would make runs
        # irreproducible (id()-dependent).  Initial order = task index.
        self.pending_map_tasks: Dict[Task, None] = dict.fromkeys(self.maps)
        self.pending_reduce_tasks: Dict[Task, None] = dict.fromkeys(self.reduces)
        self.running_map_tasks: Dict[Task, None] = {}
        self.running_reduce_tasks: Dict[Task, None] = {}
        self._n_completed_maps = 0
        self._n_completed_reduces = 0
        self._dur_sum = {TaskType.MAP: 0.0, TaskType.REDUCE: 0.0}
        self._dur_count = {TaskType.MAP: 0, TaskType.REDUCE: 0}
        # Min-heaps of (start_time, attempt) per type, pruned lazily —
        # lets the scheduler find the oldest still-running attempt in O(1)
        # and skip the speculation scan when nothing can be slow enough.
        self._attempt_heaps = {TaskType.MAP: [], TaskType.REDUCE: []}
        #: Earliest sim time at which a speculation scan could possibly
        #: find a candidate, per task type (0 = unknown, must scan).  Set
        #: by the scheduler from the oldest-running-attempt bound; reset
        #: whenever the average-duration baseline moves (completions),
        #: since a lower average lowers the slowness threshold.
        self.spec_gate = {TaskType.MAP: 0.0, TaskType.REDUCE: 0.0}

    def _on_task_transition(self, task: Task, old: str, new: str) -> None:
        """Maintain the per-status sets and counters (see Task.set_status)."""
        if task.type == TaskType.MAP:
            pending, running = self.pending_map_tasks, self.running_map_tasks
        else:
            pending, running = self.pending_reduce_tasks, self.running_reduce_tasks
        if old == TaskStatus.PENDING:
            pending.pop(task, None)
        elif old == TaskStatus.RUNNING:
            running.pop(task, None)
        elif old == TaskStatus.COMPLETED:
            if task.type == TaskType.MAP:
                self._n_completed_maps -= 1
            else:
                self._n_completed_reduces -= 1
        if new == TaskStatus.PENDING:
            pending[task] = None
            for cb in self._requeue_listeners:
                cb(task)
        elif new == TaskStatus.RUNNING:
            running[task] = None
        elif new == TaskStatus.COMPLETED:
            if task.type == TaskType.MAP:
                self._n_completed_maps += 1
            else:
                self._n_completed_reduces += 1
        for cb in self._transition_listeners:
            cb(task, old, new)

    def note_task_duration(self, task_type: str, duration: float) -> None:
        """Record a winning attempt's duration (speculation baseline)."""
        self._dur_sum[task_type] += duration
        self._dur_count[task_type] += 1
        self.spec_gate[task_type] = 0.0  # threshold moved: re-evaluate

    def note_attempt_launched(self, attempt: "TaskAttempt") -> None:
        """Index a fresh attempt for the oldest-running-attempt query."""
        heappush(self._attempt_heaps[attempt.task.type],
                 (attempt.start_time, attempt.attempt_id, attempt))

    def oldest_running_attempt_start(self, task_type: str) -> Optional[float]:
        """Start time of the oldest attempt still running, or ``None``.

        The answer upper-bounds every task's elapsed time, so the
        speculation scan can be skipped entirely when even the oldest
        attempt is younger than the slowness threshold."""
        heap = self._attempt_heaps[task_type]
        while heap and heap[0][2].status != TaskStatus.RUNNING:
            heappop(heap)
        return heap[0][0] if heap else None

    # -- progress -----------------------------------------------------------------
    @property
    def completed_maps(self) -> int:
        """Number of finished map tasks."""
        return self._n_completed_maps

    @property
    def completed_reduces(self) -> int:
        """Number of finished reduce tasks."""
        return self._n_completed_reduces

    @property
    def is_complete(self) -> bool:
        """True once every map and reduce has completed."""
        return (self.completed_maps == len(self.maps)
                and self.completed_reduces == len(self.reduces))

    @property
    def response_time(self) -> Optional[float]:
        """Submit-to-finish latency, once finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    def reduces_schedulable(self, slowstart: float) -> bool:
        """True when enough maps are done to start reduces."""
        if not self.reduces:
            return False
        return self.completed_maps >= slowstart * len(self.maps)

    def subscribe_task_requeued(self, callback) -> None:
        """Register a callback fired with any task that returns to PENDING
        (used by scheduler locality indexes to re-admit pruned tasks)."""
        self._requeue_listeners.append(callback)

    def subscribe_task_transition(self, callback) -> None:
        """Register a callback fired with ``(task, old, new)`` on every
        task status transition, after the job's own pending/running sets
        have been updated (so listeners see consistent state)."""
        self._transition_listeners.append(callback)

    # -- map-output pub/sub (drives the shuffle) -------------------------------------
    def subscribe_map_completed(self, callback) -> None:
        """Register a callback fired whenever a map output becomes available
        (reduces use this to wake their fetchers)."""
        self._map_completed_listeners.append(callback)

    def unsubscribe_map_completed(self, callback) -> None:
        """Remove a shuffle wake-up callback."""
        if callback in self._map_completed_listeners:
            self._map_completed_listeners.remove(callback)

    def publish_map_output(self, output: MapOutput) -> None:
        """Record a completed map's output and wake waiting reducers."""
        self.map_outputs[output.map_index] = output
        for cb in list(self._map_completed_listeners):
            cb(output)

    def retract_map_output(self, map_index: int) -> Optional[MapOutput]:
        """Remove a map output (its node was lost); returns the old record."""
        return self.map_outputs.pop(map_index, None)

    def average_completed_duration(self, task_type: str) -> Optional[float]:
        """Mean winning-attempt duration over completed tasks of
        ``task_type`` (the baseline for the 1/3-slower speculation rule)."""
        n = self._dur_count[task_type]
        if n == 0:
            return None
        return self._dur_sum[task_type] / n

    def __repr__(self) -> str:
        return (f"<Job {self.job_id} {self.spec.name!r} {self.status} "
                f"maps={self.completed_maps}/{len(self.maps)} "
                f"reduces={self.completed_reduces}/{len(self.reduces)}>")
