"""The simulated TaskTracker daemon.

"When the grid job begins, it starts the tasktracker on the remote worker
node.  The tasktracker is in charge of managing the execution of Map and
Reduce tasks on the worker node.  When it begins, it contacts the
jobtracker on the central server which marks the node available for
processing." (§III-B2)

Each tracker owns a fixed number of map and reduce slots (HOG workers: 1+1,
§IV-A; the dedicated cluster: 4+1 or 2+1, Table III).  It heartbeats to the
jobtracker; task assignment happens on heartbeat receipt.

The tracker shares its node's local disk with the datanode.  A preempting
site that kills only the wrapper's process tree leaves the tracker running
as a *zombie* over a wiped working directory: it keeps heartbeating and
accepting tasks, and every task "would fail immediately as it was unable
to save the input data to disk" (§IV-D1) — reproduced here by the
disk-liveness check at attempt start.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..hdfs.client import BlockUnavailableError, HdfsClient
from ..hdfs.namenode import Namenode
from ..net.fabric import NetworkFabric, TransferFailed
from ..sim.engine import Simulator
from ..sim.events import Interrupt
from ..sim.util import gather_safe
from ..storage.disk import Disk, DiskFullError, DiskIOError
from .config import MRConfig
from .job import Job, MapOutput, Task, TaskAttempt, TaskStatus, TaskType

if TYPE_CHECKING:  # pragma: no cover
    from .jobtracker import JobTracker

__all__ = ["TaskTracker", "TaskExecutionError"]


class TaskExecutionError(Exception):
    """An attempt failed for a reason worth reporting to the jobtracker."""


class TaskTracker:
    """One MapReduce worker daemon bound to a host, slots, and a disk."""

    RUNNING = "running"
    ZOMBIE = "zombie"
    DEAD = "dead"

    def __init__(self, sim: Simulator, host: str, disk: Disk,
                 fabric: NetworkFabric, namenode: Namenode,
                 jobtracker: "JobTracker", map_slots: int = 1,
                 reduce_slots: int = 1, speed: float = 1.0,
                 config: Optional[MRConfig] = None) -> None:
        if map_slots < 0 or reduce_slots < 0:
            raise ValueError("slot counts cannot be negative")
        if speed <= 0:
            raise ValueError("node speed must be positive")
        self.sim = sim
        self.host = host
        self.disk = disk
        self.fabric = fabric
        self.namenode = namenode
        self.jobtracker = jobtracker
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        #: Relative CPU speed (task compute time divides by this).
        self.speed = speed
        self.config = config or jobtracker.config
        self.state = TaskTracker.DEAD
        self.hdfs = HdfsClient(sim, namenode, fabric, host)
        self._running: List[TaskAttempt] = []
        # Slot occupancy as plain counters: the scheduler reads free
        # slots on every heartbeat, so these must be O(1), not a sweep
        # over ``_running``.
        self._n_running_maps = 0
        self._n_running_reduces = 0
        self._hb_epoch = 0

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        """Contact the jobtracker and begin heartbeating."""
        if self.state != TaskTracker.DEAD:
            raise RuntimeError(f"tasktracker {self.host} already started")
        self.state = TaskTracker.RUNNING
        self.jobtracker.register_tracker(self)
        self._hb_epoch += 1
        self.sim.call_soon(self._hb_tick, self._hb_epoch)

    def shutdown(self) -> None:
        """Clean daemon exit (running attempts are abandoned)."""
        self._kill_all_attempts()
        # Invalidate the heartbeat cadence: a tick already on the heap
        # fires as a no-op against the stale epoch token.
        self._hb_epoch += 1
        self.state = TaskTracker.DEAD

    def kill(self) -> None:
        """Abrupt death with the process tree (fixed-HOG preemption)."""
        self.shutdown()
        self.fabric.abort_host_flows(self.host)

    def make_zombie(self) -> None:
        """Enter the double-fork zombie state (§IV-D1): keeps heartbeating
        and accepting tasks over a wiped working directory.

        Note: the working-directory wipe itself is done by whoever owns the
        node (the disk is shared with the datanode); this only flips the
        tracker's state.
        """
        if self.state == TaskTracker.RUNNING:
            self.state = TaskTracker.ZOMBIE

    @property
    def is_alive(self) -> bool:
        """True while the daemon process exists (running or zombie)."""
        return self.state in (TaskTracker.RUNNING, TaskTracker.ZOMBIE)

    # -- slots --------------------------------------------------------------------
    @property
    def running_maps(self) -> int:
        """Occupied map slots."""
        return self._n_running_maps

    @property
    def running_reduces(self) -> int:
        """Occupied reduce slots."""
        return self._n_running_reduces

    def _untrack(self, attempt: TaskAttempt) -> None:
        """Drop an attempt from the running set (idempotent)."""
        try:
            self._running.remove(attempt)
        except ValueError:
            return
        if attempt.task.type == TaskType.MAP:
            self._n_running_maps -= 1
        else:
            self._n_running_reduces -= 1

    @property
    def free_map_slots(self) -> int:
        """Map slots available for assignment."""
        return max(0, self.map_slots - self.running_maps)

    @property
    def free_reduce_slots(self) -> int:
        """Reduce slots available for assignment."""
        return max(0, self.reduce_slots - self.running_reduces)

    # -- heartbeat -----------------------------------------------------------------
    def _hb_tick(self, epoch: int) -> None:
        """One heartbeat on the callback-timer fast path.

        The cadence is a chain of ``call_after`` timers carrying the epoch
        token captured at :meth:`start`; ``shutdown`` bumps the epoch, so
        a tick from a dead incarnation lands here and does nothing.
        """
        if epoch != self._hb_epoch or not self.is_alive:
            return
        self.jobtracker.heartbeat(self)
        # Ask per beat: the period adapts to cluster size.
        self.sim.call_after(
            self.jobtracker.heartbeat_interval(), self._hb_tick, epoch)

    # -- attempt execution -------------------------------------------------------------
    def launch(self, attempt: TaskAttempt) -> None:
        """Start executing an assigned attempt."""
        self._running.append(attempt)
        if attempt.task.type == TaskType.MAP:
            self._n_running_maps += 1
        else:
            self._n_running_reduces += 1
        attempt.process = self.sim.process(
            self._run_attempt(attempt),
            name=f"attempt:{attempt.attempt_id}@{self.host}")

    def kill_attempt(self, attempt: TaskAttempt) -> None:
        """Abort a running attempt (speculation lost / task obsolete /
        node death)."""
        self._untrack(attempt)
        if attempt.process is not None and attempt.process.is_alive:
            if self.sim.active_process is not attempt.process:
                attempt.process.interrupt("killed")
        if attempt.status == TaskStatus.RUNNING:
            # Every kill path funnels through here, so this is the one
            # spot that closes the attempt's causal span.
            self.jobtracker.trace_attempt(attempt, "killed")
            attempt.status = TaskStatus.FAILED

    def _kill_all_attempts(self) -> None:
        for attempt in list(self._running):
            self.kill_attempt(attempt)

    def cleanup_job(self, job: Job) -> None:
        """Release the job's intermediate map output held on this node —
        "Hadoop will not delete map intermediate data until the entire job
        is done" (§IV-D2), so this is the *only* point it is freed."""
        if self.disk.alive:
            self.disk.release_all(f"intermediate:j{job.job_id}")

    def _run_attempt(self, attempt: TaskAttempt):
        """Wrapper: dispatch, report outcome, keep slot accounting exact."""
        try:
            if attempt.task.type == TaskType.MAP:
                output = yield from self._run_map(attempt)
                attempt.status = TaskStatus.COMPLETED
                self._untrack(attempt)
                self.jobtracker.map_attempt_completed(attempt, output)
            else:
                yield from self._run_reduce(attempt)
                attempt.status = TaskStatus.COMPLETED
                self._untrack(attempt)
                self.jobtracker.reduce_attempt_completed(attempt)
        except Interrupt:
            self._untrack(attempt)
            return
        except (TaskExecutionError, DiskFullError, DiskIOError,
                BlockUnavailableError, TransferFailed) as exc:
            attempt.status = TaskStatus.FAILED
            self._untrack(attempt)
            self.jobtracker.attempt_failed(attempt, str(exc))

    # -- map ------------------------------------------------------------------------
    def _run_map(self, attempt: TaskAttempt):
        """Read one input block, compute, spill intermediate to local disk."""
        task = attempt.task
        job = task.job
        if not self.disk.alive:
            raise TaskExecutionError(
                f"map on {self.host}: cannot write to working directory")
        blocks = self.jobtracker.input_blocks(job)
        block = blocks[task.index]

        # 1. Read the input block (local replica if we have one).
        yield self.hdfs.read_block(block.block_id)

        # 2. User map function CPU time.
        cpu = job.spec.map_cpu_per_block / self.speed
        if cpu > 0:
            yield self.sim.timeout(cpu)

        # 3. Spill intermediate output to the node-local disk, retained
        #    until the job completes.
        inter_bytes = block.size * job.spec.map_output_ratio
        if inter_bytes > 0:
            self.disk.allocate(inter_bytes, f"intermediate:j{job.job_id}")
            yield self.disk.write(inter_bytes)

        partition = (inter_bytes / job.spec.num_reduces
                     if job.spec.num_reduces else 0.0)
        return MapOutput(task.index, self.host, partition, tracker=self)

    def serve_map_output(self, nbytes: float, dest: str):
        """Stream ``nbytes`` of map output to a reducer at ``dest``.

        Models the tasktracker's HTTP shuffle server: a dead tracker
        refuses the connection; a zombie tracker's files are gone
        (working directory wiped), so the fetch fails either way.

        When the disk shares the fabric's channel (the normal wiring),
        the stream is ONE jointly-constrained demand over source disk
        read, NICs, and (cross-site) the WAN legs — it drains at the
        max-min share of the slowest of them at every instant, exactly
        like a streaming HTTP response reading from disk.
        """
        done = self.sim.event()
        if self.state != TaskTracker.RUNNING or not self.disk.alive:
            done.fail(TaskExecutionError(
                f"shuffle server on {self.host} unavailable ({self.state})"))
            done.defused()
            return done
        both = self.fabric.serve_stream(self.host, dest, nbytes, self.disk)

        # Callback-chained (no helper process): the shuffle creates one of
        # these per fetch, so the saved process is two fewer heap events.
        def finish(ev) -> None:
            if done.triggered:
                return
            if ev._ok:
                done.succeed(None)
            else:
                ev._defused = True
                done.fail(TaskExecutionError(str(ev._value)))
                done.defused()

        if both.callbacks is None:
            finish(both)
        else:
            both.callbacks.append(finish)
        return done

    # -- reduce --------------------------------------------------------------------
    def _run_reduce(self, attempt: TaskAttempt):
        """Shuffle this reduce's partition from every map, merge, reduce,
        and write the output partition to HDFS."""
        task = attempt.task
        job = task.job
        spec = job.spec
        if not self.disk.alive:
            raise TaskExecutionError(
                f"reduce on {self.host}: cannot write to working directory")
        label = f"shuffle:a{attempt.attempt_id}"
        ridx = task.index
        fetched = set()
        total_bytes = 0.0
        shuffle_start = self.sim.now
        wake = [None]

        def on_output(_output: MapOutput) -> None:
            ev = wake[0]
            if ev is not None and not ev.triggered:
                ev.succeed(None)

        job.subscribe_map_completed(on_output)
        try:
            # --- shuffle phase: "many-to-many communications" (§II-A) ---
            while len(fetched) < spec.num_maps:
                avail = [mo for i, mo in job.map_outputs.items()
                         if i not in fetched]
                if not avail:
                    wake[0] = self.sim.event()
                    yield wake[0]
                    wake[0] = None
                    continue
                batch = avail[:self.config.parallel_shuffle_copies]
                flows = [(mo, mo.tracker.serve_map_output(mo.partition_size,
                                                          self.host))
                         for mo in batch]
                outcomes = yield gather_safe(self.sim, [f for _, f in flows])
                for (mo, _), out in zip(flows, outcomes):
                    if mo.map_index in fetched:
                        continue
                    if out.ok and mo is job.map_outputs.get(mo.map_index):
                        if mo.partition_size > 0:
                            self.disk.allocate(mo.partition_size, label)
                            yield self.disk.write(mo.partition_size)
                        fetched.add(mo.map_index)
                        total_bytes += mo.partition_size
                        mo.fetched_by.add(ridx)
                    else:
                        self.jobtracker.report_fetch_failure(
                            job, mo.map_index, mo.host)

            tr = self.jobtracker.tracer
            if tr is not None:
                tr.span("shuffle", f"shuffle-r{ridx}", shuffle_start,
                        self.sim.now, track=self.host,
                        span_id=f"sh-a{attempt.attempt_id}",
                        parent=f"a{attempt.attempt_id}",
                        args={"maps": spec.num_maps,
                              "bytes": round(total_bytes, 1)})

            # --- merge/sort phase ---
            if total_bytes > 0:
                yield self.sim.timeout(total_bytes / self.config.sort_rate)

            # --- user reduce function ---
            cpu = spec.reduce_cpu / self.speed
            if cpu > 0:
                yield self.sim.timeout(cpu)

            # --- write the output partition to HDFS ---
            out_bytes = total_bytes * spec.reduce_output_ratio
            out_name = (f"{spec.input_file}.out/j{job.job_id}/"
                        f"part-{ridx:05d}-a{attempt.attempt_id}")
            try:
                yield self.hdfs.write_file(
                    out_name, out_bytes,
                    replication=self.config.output_replication)
            except Exception as exc:
                raise TaskExecutionError(f"output write failed: {exc}") from exc
        finally:
            job.unsubscribe_map_completed(on_output)
            if self.disk.alive:
                self.disk.release_all(label)

    def __repr__(self) -> str:
        return (f"<TaskTracker {self.host} {self.state} "
                f"m{self.running_maps}/{self.map_slots} "
                f"r{self.running_reduces}/{self.reduce_slots}>")
