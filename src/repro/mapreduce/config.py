"""MapReduce framework configuration, with stock and HOG presets.

HOG makes no API changes to MapReduce (§III-B2); its deltas are
operational: the 30-second tracker expiry (matching the HDFS heartbeat
tuning) and one-map-slot/one-reduce-slot workers ("we configure each node
to have 1 map slot and 1 reduce slot, since the job is allocated 1 core on
the remote worker node", §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MRConfig", "stock_mr_config", "hog_mr_config"]


@dataclass
class MRConfig:
    """Tunable parameters of the simulated MapReduce 1.0 framework."""

    #: Tasktracker heartbeat period, seconds (the floor — see
    #: ``heartbeats_per_second``).
    heartbeat_interval: float = 3.0
    #: Target cluster-wide heartbeat arrival rate at the jobtracker.
    #: Stock Hadoop 1.x lengthens the per-tracker period as the cluster
    #: grows so the jobtracker sees a bounded RPC rate (~100/s); the
    #: effective period is ``max(heartbeat_interval, live / rate)``,
    #: identical to the floor for clusters up to ``rate *
    #: heartbeat_interval`` nodes.  ``0`` disables the scaling.
    heartbeats_per_second: float = 100.0
    #: Seconds without a heartbeat before the jobtracker declares a
    #: tasktracker lost (stock ~10 min; HOG 30 s, §III-B).
    tracker_expiry: float = 600.0
    #: Period of the jobtracker's expiry scan.
    expiry_check_period: float = 5.0
    #: FIFO with speculative execution is the paper's scheduler (§III-B2).
    speculative_execution: bool = True
    #: A task is speculation-eligible once its attempt has run this factor
    #: longer than the average completed-task duration ("1/3 slower than
    #: average", §IV-B → 4/3 of the average).
    speculation_slowness_factor: float = 4.0 / 3.0
    #: Minimum runtime before an attempt may be judged slow, seconds.
    speculation_min_elapsed: float = 30.0
    #: Maximum simultaneous attempts of one task ("at most two copies";
    #: the §VI future-work feature raises this).
    max_task_copies: int = 2
    #: Attempt failures before the task (and its job) is declared failed.
    max_attempts: int = 4
    #: Per-job failures on one tracker before that tracker is blacklisted
    #: for the job (Hadoop ``mapred.max.tracker.failures``).
    tracker_blacklist_failures: int = 4
    #: Fraction of a job's maps that must complete before its reduces are
    #: scheduled (``mapred.reduce.slowstart.completed.maps``).
    reduce_slowstart: float = 0.05
    #: Concurrent shuffle fetch streams per reduce attempt
    #: (``mapred.reduce.parallel.copies``).
    parallel_shuffle_copies: int = 5
    #: Map tasks handed to one tasktracker per heartbeat (Hadoop 0.20
    #: assigns one map and one reduce per heartbeat).
    maps_per_heartbeat: int = 1
    #: Reduce tasks handed to one tasktracker per heartbeat.
    reduces_per_heartbeat: int = 1
    #: Merge/sort processing rate during the reduce sort phase, bytes/s.
    sort_rate: float = 120e6
    #: Replication factor for job output files (``None`` = filesystem
    #: default, which is what HOG does — all files get 10 replicas).
    output_replication: int = None  # type: ignore[assignment]
    #: Task scheduler: ``fifo`` (HOG's choice, §III-B2), ``delay``
    #: (Zaharia et al. [3]), or ``matchmaking`` (He et al. [20]).
    scheduler: str = "fifo"
    #: Debug: assign via the original per-heartbeat all-jobs scan instead
    #: of the cluster pending index.  Exists so the equivalence suite can
    #: prove the two paths emit identical assignment streams; never faster.
    debug_scan_assign: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.tracker_expiry <= self.heartbeat_interval:
            raise ValueError("tracker_expiry must exceed heartbeat_interval")
        if self.heartbeats_per_second < 0:
            raise ValueError("heartbeats_per_second cannot be negative")
        if self.max_task_copies < 1:
            raise ValueError("max_task_copies must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not (0.0 <= self.reduce_slowstart <= 1.0):
            raise ValueError("reduce_slowstart must be in [0, 1]")
        if self.parallel_shuffle_copies < 1:
            raise ValueError("parallel_shuffle_copies must be >= 1")
        if self.speculation_slowness_factor <= 1.0:
            raise ValueError("speculation_slowness_factor must exceed 1")
        if self.sort_rate <= 0:
            raise ValueError("sort_rate must be positive")
        if self.scheduler not in ("fifo", "delay", "matchmaking"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")


def stock_mr_config(**overrides) -> MRConfig:
    """Hadoop 0.20 defaults (10-minute tracker expiry)."""
    return replace(MRConfig(), **overrides)


def hog_mr_config(**overrides) -> MRConfig:
    """The paper's grid tuning: 30 s tracker expiry."""
    cfg = MRConfig(tracker_expiry=30.0, expiry_check_period=3.0)
    return replace(cfg, **overrides)
