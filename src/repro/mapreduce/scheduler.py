"""Task scheduling: FIFO job order, locality-aware map assignment, and
speculative execution.

"In the current version of HOG, we follow Apache Hadoop's FIFO job
scheduling policy with speculative execution enabled.  At any time, a task
has at most two copies of execution in the system." (§III-B2)

"The default Hadoop scheduler will attempt to schedule Map tasks on nodes
that have the input data.  If it is unable to find a data local node, it
will attempt to schedule the Map task in the same site as the input data."
(§III-B2) — the locality ladder implemented by :meth:`FifoScheduler._pick_map`.

Like Hadoop's JobInProgress, the scheduler builds per-job caches mapping
each host (and each site) to the map tasks whose input blocks live there,
computed once at job initialization from the block locations.  This keeps
per-heartbeat work O(1)-ish even with thousands of trackers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .job import Job, JobStatus, Task, TaskStatus, TaskType

if TYPE_CHECKING:  # pragma: no cover
    from .jobtracker import JobTracker
    from .tasktracker import TaskTracker

__all__ = ["TaskScheduler", "FifoScheduler"]


class TaskScheduler:
    """Interface: pick tasks for a tracker with free slots."""

    def __init__(self, jobtracker: "JobTracker") -> None:
        self.jobtracker = jobtracker
        self.config = jobtracker.config

    def assign(self, tracker: "TaskTracker") -> List[Tuple[Task, bool, str]]:
        """Return ``(task, speculative, locality)`` assignments for one
        heartbeat from ``tracker``.  ``locality`` is one of ``data_local``,
        ``site_local``, ``remote`` for maps and ``n/a`` for reduces."""
        raise NotImplementedError


class _JobLocalityIndex:
    """Host → map tasks and site → map tasks, from initial block placement."""

    __slots__ = ("host_maps", "site_maps")

    def __init__(self, job: Job, jobtracker: "JobTracker") -> None:
        self.host_maps: Dict[str, List[Task]] = {}
        self.site_maps: Dict[str, List[Task]] = {}
        blocks = jobtracker.input_blocks(job)
        topo = jobtracker.topology
        for task in job.maps:
            try:
                locations = jobtracker.namenode.locate(blocks[task.index].block_id)
            except Exception:
                locations = []
            sites = set()
            for host in locations:
                self.host_maps.setdefault(host, []).append(task)
                sites.add(topo.site_of(host))
            for site in sites:
                self.site_maps.setdefault(site, []).append(task)


class FifoScheduler(TaskScheduler):
    """Hadoop 0.20's default scheduler, as used by HOG."""

    def __init__(self, jobtracker: "JobTracker") -> None:
        super().__init__(jobtracker)
        self._index: Dict[int, _JobLocalityIndex] = {}

    def _index_for(self, job: Job) -> _JobLocalityIndex:
        idx = self._index.get(job.job_id)
        if idx is None:
            idx = self._index[job.job_id] = _JobLocalityIndex(job, self.jobtracker)
        return idx

    def assign(self, tracker: "TaskTracker") -> List[Tuple[Task, bool, str]]:
        """One heartbeat's assignments for ``tracker`` (see base class)."""
        out: List[Tuple[Task, bool, str]] = []
        free_maps = tracker.free_map_slots
        free_reduces = tracker.free_reduce_slots
        if free_maps <= 0 and free_reduces <= 0:
            return out  # fully busy worker: nothing to decide
        jobs = self.jobtracker.schedulable_jobs()
        if not jobs:
            return out

        for _ in range(min(free_maps, self.config.maps_per_heartbeat)):
            pick = self._pick_map(tracker, jobs, already=out)
            if pick is None:
                break
            out.append(pick)

        for _ in range(min(free_reduces, self.config.reduces_per_heartbeat)):
            pick = self._pick_reduce(tracker, jobs, already=out)
            if pick is None:
                break
            out.append(pick)
        return out

    # -- map selection -----------------------------------------------------------
    def _pick_map(self, tracker, jobs, already) -> Optional[Tuple[Task, bool, str]]:
        chosen_tasks = {t for t, _, _ in already}
        for job in jobs:
            if tracker.host in job.blacklist:
                continue
            if job.pending_map_tasks:
                task, locality = self._most_local(job, tracker, chosen_tasks)
                if task is not None:
                    return task, False, locality
            if self.config.speculative_execution:
                cand = self._speculation_candidate(job, TaskType.MAP, tracker,
                                                   chosen_tasks)
                if cand is not None:
                    return cand, True, self._locality_of(job, cand, tracker)
        return None

    def _most_local(self, job: Job, tracker,
                    chosen_tasks) -> Tuple[Optional[Task], str]:
        """Locality ladder: node-local block → site-local block → any."""

        def first_pending(tasks: List[Task]) -> Optional[Task]:
            for t in tasks:
                if t.status == TaskStatus.PENDING and t not in chosen_tasks:
                    return t
            return None

        idx = self._index_for(job)
        task = first_pending(idx.host_maps.get(tracker.host, ()))
        if task is not None:
            return task, "data_local"
        site = self.jobtracker.topology.site_of(tracker.host)
        task = first_pending(idx.site_maps.get(site, ()))
        if task is not None:
            return task, "site_local"
        for t in job.pending_map_tasks:
            if t not in chosen_tasks:
                return t, "remote"
        return None, "remote"

    def _locality_of(self, job: Job, task: Task, tracker) -> str:
        idx = self._index_for(job)
        if task in idx.host_maps.get(tracker.host, ()):
            return "data_local"
        site = self.jobtracker.topology.site_of(tracker.host)
        if task in idx.site_maps.get(site, ()):
            return "site_local"
        return "remote"

    # -- reduce selection -----------------------------------------------------------
    def _pick_reduce(self, tracker, jobs, already) -> Optional[Tuple[Task, bool, str]]:
        chosen_tasks = {t for t, _, _ in already}
        for job in jobs:
            if tracker.host in job.blacklist:
                continue
            if not job.reduces_schedulable(self.config.reduce_slowstart):
                continue
            if job.pending_reduce_tasks:
                best = None
                for t in job.pending_reduce_tasks:
                    if t not in chosen_tasks and (best is None
                                                  or t.index < best.index):
                        best = t
                if best is not None:
                    return best, False, "n/a"
            if self.config.speculative_execution:
                cand = self._speculation_candidate(job, TaskType.REDUCE, tracker,
                                                   chosen_tasks)
                if cand is not None:
                    return cand, True, "n/a"
        return None

    # -- speculation -----------------------------------------------------------------
    def _speculation_candidate(self, job: Job, task_type: str, tracker,
                               chosen_tasks) -> Optional[Task]:
        """A running task whose attempt is 1/3 slower than the job average,
        eligible for one more copy, and not already running on this node."""
        avg = job.average_completed_duration(task_type)
        if avg is None:
            return None
        running_set = (job.running_map_tasks if task_type == TaskType.MAP
                       else job.running_reduce_tasks)
        if not running_set:
            return None
        threshold = max(self.config.speculation_min_elapsed,
                        self.config.speculation_slowness_factor * avg)
        now = self.jobtracker.sim.now
        # O(1) prune: if even the oldest running attempt is younger than
        # the slowness threshold, no task can qualify — skip the scan.
        oldest = job.oldest_running_attempt_start(task_type)
        if oldest is None or now - oldest < threshold:
            return None
        best: Optional[Task] = None
        best_elapsed = threshold
        for task in running_set:
            if task in chosen_tasks:
                continue
            running = task.running_attempts
            if not running or len(running) >= self.config.max_task_copies:
                continue
            if any(a.tracker.host == tracker.host for a in running):
                continue
            elapsed = now - min(a.start_time for a in running)
            if elapsed >= best_elapsed:
                best = task
                best_elapsed = elapsed
        return best
