"""Task scheduling: FIFO job order, locality-aware map assignment, and
speculative execution.

"In the current version of HOG, we follow Apache Hadoop's FIFO job
scheduling policy with speculative execution enabled.  At any time, a task
has at most two copies of execution in the system." (§III-B2)

"The default Hadoop scheduler will attempt to schedule Map tasks on nodes
that have the input data.  If it is unable to find a data local node, it
will attempt to schedule the Map task in the same site as the input data."
(§III-B2) — the locality ladder implemented by :meth:`FifoScheduler._pick_map`.

Like Hadoop's JobInProgress, the scheduler builds per-job caches mapping
each host (and each site) to the map tasks whose input blocks live there,
computed once at job initialization from the block locations.  This keeps
per-heartbeat work O(1)-ish even with thousands of trackers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .job import Job, JobStatus, Task, TaskStatus, TaskType

if TYPE_CHECKING:  # pragma: no cover
    from .jobtracker import JobTracker
    from .tasktracker import TaskTracker

__all__ = ["TaskScheduler", "FifoScheduler"]


class TaskScheduler:
    """Interface: pick tasks for a tracker with free slots."""

    def __init__(self, jobtracker: "JobTracker") -> None:
        self.jobtracker = jobtracker
        self.config = jobtracker.config

    def assign(self, tracker: "TaskTracker") -> List[Tuple[Task, bool, str]]:
        """Return ``(task, speculative, locality)`` assignments for one
        heartbeat from ``tracker``.  ``locality`` is one of ``data_local``,
        ``site_local``, ``remote`` for maps and ``n/a`` for reduces."""
        raise NotImplementedError


class _JobLocalityIndex:
    """Host → map tasks and site → map tasks, from initial block placement.

    The per-host/per-site lists are insertion-ordered dicts used as sets.
    Tasks that leave the PENDING state are *pruned* during scans, so a
    long-lived job's locality lookups stop walking finished work (at 10k
    nodes the per-heartbeat scan would otherwise be dominated by completed
    tasks).  Pruning is revert-safe: a pruned task that returns to PENDING
    (fetch-failure re-execution, lost tracker) is re-admitted through the
    job's requeue listener, using the locations recorded at build time.
    """

    __slots__ = ("host_maps", "site_maps", "_locations")

    def __init__(self, job: Job, jobtracker: "JobTracker") -> None:
        self.host_maps: Dict[str, Dict[Task, None]] = {}
        self.site_maps: Dict[str, Dict[Task, None]] = {}
        #: task → (hosts, sites) snapshot for revert-safe re-admission.
        self._locations: Dict[Task, tuple] = {}
        blocks = jobtracker.input_blocks(job)
        topo = jobtracker.topology
        for task in job.maps:
            try:
                locations = jobtracker.namenode.locate(blocks[task.index].block_id)
            except Exception:
                locations = []
            sites = []
            for host in locations:
                self.host_maps.setdefault(host, {})[task] = None
                site = topo.site_of(host)
                if site not in sites:
                    sites.append(site)
            for site in sites:
                self.site_maps.setdefault(site, {})[task] = None
            if locations:
                self._locations[task] = (tuple(locations), tuple(sites))
        job.subscribe_task_requeued(self._readmit)

    def _readmit(self, task: Task) -> None:
        """A pruned task went back to PENDING: restore its index entries."""
        loc = self._locations.get(task)
        if loc is None:
            return
        hosts, sites = loc
        for host in hosts:
            self.host_maps.setdefault(host, {})[task] = None
        for site in sites:
            self.site_maps.setdefault(site, {})[task] = None


class FifoScheduler(TaskScheduler):
    """Hadoop 0.20's default scheduler, as used by HOG."""

    def __init__(self, jobtracker: "JobTracker") -> None:
        super().__init__(jobtracker)
        self._index: Dict[int, _JobLocalityIndex] = {}

    def _index_for(self, job: Job) -> _JobLocalityIndex:
        idx = self._index.get(job.job_id)
        if idx is None:
            idx = self._index[job.job_id] = _JobLocalityIndex(job, self.jobtracker)
        return idx

    def assign(self, tracker: "TaskTracker") -> List[Tuple[Task, bool, str]]:
        """One heartbeat's assignments for ``tracker`` (see base class)."""
        out: List[Tuple[Task, bool, str]] = []
        free_maps = tracker.free_map_slots
        free_reduces = tracker.free_reduce_slots
        if free_maps <= 0 and free_reduces <= 0:
            return out  # fully busy worker: nothing to decide
        jobs = self.jobtracker.schedulable_jobs()
        if not jobs:
            return out

        for _ in range(min(free_maps, self.config.maps_per_heartbeat)):
            pick = self._pick_map(tracker, jobs, already=out)
            if pick is None:
                break
            out.append(pick)

        for _ in range(min(free_reduces, self.config.reduces_per_heartbeat)):
            pick = self._pick_reduce(tracker, jobs, already=out)
            if pick is None:
                break
            out.append(pick)
        return out

    # -- map selection -----------------------------------------------------------
    def _pick_map(self, tracker, jobs, already) -> Optional[Tuple[Task, bool, str]]:
        chosen_tasks = {t for t, _, _ in already}
        for job in jobs:
            if tracker.host in job.blacklist:
                continue
            if job.pending_map_tasks:
                task, locality = self._most_local(job, tracker, chosen_tasks)
                if task is not None:
                    return task, False, locality
            if self.config.speculative_execution:
                cand = self._speculation_candidate(job, TaskType.MAP, tracker,
                                                   chosen_tasks)
                if cand is not None:
                    return cand, True, self._locality_of(job, cand, tracker)
        return None

    def _most_local(self, job: Job, tracker,
                    chosen_tasks) -> Tuple[Optional[Task], str]:
        """Locality ladder: node-local block → site-local block → any.

        Non-pending tasks encountered during the scan are pruned from the
        index list on the spot (amortised O(1): each task pays one prune
        per departure from PENDING; reverts re-admit via the job hook)."""

        def first_pending(tasks: Optional[Dict[Task, None]]) -> Optional[Task]:
            if not tasks:
                return None
            found = None
            stale = None
            for t in tasks:
                if t.status == TaskStatus.PENDING:
                    if t not in chosen_tasks:
                        found = t
                        break
                elif stale is None:
                    stale = [t]
                else:
                    stale.append(t)
            if stale is not None:
                for t in stale:
                    del tasks[t]
            return found

        idx = self._index_for(job)
        task = first_pending(idx.host_maps.get(tracker.host))
        if task is not None:
            return task, "data_local"
        site = self.jobtracker.topology.site_of(tracker.host)
        task = first_pending(idx.site_maps.get(site))
        if task is not None:
            return task, "site_local"
        for t in job.pending_map_tasks:
            if t not in chosen_tasks:
                return t, "remote"
        return None, "remote"

    def _locality_of(self, job: Job, task: Task, tracker) -> str:
        # Answer from the build-time location snapshot, NOT the scan
        # indexes: those prune non-pending tasks, and this is asked about
        # *running* tasks (speculative copies).
        loc = self._index_for(job)._locations.get(task)
        if loc is None:
            return "remote"
        hosts, sites = loc
        if tracker.host in hosts:
            return "data_local"
        if self.jobtracker.topology.site_of(tracker.host) in sites:
            return "site_local"
        return "remote"

    # -- reduce selection -----------------------------------------------------------
    def _pick_reduce(self, tracker, jobs, already) -> Optional[Tuple[Task, bool, str]]:
        chosen_tasks = {t for t, _, _ in already}
        for job in jobs:
            if tracker.host in job.blacklist:
                continue
            if not job.reduces_schedulable(self.config.reduce_slowstart):
                continue
            if job.pending_reduce_tasks:
                best = None
                for t in job.pending_reduce_tasks:
                    if t not in chosen_tasks and (best is None
                                                  or t.index < best.index):
                        best = t
                if best is not None:
                    return best, False, "n/a"
            if self.config.speculative_execution:
                cand = self._speculation_candidate(job, TaskType.REDUCE, tracker,
                                                   chosen_tasks)
                if cand is not None:
                    return cand, True, "n/a"
        return None

    # -- speculation -----------------------------------------------------------------
    def _speculation_candidate(self, job: Job, task_type: str, tracker,
                               chosen_tasks) -> Optional[Task]:
        """A running task whose attempt is 1/3 slower than the job average,
        eligible for one more copy, and not already running on this node."""
        now = self.jobtracker.sim.now
        # Time gate: a previous scan proved nothing can qualify before
        # this instant (oldest attempt + threshold).  The gate is reset
        # whenever a completion moves the average-duration baseline, so
        # skipping is exact — and turns the per-heartbeat, per-job scan
        # into a single float compare on the hot path.
        if now < job.spec_gate[task_type]:
            return None
        avg = job.average_completed_duration(task_type)
        if avg is None:
            return None
        running_set = (job.running_map_tasks if task_type == TaskType.MAP
                       else job.running_reduce_tasks)
        if not running_set:
            return None
        threshold = max(self.config.speculation_min_elapsed,
                        self.config.speculation_slowness_factor * avg)
        # O(1) prune: if even the oldest running attempt is younger than
        # the slowness threshold, no task can qualify — skip the scan and
        # remember when that could first change.
        oldest = job.oldest_running_attempt_start(task_type)
        if oldest is None or now - oldest < threshold:
            job.spec_gate[task_type] = (
                now + threshold if oldest is None else oldest + threshold)
            return None
        best: Optional[Task] = None
        best_elapsed = threshold
        for task in running_set:
            if task in chosen_tasks:
                continue
            running = task.running_attempts
            if not running or len(running) >= self.config.max_task_copies:
                continue
            if any(a.tracker.host == tracker.host for a in running):
                continue
            elapsed = now - min(a.start_time for a in running)
            if elapsed >= best_elapsed:
                best = task
                best_elapsed = elapsed
        return best
