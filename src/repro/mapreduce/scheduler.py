"""Task scheduling: FIFO job order, locality-aware map assignment, and
speculative execution.

"In the current version of HOG, we follow Apache Hadoop's FIFO job
scheduling policy with speculative execution enabled.  At any time, a task
has at most two copies of execution in the system." (§III-B2)

"The default Hadoop scheduler will attempt to schedule Map tasks on nodes
that have the input data.  If it is unable to find a data local node, it
will attempt to schedule the Map task in the same site as the input data."
(§III-B2) — the locality ladder implemented by :meth:`FifoScheduler._try_map`.

Scheduling is *index-driven*: the cluster-wide
:class:`~repro.mapreduce.pending_index.ClusterPendingIndex` is updated on
task-state events, and a heartbeat walks only the jobs that can actually
yield work (pending work present, or a speculation gate passed).  The
steady-state heartbeat — no pending work, all gates in the future — costs
O(1).  The original per-heartbeat all-jobs scan survives behind
``MRConfig.debug_scan_assign``; the two paths share the same per-job
decision bodies and the same event-maintained lists, so they produce
bit-identical assignment streams (the equivalence suite asserts this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from .job import Job, Task, TaskType
from .pending_index import ClusterPendingIndex, JobLocalityIndex

if TYPE_CHECKING:  # pragma: no cover
    from .jobtracker import JobTracker
    from .tasktracker import TaskTracker

__all__ = ["TaskScheduler", "FifoScheduler"]


class TaskScheduler:
    """Interface: pick tasks for a tracker with free slots."""

    def __init__(self, jobtracker: "JobTracker") -> None:
        self.jobtracker = jobtracker
        self.config = jobtracker.config

    def begin_round(self) -> None:
        """Hook: the jobtracker starts a new heartbeat *round* (first
        heartbeat at a sim instant, or the job list changed mid-instant).
        Round-scoped snapshots/resets go here, not in :meth:`assign`."""

    def assign(self, tracker: "TaskTracker") -> List[Tuple[Task, bool, str]]:
        """Return ``(task, speculative, locality)`` assignments for one
        heartbeat from ``tracker``.  ``locality`` is one of ``data_local``,
        ``site_local``, ``remote`` for maps and ``n/a`` for reduces."""
        raise NotImplementedError


class FifoScheduler(TaskScheduler):
    """Hadoop 0.20's default scheduler, as used by HOG."""

    def __init__(self, jobtracker: "JobTracker") -> None:
        super().__init__(jobtracker)
        self.index = ClusterPendingIndex(jobtracker,
                                         on_job_removed=self._job_removed)
        #: Debug fallback: the original per-heartbeat all-jobs scan.  Kept
        #: for the scheduler-equivalence suite; decision bodies are shared
        #: with the index path.
        self.use_scan = bool(getattr(self.config, "debug_scan_assign", False))

    # -- lifecycle hooks -----------------------------------------------------
    def _job_removed(self, job: Job) -> None:
        """Hook: ``job`` left the schedulable set (finished/failed)."""

    def begin_round(self) -> None:
        """Reconcile the index once per heartbeat round."""
        self._refresh_index()

    def _refresh_index(self, jobs: Optional[List[Job]] = None) -> None:
        if jobs is None:
            jobs = self.jobtracker.schedulable_jobs()
        self.index.sync(jobs)
        self.index.pull_spec(self.jobtracker.sim.now)

    def _index_for(self, job: Job) -> JobLocalityIndex:
        """The per-job locality index (registered on first sync)."""
        return self.index.locality(job)

    # -- assignment ----------------------------------------------------------
    def assign(self, tracker: "TaskTracker") -> List[Tuple[Task, bool, str]]:
        """One heartbeat's assignments for ``tracker`` (see base class)."""
        out: List[Tuple[Task, bool, str]] = []
        free_maps = tracker.free_map_slots
        free_reduces = tracker.free_reduce_slots
        if free_maps <= 0 and free_reduces <= 0:
            return out  # fully busy worker: nothing to decide
        jobs = self.jobtracker.schedulable_jobs()
        if not jobs:
            return out
        # Defensive re-sync for direct assign() callers; O(1) when the
        # round bookkeeping already ran (version-gated + lazy heap top).
        self._refresh_index(jobs)

        for _ in range(min(free_maps, self.config.maps_per_heartbeat)):
            pick = self._pick_map(tracker, jobs, already=out)
            if pick is None:
                break
            out.append(pick)

        for _ in range(min(free_reduces, self.config.reduces_per_heartbeat)):
            pick = self._pick_reduce(tracker, jobs, already=out)
            if pick is None:
                break
            out.append(pick)
        return out

    # -- map selection -------------------------------------------------------
    def _pick_map(self, tracker, jobs, already) -> Optional[Tuple[Task, bool, str]]:
        chosen_tasks = {t for t, _, _ in already}
        speculative = self.config.speculative_execution
        candidates = (jobs if self.use_scan
                      else self.index.map_candidates(speculative))
        for job in candidates:
            pick = self._try_map(job, tracker, chosen_tasks)
            if pick is not None:
                return pick
        return None

    def _try_map(self, job: Job, tracker,
                 chosen_tasks) -> Optional[Tuple[Task, bool, str]]:
        """The per-job map decision body (shared by scan and index paths).

        Must be side-effect-free and ``None`` for any job with neither a
        pending nor a probe-worthy running map — that is what lets the
        index path skip such jobs without changing the stream."""
        if tracker.host in job.blacklist:
            return None
        if job.pending_map_tasks:
            task, locality = self._most_local(job, tracker, chosen_tasks)
            if task is not None:
                return task, False, locality
        if self.config.speculative_execution:
            cand = self._probe_speculation(job, TaskType.MAP, tracker,
                                           chosen_tasks)
            if cand is not None:
                return cand, True, self._locality_of(job, cand, tracker)
        return None

    def _most_local(self, job: Job, tracker,
                    chosen_tasks) -> Tuple[Optional[Task], str]:
        """Locality ladder: node-local block → site-local block → any.

        The per-host/per-site lists hold exactly the PENDING tasks (the
        cluster index maintains them on transitions), so the ladder is a
        first-not-chosen lookup — no status checks, no pruning."""
        idx = self.index.locality(job)
        tasks = idx.host_maps.get(tracker.host)
        if tasks:
            for t in tasks:
                if t not in chosen_tasks:
                    return t, "data_local"
        tasks = idx.site_maps.get(self.jobtracker.topology.site_of(tracker.host))
        if tasks:
            for t in tasks:
                if t not in chosen_tasks:
                    return t, "site_local"
        for t in job.pending_map_tasks:
            if t not in chosen_tasks:
                return t, "remote"
        return None, "remote"

    def _locality_of(self, job: Job, task: Task, tracker) -> str:
        # Answer from the build-time location snapshot, NOT the pending
        # lists: this is asked about *running* tasks (speculative copies).
        loc = self.index.locality(job).locations.get(task)
        if loc is None:
            return "remote"
        hosts, sites = loc
        if tracker.host in hosts:
            return "data_local"
        if self.jobtracker.topology.site_of(tracker.host) in sites:
            return "site_local"
        return "remote"

    # -- reduce selection ----------------------------------------------------
    def _pick_reduce(self, tracker, jobs, already) -> Optional[Tuple[Task, bool, str]]:
        chosen_tasks = {t for t, _, _ in already}
        speculative = self.config.speculative_execution
        candidates = (jobs if self.use_scan
                      else self.index.reduce_candidates(speculative))
        for job in candidates:
            pick = self._try_reduce(job, tracker, chosen_tasks)
            if pick is not None:
                return pick
        return None

    def _try_reduce(self, job: Job, tracker,
                    chosen_tasks) -> Optional[Tuple[Task, bool, str]]:
        """Per-job reduce decision body (shared by scan and index paths)."""
        if tracker.host in job.blacklist:
            return None
        if not job.reduces_schedulable(self.config.reduce_slowstart):
            return None
        if job.pending_reduce_tasks:
            best = None
            for t in job.pending_reduce_tasks:
                if t not in chosen_tasks and (best is None
                                              or t.index < best.index):
                    best = t
            if best is not None:
                return best, False, "n/a"
        if self.config.speculative_execution:
            cand = self._probe_speculation(job, TaskType.REDUCE, tracker,
                                           chosen_tasks)
            if cand is not None:
                return cand, True, "n/a"
        return None

    # -- speculation -----------------------------------------------------------
    def _probe_speculation(self, job: Job, task_type: str, tracker,
                           chosen_tasks) -> Optional[Task]:
        """Probe + arming maintenance: an empty-handed probe that pushed
        the job's gate into the future snoozes it in the cluster index, so
        the index path stops visiting it until the gate passes (or a
        completion re-arms it)."""
        # Gate-still-closed is the overwhelmingly common probe outcome
        # (completions re-arm jobs constantly): answer it with one float
        # compare instead of entering the candidate scan.
        gate = job.spec_gate[task_type]
        if self.jobtracker.sim.now < gate:
            self.index.spec[task_type].snooze(job, gate)
            return None
        if job.average_completed_duration(task_type) is None:
            # No completed task of this type yet ⇒ no slowness baseline ⇒
            # no probe can succeed until the first completion — which
            # re-arms the job through the transition hooks (arm on
            # completion with survivors, drop+track otherwise).  Snoozing
            # until then is exact and stops every tracker from probing
            # the job each heartbeat while its first wave runs.
            self.index.spec[task_type].snooze(job, float("inf"))
            return None
        cand = self._speculation_candidate(job, task_type, tracker,
                                           chosen_tasks)
        if cand is None:
            gate = job.spec_gate[task_type]
            if gate > self.jobtracker.sim.now:
                self.index.spec[task_type].snooze(job, gate)
        return cand

    def _speculation_candidate(self, job: Job, task_type: str, tracker,
                               chosen_tasks) -> Optional[Task]:
        """A running task whose attempt is 1/3 slower than the job average,
        eligible for one more copy, and not already running on this node."""
        now = self.jobtracker.sim.now
        # Time gate: a previous probe proved nothing can qualify before
        # this instant (oldest attempt + threshold).  The gate is reset
        # whenever a completion moves the average-duration baseline, so
        # skipping is exact — and turns the per-heartbeat, per-job scan
        # into a single float compare on the hot path.
        if now < job.spec_gate[task_type]:
            return None
        avg = job.average_completed_duration(task_type)
        if avg is None:
            return None
        running_set = (job.running_map_tasks if task_type == TaskType.MAP
                       else job.running_reduce_tasks)
        if not running_set:
            return None
        threshold = max(self.config.speculation_min_elapsed,
                        self.config.speculation_slowness_factor * avg)
        # O(1) prune: if even the oldest running attempt is younger than
        # the slowness threshold, no task can qualify — skip the scan and
        # remember when that could first change.
        oldest = job.oldest_running_attempt_start(task_type)
        if oldest is None or now - oldest < threshold:
            job.spec_gate[task_type] = (
                now + threshold if oldest is None else oldest + threshold)
            return None
        best: Optional[Task] = None
        best_elapsed = threshold
        for task in running_set:
            if task in chosen_tasks:
                continue
            running = task.running_attempts
            if not running or len(running) >= self.config.max_task_copies:
                continue
            if any(a.tracker.host == tracker.host for a in running):
                continue
            elapsed = now - min(a.start_time for a in running)
            if elapsed >= best_elapsed:
                best = task
                best_elapsed = elapsed
        return best
