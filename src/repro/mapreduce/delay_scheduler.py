"""Delay scheduling (Zaharia et al., EuroSys 2010 — the paper's ref [3]).

The HOG evaluation workload is taken from the delay-scheduling paper, and
HOG's own future work contemplates better schedulers.  Delay scheduling
fixes FIFO's locality problem: when the job at the head of the queue has
no *local* task for the heartbeating node, it is skipped — for up to a
bounded wait — instead of immediately launching a non-local task.

We implement the standard two-level variant: a job waits up to
``node_local_delay`` seconds for a node-local slot before accepting a
site-local one, and up to ``site_local_delay`` further seconds before
accepting an arbitrary (cross-site) slot.

Only the per-job decision body differs from FIFO, so the index-driven
candidate walk (and the ``debug_scan_assign`` fallback) come straight
from :class:`~repro.mapreduce.scheduler.FifoScheduler`.
"""

from __future__ import annotations

from typing import Dict, Optional

from .job import Job, Task, TaskType

from .scheduler import FifoScheduler

__all__ = ["DelayScheduler"]


class DelayScheduler(FifoScheduler):
    """FIFO order with bounded waiting for locality."""

    #: Seconds a job will wait for a node-local launch opportunity.
    node_local_delay: float = 15.0
    #: Additional seconds it will wait for a site-local one.
    site_local_delay: float = 30.0

    def __init__(self, jobtracker) -> None:
        super().__init__(jobtracker)
        #: job_id → time the job last launched a task (or started waiting).
        self._wait_start: Dict[int, float] = {}

    def _job_removed(self, job: Job) -> None:
        self._wait_start.pop(job.job_id, None)

    def _allowed_locality(self, job: Job) -> str:
        """How far from its data this job may currently launch."""
        now = self.jobtracker.sim.now
        waited = now - self._wait_start.setdefault(job.job_id, now)
        if waited < self.node_local_delay:
            return "data_local"
        if waited < self.node_local_delay + self.site_local_delay:
            return "site_local"
        return "remote"

    def _note_launch(self, job: Job, locality: str) -> None:
        # A local launch resets the job's patience; a forced remote launch
        # also resets it (it got its turn), matching the published
        # algorithm's skip-count reset.
        self._wait_start[job.job_id] = self.jobtracker.sim.now

    def _try_map(self, job: Job, tracker, chosen_tasks):
        if tracker.host in job.blacklist:
            return None
        if job.pending_map_tasks:
            task, locality = self._most_local(job, tracker, chosen_tasks)
            if task is None:
                return None
            allowed = self._allowed_locality(job)
            if locality == "data_local" or allowed == "remote" or \
                    (locality == "site_local" and allowed == "site_local"):
                self._note_launch(job, locality)
                return task, False, locality
            # Not local enough yet: skip this job (the caller moves on).
            return None
        cand: Optional[Task] = None
        if self.config.speculative_execution:
            cand = self._probe_speculation(job, TaskType.MAP, tracker,
                                           chosen_tasks)
        if cand is not None:
            return cand, True, self._locality_of(job, cand, tracker)
        return None
