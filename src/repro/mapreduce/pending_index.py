"""Cluster-wide, event-maintained scheduler indexes.

The schedulers' original hot path rescanned every queued job (and probed
every job's locality index) on *every* heartbeat — O(jobs × probes) per
message, the dominant control-plane cost at 1000 nodes and a wall at 10k.
This module inverts that: per-job locality lists and cluster-wide
presence maps are updated on task-state *events* (PENDING↔RUNNING/DONE,
requeue), so a heartbeat touches only jobs that can actually yield work.

Invariants (all maintained by :meth:`ClusterPendingIndex._on_transition`):

- ``JobLocalityIndex.host_maps[h]`` / ``site_maps[s]`` contain exactly the
  job's *PENDING* map tasks with a replica on ``h`` / in ``s``, in
  deterministic order (build order; requeued tasks re-append at the end).
- ``host_jobs[h]`` / ``site_jobs[s]`` contain exactly the registered jobs
  whose corresponding per-job list is non-empty.
- ``map_jobs`` contains exactly the jobs with ≥ 1 pending map task;
  ``reduce_jobs`` the jobs with ≥ 1 pending reduce *and* the reduce
  slowstart threshold met, ``reduce_wait`` the rest (visiting a
  pre-slowstart job every heartbeat is pure waste — the decision body
  rejects it unconditionally).
- every job with a running task of type T is *tracked* by the type-T
  :class:`_SpecArming`: either armed (a speculation probe might succeed
  now) or snoozed behind its ``spec_gate`` in a lazy heap.

All job collections are keyed by ``job_id`` and walked in ascending-id
order, which is exactly the jobtracker's FIFO submit order — so index-path
scheduling visits candidates in the same order the scan path visits jobs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..hdfs.namenode import HdfsError
from .job import Job, Task, TaskStatus, TaskType

if TYPE_CHECKING:  # pragma: no cover
    from .jobtracker import JobTracker

__all__ = ["JobLocalityIndex", "ClusterPendingIndex"]


class JobLocalityIndex:
    """Host → pending maps and site → pending maps for one job.

    Built once from the namenode's block locations; thereafter maintained
    event-driven by the owning :class:`ClusterPendingIndex` so the lists
    always hold exactly the PENDING tasks (no lazy pruning, no status
    checks during scheduling scans).
    """

    __slots__ = ("host_maps", "site_maps", "locations")

    def __init__(self, job: Job, jobtracker: "JobTracker") -> None:
        self.host_maps: Dict[str, Dict[Task, None]] = {}
        self.site_maps: Dict[str, Dict[Task, None]] = {}
        #: task → (hosts, sites) snapshot for event-driven re-admission
        #: and for locality classification of running (speculative) tasks.
        self.locations: Dict[Task, tuple] = {}
        blocks = jobtracker.input_blocks(job)
        topo = jobtracker.topology
        pending = job.pending_map_tasks
        for task in job.maps:
            try:
                located = jobtracker.namenode.locate(blocks[task.index].block_id)
            except HdfsError:
                # The one *expected* failure: the input block vanished
                # (e.g. every replica lost before the job started).  The
                # map still runs — just with no locality preference.  Any
                # other error is a bug and propagates.
                located = []
                jobtracker.counters.incr("map_input_blocks_unlocatable")
            if not located:
                continue
            sites = []
            for host in located:
                site = topo.site_of(host)
                if site not in sites:
                    sites.append(site)
            self.locations[task] = (tuple(located), tuple(sites))
            if task in pending:
                for host in located:
                    self.host_maps.setdefault(host, {})[task] = None
                for site in sites:
                    self.site_maps.setdefault(site, {})[task] = None


class _SpecArming:
    """Which jobs are worth a speculation probe, per task type.

    A job with running tasks is *armed* when its ``spec_gate`` may have
    passed (a probe could find a candidate) and *snoozed* into a lazy
    heap when a probe proved nothing can qualify before a future instant.
    Gate semantics guarantee a snoozed job's probe would return ``None``,
    so skipping it cannot change the assignment stream.
    """

    __slots__ = ("armed", "version", "_heap", "_gates")

    def __init__(self) -> None:
        #: job_id → Job whose next probe might succeed.
        self.armed: Dict[int, Job] = {}
        #: Bumped whenever the armed set changes — the candidate-list
        #: caches key on it, so reads between changes cost O(1).
        self.version = 0
        #: (gate, job_id, Job) lazy min-heap of snoozed jobs.
        self._heap: List[Tuple[float, int, Job]] = []
        #: job_id → gate of its one *live* heap entry (stale-entry filter).
        self._gates: Dict[int, float] = {}

    def track(self, job: Job) -> None:
        """A task of this type started running: ensure the job is tracked."""
        jid = job.job_id
        if jid not in self.armed and jid not in self._gates:
            self.armed[jid] = job
            self.version += 1

    def arm(self, job: Job) -> None:
        """Force re-evaluation (a completion reset the job's gate)."""
        jid = job.job_id
        self._gates.pop(jid, None)
        if jid not in self.armed:
            self.armed[jid] = job
            self.version += 1

    def snooze(self, job: Job, gate: float) -> None:
        """A probe proved nothing qualifies before ``gate``.

        Re-snoozing with an unchanged gate is a no-op: a job visited via
        the pending path can report the same closed gate every heartbeat,
        and pushing a duplicate heap entry each time is pure waste."""
        jid = job.job_id
        if jid in self.armed:
            del self.armed[jid]
            self.version += 1
        if self._gates.get(jid) != gate:
            self._gates[jid] = gate
            heappush(self._heap, (gate, jid, job))

    def drop(self, job: Job) -> None:
        """Stop tracking (no running tasks left, or job finished)."""
        if self.armed.pop(job.job_id, None) is not None:
            self.version += 1
        self._gates.pop(job.job_id, None)

    def pull(self, now: float) -> None:
        """Move every snoozed job whose gate has passed back to armed."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            gate, jid, job = heappop(heap)
            if self._gates.get(jid) == gate:  # live entry, not stale
                del self._gates[jid]
                self.armed[jid] = job
                self.version += 1


class ClusterPendingIndex:
    """The merged, cluster-wide view of every schedulable job's work.

    Owned by the scheduler; reconciled against the jobtracker's job list
    only when ``jobs_version`` changes (submit/finish), and updated on
    task transitions in between.  The heartbeat path reads presence maps
    and per-job lists — it never iterates the all-jobs list.
    """

    def __init__(self, jobtracker: "JobTracker",
                 on_job_removed: Optional[Callable[[Job], None]] = None) -> None:
        self.jobtracker = jobtracker
        self._on_job_removed = on_job_removed
        #: host → {job_id → Job} with ≥1 pending map local to the host.
        self.host_jobs: Dict[str, Dict[int, Job]] = {}
        #: site → {job_id → Job} with ≥1 pending map in the site.
        self.site_jobs: Dict[str, Dict[int, Job]] = {}
        #: job_id → Job with ≥1 pending map.
        self.map_jobs: Dict[int, Job] = {}
        #: job_id → Job with ≥1 pending reduce *and* slowstart met.  Jobs
        #: whose reduces exist but cannot launch yet (not enough maps
        #: done) wait in ``reduce_wait`` — the reduce pick would reject
        #: them anyway, so visiting them every heartbeat is pure waste.
        #: Reclassified on map-completion deltas (both directions: map
        #: re-runs after node loss can *lower* completed_maps).
        self.reduce_jobs: Dict[int, Job] = {}
        #: job_id → Job with ≥1 pending reduce, slowstart not yet met.
        self.reduce_wait: Dict[int, Job] = {}
        self.spec = {TaskType.MAP: _SpecArming(), TaskType.REDUCE: _SpecArming()}
        self._jobs: Dict[int, Job] = {}
        self._indexes: Dict[int, JobLocalityIndex] = {}
        self._synced_version = -1
        #: Bumped on every ``map_jobs`` / ``reduce_jobs`` mutation; the
        #: candidate-list caches below key on (pending, armed) versions so
        #: the per-pick sorted merge happens only when something changed —
        #: picks vastly outnumber membership changes.
        self._map_version = 0
        self._reduce_version = 0
        self._map_cands: Tuple[Tuple[int, int], List[Job]] = ((-1, -1), [])
        self._reduce_cands: Tuple[Tuple[int, int], List[Job]] = ((-1, -1), [])
        #: Index maintenance operations since construction (perf counter:
        #: total work the event-driven path does *instead of* rescanning).
        self.updates = 0

    # -- job registry -------------------------------------------------------
    def locality(self, job: Job) -> JobLocalityIndex:
        """The per-job locality index (job must be registered)."""
        return self._indexes[job.job_id]

    def sync(self, jobs: List[Job]) -> None:
        """Reconcile with the schedulable-job list.  O(1) when the
        jobtracker's ``jobs_version`` is unchanged; O(jobs) on change."""
        version = self.jobtracker.jobs_version
        if version == self._synced_version:
            return
        self._synced_version = version
        known = self._jobs
        for job in jobs:
            if job.job_id not in known:
                self._register(job)
        if len(known) != len(jobs):
            live = {job.job_id: None for job in jobs}
            for jid in [jid for jid in known if jid not in live]:
                self._remove(known[jid])

    def _register(self, job: Job) -> None:
        jid = job.job_id
        self._jobs[jid] = job
        idx = self._indexes[jid] = JobLocalityIndex(job, self.jobtracker)
        for host in idx.host_maps:
            self.host_jobs.setdefault(host, {})[jid] = job
        for site in idx.site_maps:
            self.site_jobs.setdefault(site, {})[jid] = job
        if job.pending_map_tasks:
            self.map_jobs[jid] = job
            self._map_version += 1
        if job.pending_reduce_tasks:
            self._admit_reduces(job)
        if job.running_map_tasks:
            self.spec[TaskType.MAP].track(job)
        if job.running_reduce_tasks:
            self.spec[TaskType.REDUCE].track(job)
        self.updates += 1
        job.subscribe_task_transition(self._on_transition)

    def _remove(self, job: Job) -> None:
        jid = job.job_id
        del self._jobs[jid]
        idx = self._indexes.pop(jid)
        for host in idx.host_maps:
            jobs = self.host_jobs.get(host)
            if jobs is not None:
                jobs.pop(jid, None)
                if not jobs:
                    del self.host_jobs[host]
        for site in idx.site_maps:
            jobs = self.site_jobs.get(site)
            if jobs is not None:
                jobs.pop(jid, None)
                if not jobs:
                    del self.site_jobs[site]
        self.map_jobs.pop(jid, None)
        self.reduce_jobs.pop(jid, None)
        self.reduce_wait.pop(jid, None)
        self._map_version += 1
        self._reduce_version += 1
        self.spec[TaskType.MAP].drop(job)
        self.spec[TaskType.REDUCE].drop(job)
        self.updates += 1
        if self._on_job_removed is not None:
            self._on_job_removed(job)

    # -- event maintenance --------------------------------------------------
    def _on_transition(self, task: Task, old: str, new: str) -> None:
        job = task.job
        if job.job_id not in self._jobs:
            return  # post-finish straggler event (job already deindexed)
        self.updates += 1
        arming = self.spec[task.type]
        if task.type == TaskType.MAP:
            if old == TaskStatus.PENDING:
                self._map_left_pending(job, task)
            if new == TaskStatus.PENDING:
                self._map_entered_pending(job, task)
            elif new == TaskStatus.RUNNING:
                arming.track(job)
            elif new == TaskStatus.COMPLETED:
                # The completion is about to reset the job's map spec gate
                # (note_task_duration): force a re-probe.
                if job.running_map_tasks:
                    arming.arm(job)
            if old == TaskStatus.RUNNING and not job.running_map_tasks:
                arming.drop(job)
            if (new == TaskStatus.COMPLETED or old == TaskStatus.COMPLETED) \
                    and job.pending_reduce_tasks:
                # The completed-map count moved: the job may have crossed
                # the reduce-slowstart threshold (either direction).
                self._admit_reduces(job)
        else:
            jid = job.job_id
            if old == TaskStatus.PENDING and not job.pending_reduce_tasks:
                self.reduce_jobs.pop(jid, None)
                self.reduce_wait.pop(jid, None)
                self._reduce_version += 1
            if new == TaskStatus.PENDING:
                self._admit_reduces(job)
            elif new == TaskStatus.RUNNING:
                arming.track(job)
            elif new == TaskStatus.COMPLETED:
                if job.running_reduce_tasks:
                    arming.arm(job)
            if old == TaskStatus.RUNNING and not job.running_reduce_tasks:
                arming.drop(job)

    def _admit_reduces(self, job: Job) -> None:
        """Bucket a job with pending reduces by slowstart readiness.

        ``reduce_jobs`` holds exactly the jobs a reduce pick could serve;
        the rest wait in ``reduce_wait`` until enough maps complete.  The
        decision body re-checks ``reduces_schedulable`` itself, so the
        split is a pure visit filter — skipping a waiting job cannot
        change the assignment stream."""
        jid = job.job_id
        if job.reduces_schedulable(self.jobtracker.config.reduce_slowstart):
            if jid not in self.reduce_jobs:
                self.reduce_wait.pop(jid, None)
                self.reduce_jobs[jid] = job
                self._reduce_version += 1
        elif jid in self.reduce_jobs:
            del self.reduce_jobs[jid]
            self.reduce_wait[jid] = job
            self._reduce_version += 1
        else:
            self.reduce_wait[jid] = job

    def _map_left_pending(self, job: Job, task: Task) -> None:
        jid = job.job_id
        idx = self._indexes[jid]
        loc = idx.locations.get(task)
        if loc is not None:
            hosts, sites = loc
            for host in hosts:
                tasks = idx.host_maps.get(host)
                if tasks is None:
                    continue
                tasks.pop(task, None)
                if not tasks:
                    del idx.host_maps[host]
                    jobs = self.host_jobs[host]
                    del jobs[jid]
                    if not jobs:
                        del self.host_jobs[host]
            for site in sites:
                tasks = idx.site_maps.get(site)
                if tasks is None:
                    continue
                tasks.pop(task, None)
                if not tasks:
                    del idx.site_maps[site]
                    jobs = self.site_jobs[site]
                    del jobs[jid]
                    if not jobs:
                        del self.site_jobs[site]
            self.updates += len(hosts) + len(sites)
        if not job.pending_map_tasks:
            self.map_jobs.pop(jid, None)
            self._map_version += 1

    def _map_entered_pending(self, job: Job, task: Task) -> None:
        jid = job.job_id
        idx = self._indexes[jid]
        loc = idx.locations.get(task)
        if loc is not None:
            hosts, sites = loc
            for host in hosts:
                tasks = idx.host_maps.setdefault(host, {})
                if not tasks:
                    self.host_jobs.setdefault(host, {})[jid] = job
                tasks[task] = None
            for site in sites:
                tasks = idx.site_maps.setdefault(site, {})
                if not tasks:
                    self.site_jobs.setdefault(site, {})[jid] = job
                tasks[task] = None
            self.updates += len(hosts) + len(sites)
        if jid not in self.map_jobs:
            self.map_jobs[jid] = job
            self._map_version += 1

    # -- heartbeat-path queries ----------------------------------------------
    def pull_spec(self, now: float) -> None:
        """Promote snoozed jobs whose speculation gates have passed."""
        self.spec[TaskType.MAP].pull(now)
        self.spec[TaskType.REDUCE].pull(now)

    def map_candidates(self, speculative: bool) -> List[Job]:
        """Jobs worth visiting for a map pick, ascending job id: every job
        with a pending map, plus (with speculation on) every armed job.

        The sorted merge is cached on (pending, armed) version counters:
        picks run several times per heartbeat while membership changes
        only on task transitions, so the common call is two int compares."""
        spec = self.spec[TaskType.MAP]
        key = (self._map_version, spec.version if speculative else -1)
        cached = self._map_cands
        if cached[0] == key:
            return cached[1]
        out = self._merge_candidates(self.map_jobs,
                                     spec.armed if speculative else ())
        self._map_cands = (key, out)
        return out

    def reduce_candidates(self, speculative: bool) -> List[Job]:
        """Jobs worth visiting for a reduce pick, ascending job id:
        every job with a pending reduce *and* slowstart met, plus (with
        speculation on) every armed job.  Cached like map_candidates."""
        spec = self.spec[TaskType.REDUCE]
        key = (self._reduce_version, spec.version if speculative else -1)
        cached = self._reduce_cands
        if cached[0] == key:
            return cached[1]
        out = self._merge_candidates(self.reduce_jobs,
                                     spec.armed if speculative else ())
        self._reduce_cands = (key, out)
        return out

    @staticmethod
    def _merge_candidates(pending: Dict[int, Job], armed) -> List[Job]:
        if not armed:
            if not pending:
                return _EMPTY
            return [pending[jid] for jid in sorted(pending)]
        merged = dict(pending)
        merged.update(armed)
        return [merged[jid] for jid in sorted(merged)]

    def jobs_with_local_maps(self, host: str) -> List[Job]:
        """Jobs holding a pending map whose input lives on ``host``,
        ascending job id (matchmaking pass 1)."""
        jobs = self.host_jobs.get(host)
        if not jobs:
            return _EMPTY
        return [jobs[jid] for jid in sorted(jobs)]

    def jobs_with_site_maps(self, site: str) -> List[Job]:
        """Jobs holding a pending map with a replica in ``site``,
        ascending job id (matchmaking pass 2)."""
        jobs = self.site_jobs.get(site)
        if not jobs:
            return _EMPTY
        return [jobs[jid] for jid in sorted(jobs)]


#: Shared empty result (the overwhelmingly common steady-state answer).
_EMPTY: List[Job] = []
