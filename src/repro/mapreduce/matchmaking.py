"""Matchmaking scheduling (He, Lu, Swanson, CloudCom 2011 — ref [20]).

The HOG authors' own locality technique, used alongside delay scheduling
to evaluate Hadoop schedulers on the same loadgen workload.  The rule:

1. On a heartbeat, every queued job (not just the head) gets a chance to
   offer a *node-local* map task for this node.
2. If none of the jobs has a local task, the node is given a non-local
   task only if it has already been passed over once since the last new
   job arrived — tracked with a per-node *locality marker*.  Markers are
   cleared whenever a new job is enqueued, giving fresh jobs a fair shot
   at locality everywhere.

Index-driven: passes 1 and 2 walk only the jobs the cluster index says
have a pending map on this host / in this site (ascending job id — FIFO
order), so the common "no local work anywhere" heartbeat is O(1), not
O(jobs).  The all-jobs sweep survives behind ``debug_scan_assign``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .job import Task, TaskType
from .scheduler import FifoScheduler

__all__ = ["MatchmakingScheduler"]


class MatchmakingScheduler(FifoScheduler):
    """All-jobs local matching with one-heartbeat patience per node."""

    def __init__(self, jobtracker) -> None:
        super().__init__(jobtracker)
        #: host → True once the node has been refused a task this round.
        self._marker: Dict[str, bool] = {}
        self._submits_seen = 0

    def _maybe_reset_markers(self) -> None:
        # Keyed off the monotonic submit counter, NOT len(jobs): a job
        # *finishing* must leave markers alone, and a submit + a finish
        # landing at the same instant (len unchanged) must still clear.
        seq = self.jobtracker.jobs_submitted_seq
        if seq != self._submits_seen:
            self._marker.clear()
            self._submits_seen = seq

    def _pick_map(self, tracker, jobs, already) -> Optional[Tuple[Task, bool, str]]:
        self._maybe_reset_markers()
        chosen_tasks = {t for t, _, _ in already}
        host = tracker.host

        # Pass 1: any job with a node-local pending map for this tracker.
        # The index knows which jobs those are; the scan path asks all.
        cands = jobs if self.use_scan else self.index.jobs_with_local_maps(host)
        for job in cands:
            if host in job.blacklist:
                continue
            tasks = self.index.locality(job).host_maps.get(host)
            if not tasks:
                continue
            for task in tasks:
                if task not in chosen_tasks:
                    self._marker.pop(host, None)
                    return task, False, "data_local"

        # Pass 2: site-local, same shape.
        site = self.jobtracker.topology.site_of(host)
        cands = jobs if self.use_scan else self.index.jobs_with_site_maps(site)
        for job in cands:
            if host in job.blacklist:
                continue
            tasks = self.index.locality(job).site_maps.get(site)
            if not tasks:
                continue
            for task in tasks:
                if task not in chosen_tasks:
                    self._marker.pop(host, None)
                    return task, False, "site_local"

        # Pass 3: non-local — only for a node already marked (it waited
        # one round), and only from the head-of-queue job (FIFO fairness).
        if self._marker.get(host):
            speculative = self.config.speculative_execution
            cands = (jobs if self.use_scan
                     else self.index.map_candidates(speculative))
            for job in cands:
                if host in job.blacklist:
                    continue
                for task in job.pending_map_tasks:
                    if task not in chosen_tasks:
                        self._marker.pop(host, None)
                        return task, False, "remote"
                if speculative:
                    cand = self._probe_speculation(
                        job, TaskType.MAP, tracker, chosen_tasks)
                    if cand is not None:
                        return cand, True, self._locality_of(job, cand, tracker)
            return None
        # First refusal: mark the node and send it away empty-handed.
        self._marker[host] = True
        return None
