"""Matchmaking scheduling (He, Lu, Swanson, CloudCom 2011 — ref [20]).

The HOG authors' own locality technique, used alongside delay scheduling
to evaluate Hadoop schedulers on the same loadgen workload.  The rule:

1. On a heartbeat, every queued job (not just the head) gets a chance to
   offer a *node-local* map task for this node.
2. If none of the jobs has a local task, the node is given a non-local
   task only if it has already been passed over once since the last new
   job arrived — tracked with a per-node *locality marker*.  Markers are
   cleared whenever a new job is enqueued, giving fresh jobs a fair shot
   at locality everywhere.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .job import Job, Task, TaskStatus, TaskType
from .scheduler import FifoScheduler

__all__ = ["MatchmakingScheduler"]


class MatchmakingScheduler(FifoScheduler):
    """All-jobs local matching with one-heartbeat patience per node."""

    def __init__(self, jobtracker) -> None:
        super().__init__(jobtracker)
        #: host → True once the node has been refused a task this round.
        self._marker: Dict[str, bool] = {}
        self._jobs_seen = 0

    def _maybe_reset_markers(self, jobs) -> None:
        if len(jobs) != self._jobs_seen:
            # New job arrived (or one finished): clear all markers so
            # every node re-tries for locality first.
            self._marker.clear()
            self._jobs_seen = len(jobs)

    def _pick_map(self, tracker, jobs, already) -> Optional[Tuple[Task, bool, str]]:
        self._maybe_reset_markers(jobs)
        chosen_tasks = {t for t, _, _ in already}

        # Pass 1: any job with a node-local pending map for this tracker.
        for job in jobs:
            if tracker.host in job.blacklist or not job.pending_map_tasks:
                continue
            idx = self._index_for(job)
            for task in idx.host_maps.get(tracker.host, ()):
                if task.status == TaskStatus.PENDING and task not in chosen_tasks:
                    self._marker.pop(tracker.host, None)
                    return task, False, "data_local"

        # Pass 2: site-local, same all-jobs sweep.
        site = self.jobtracker.topology.site_of(tracker.host)
        for job in jobs:
            if tracker.host in job.blacklist or not job.pending_map_tasks:
                continue
            idx = self._index_for(job)
            for task in idx.site_maps.get(site, ()):
                if task.status == TaskStatus.PENDING and task not in chosen_tasks:
                    self._marker.pop(tracker.host, None)
                    return task, False, "site_local"

        # Pass 3: non-local — only for a node already marked (it waited
        # one round), and only from the head-of-queue job (FIFO fairness).
        if self._marker.get(tracker.host):
            for job in jobs:
                if tracker.host in job.blacklist:
                    continue
                for task in job.pending_map_tasks:
                    if task not in chosen_tasks:
                        self._marker.pop(tracker.host, None)
                        return task, False, "remote"
                if self.config.speculative_execution:
                    cand = self._speculation_candidate(
                        job, TaskType.MAP, tracker, chosen_tasks)
                    if cand is not None:
                        return cand, True, self._locality_of(job, cand, tracker)
            return None
        # First refusal: mark the node and send it away empty-handed.
        self._marker[tracker.host] = True
        return None
