"""Simulated Hadoop MapReduce 1.0: jobtracker, tasktrackers, FIFO+speculative
scheduling, and the shuffle."""

from .config import MRConfig, hog_mr_config, stock_mr_config
from .job import (
    Job,
    JobSpec,
    JobStatus,
    MapOutput,
    Task,
    TaskAttempt,
    TaskStatus,
    TaskType,
)
from .delay_scheduler import DelayScheduler
from .jobtracker import JobFailedError, JobTracker, TrackerDescriptor
from .matchmaking import MatchmakingScheduler
from .scheduler import FifoScheduler, TaskScheduler
from .tasktracker import TaskExecutionError, TaskTracker

__all__ = [
    "MRConfig",
    "stock_mr_config",
    "hog_mr_config",
    "JobSpec",
    "Job",
    "JobStatus",
    "Task",
    "TaskAttempt",
    "TaskStatus",
    "TaskType",
    "MapOutput",
    "JobTracker",
    "TrackerDescriptor",
    "JobFailedError",
    "TaskScheduler",
    "FifoScheduler",
    "DelayScheduler",
    "MatchmakingScheduler",
    "TaskTracker",
    "TaskExecutionError",
]
