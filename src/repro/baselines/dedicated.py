"""The dedicated Hadoop cluster baseline (Table III).

The paper's performance baseline is a 30-worker, 100-core local cluster
running Hadoop 0.20 with stock settings, configured as **one rack**:

====================  ========  ==========================================
Nodes                 Quantity  Hardware / Hadoop configuration
====================  ========  ==========================================
Master node           1         2 × single-core 2.2 GHz Opteron-248, 8 GB
Slave nodes-I         20        2 × dual-core 2.2 GHz Opteron-275, 4 GB,
                                1 Gbps Ethernet, 4 map + 1 reduce slots
Slave nodes-II        10        2 × single-core 2.2 GHz Opteron-64, 4 GB,
                                1 Gbps Ethernet, 2 map + 1 reduce slots
====================  ========  ==========================================

"configure 1 reduce slot for each worker node because there is only one
Ethernet card in each node ... Also, configure 1 map slot per core."
All cores are 2.2 GHz Opterons, so per-core speed is uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..hdfs.client import HdfsClient
from ..hdfs.config import GB, HdfsConfig, stock_hadoop_config
from ..hdfs.datanode import Datanode
from ..hdfs.namenode import Namenode
from ..hdfs.placement import SiteAwarePolicy
from ..mapreduce.config import MRConfig, stock_mr_config
from ..mapreduce.job import Job, JobSpec
from ..mapreduce.jobtracker import JobTracker
from ..mapreduce.tasktracker import TaskTracker
from ..net.fabric import FabricConfig, NetworkFabric
from ..net.topology import DnsSiteResolver, NetworkTopology
from ..sim.engine import Simulator
from ..storage.disk import Disk

__all__ = ["NodeGroup", "DedicatedClusterConfig", "DedicatedCluster",
           "table3_config"]


@dataclass
class NodeGroup:
    """A homogeneous group of worker nodes."""

    count: int
    map_slots: int
    reduce_slots: int
    speed: float = 1.0
    disk_capacity: float = 400 * GB
    disk_read_rate: float = 90e6
    disk_write_rate: float = 70e6

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.count < 0:
            raise ValueError("group count cannot be negative")
        if self.map_slots < 0 or self.reduce_slots < 0:
            raise ValueError("slot counts cannot be negative")
        if self.speed <= 0 or self.disk_capacity <= 0:
            raise ValueError("speed and disk capacity must be positive")


@dataclass
class DedicatedClusterConfig:
    """Configuration of a static, churn-free Hadoop cluster."""

    #: DNS domain; one domain = one site = "configured as one rack".
    domain: str = "cluster.unl.edu"
    master_host: str = "master.cluster.unl.edu"
    groups: List[NodeGroup] = field(default_factory=list)
    hdfs: HdfsConfig = field(default_factory=stock_hadoop_config)
    mr: MRConfig = field(default_factory=stock_mr_config)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    seed: int = 0

    def validate(self) -> None:
        """Validate all sub-configs."""
        if not self.groups:
            raise ValueError("cluster needs at least one node group")
        for g in self.groups:
            g.validate()
        self.hdfs.validate()
        self.mr.validate()
        self.fabric.validate()

    @property
    def total_nodes(self) -> int:
        """Worker-node count."""
        return sum(g.count for g in self.groups)

    @property
    def total_map_slots(self) -> int:
        """Cluster-wide map slots (= cores, per the paper's rule)."""
        return sum(g.count * g.map_slots for g in self.groups)

    @property
    def total_reduce_slots(self) -> int:
        """Cluster-wide reduce slots."""
        return sum(g.count * g.reduce_slots for g in self.groups)


def table3_config(**overrides) -> DedicatedClusterConfig:
    """The exact Table III cluster: 30 workers, 100 map + 30 reduce slots."""
    cfg = DedicatedClusterConfig(
        groups=[
            NodeGroup(count=20, map_slots=4, reduce_slots=1),  # Slave nodes-I
            NodeGroup(count=10, map_slots=2, reduce_slots=1),  # Slave nodes-II
        ])
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


class DedicatedCluster:
    """A static single-rack Hadoop deployment (no grid, no churn)."""

    def __init__(self, sim: Simulator,
                 config: Optional[DedicatedClusterConfig] = None) -> None:
        self.sim = sim
        self.config = config or table3_config()
        self.config.validate()
        self.topology = NetworkTopology(DnsSiteResolver())
        self.fabric = NetworkFabric(sim, self.topology, self.config.fabric)
        self.topology.add_host(self.config.master_host)
        placement = SiteAwarePolicy(
            self.topology, np.random.default_rng(self.config.seed + 1))
        self.namenode = Namenode(sim, self.topology, placement, self.config.hdfs)
        self.namenode.start()
        self.jobtracker = JobTracker(sim, self.namenode, self.topology,
                                     self.config.mr)
        self.jobtracker.start()
        self.disks: Dict[str, Disk] = {}
        self.datanodes: Dict[str, Datanode] = {}
        self.tasktrackers: Dict[str, TaskTracker] = {}
        seq = 0
        for group in self.config.groups:
            for _ in range(group.count):
                seq += 1
                host = f"slave{seq:03d}.{self.config.domain}"
                self._add_node(host, group)

    def _add_node(self, host: str, group: NodeGroup) -> None:
        disk = Disk(self.sim, host, group.disk_capacity,
                    group.disk_read_rate, group.disk_write_rate,
                    channel=self.fabric.channel,
                    partition=self.fabric.topology.site_of(host))
        dn = Datanode(self.sim, host, disk, self.fabric, self.namenode,
                      self.config.hdfs)
        dn.start()
        tt = TaskTracker(self.sim, host, disk, self.fabric, self.namenode,
                         self.jobtracker, group.map_slots, group.reduce_slots,
                         group.speed, self.config.mr)
        tt.start()
        self.disks[host] = disk
        self.datanodes[host] = dn
        self.tasktrackers[host] = tt

    # -- workload interface -----------------------------------------------------
    def client(self) -> HdfsClient:
        """An HDFS client on the master node."""
        return HdfsClient(self.sim, self.namenode, self.fabric,
                          self.config.master_host)

    def preload_input(self, name: str, n_blocks: int) -> None:
        """Instantly place an input file of ``n_blocks`` full blocks."""
        self.client().preload_file(name, n_blocks * self.config.hdfs.block_size)

    def submit(self, spec: JobSpec) -> Job:
        """Submit a MapReduce job."""
        return self.jobtracker.submit_job(spec)

    def run_until_jobs_done(self, jobs: List[Job], timeout: float = 200_000.0,
                            step: Optional[float] = None) -> float:
        """Advance simulation until every job in ``jobs`` finished.

        Event-driven: returns at the exact finish timestamp of the last
        job.  ``step`` is kept for backwards compatibility and ignored."""
        done = self.jobtracker.when_jobs_done(jobs)
        if self.sim.run_until(done, self.sim.now + timeout):
            return self.sim.now
        self.jobtracker.cancel_wait(done)
        unfinished = [(j.job_id, j.status) for j in jobs if j.finish_time is None]
        raise TimeoutError(f"jobs unfinished after {timeout}s: {unfinished}")

    def __repr__(self) -> str:
        return (f"<DedicatedCluster {self.config.total_nodes} nodes, "
                f"{self.config.total_map_slots}m/"
                f"{self.config.total_reduce_slots}r slots>")
