"""Comparison systems: the Table III dedicated cluster and Hadoop On Demand."""

from .dedicated import (
    DedicatedCluster,
    DedicatedClusterConfig,
    NodeGroup,
    table3_config,
)
from .hod import HODConfig, HODJobResult, HODRunner

__all__ = [
    "DedicatedCluster",
    "DedicatedClusterConfig",
    "NodeGroup",
    "table3_config",
    "HODConfig",
    "HODJobResult",
    "HODRunner",
]
