"""Hadoop On Demand (HOD): the related-work baseline of §V.

"HOD will create a temporary Hadoop platform on the nodes obtained from
the Grid Scheduler and shut down Hadoop after the MapReduce job finishes.
For frequent MapReduce requests, HOD has high reconstruction overhead,
fixed node number, and a randomly chosen head node.  Compared to HOD, HOG
does not have reconstruction time, has a scalable size, and has a static
dedicated head node."

Each HOD request pays, per job:

1. node acquisition from the grid scheduler (queue + launch),
2. Hadoop cluster construction (HDFS format + daemon startup),
3. input staging into the fresh HDFS (timed through a simulated cluster),
4. the job itself,
5. teardown (not part of response time).

We simulate each request on its own fresh cluster — which is exactly
HOD's semantics: nothing is shared between requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..hdfs.config import GB, stock_hadoop_config
from ..mapreduce.config import stock_mr_config
from ..mapreduce.job import JobSpec
from ..sim.engine import Simulator
from .dedicated import DedicatedCluster, DedicatedClusterConfig, NodeGroup

__all__ = ["HODConfig", "HODJobResult", "HODRunner"]


@dataclass
class HODConfig:
    """Cost model of one HOD allocation."""

    #: Nodes acquired per request (HOD's node count is fixed per request).
    nodes_per_request: int = 30
    #: Mean grid-scheduler queueing delay per allocation, seconds.
    allocation_delay_mean: float = 60.0
    #: HDFS format + daemon startup time for the temporary cluster.
    construction_time: float = 90.0
    #: Uncounted teardown time (for completeness in logs).
    teardown_time: float = 30.0
    map_slots_per_node: int = 2
    reduce_slots_per_node: int = 1

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical settings."""
        if self.nodes_per_request < 1:
            raise ValueError("HOD needs at least one node per request")
        if min(self.allocation_delay_mean, self.construction_time,
               self.teardown_time) < 0:
            raise ValueError("times cannot be negative")


@dataclass
class HODJobResult:
    """Outcome of one HOD request."""

    job_name: str
    allocation_time: float
    construction_time: float
    staging_time: float
    job_time: float

    @property
    def response_time(self) -> float:
        """User-visible latency: everything before the answer."""
        return (self.allocation_time + self.construction_time
                + self.staging_time + self.job_time)

    @property
    def overhead_fraction(self) -> float:
        """Share of response time that is reconstruction overhead."""
        return 1.0 - self.job_time / self.response_time if self.response_time else 0.0


class HODRunner:
    """Executes job specs the HOD way: one disposable cluster per job."""

    def __init__(self, config: Optional[HODConfig] = None, seed: int = 0) -> None:
        self.config = config or HODConfig()
        self.config.validate()
        self.rng = np.random.default_rng(seed)

    def _fresh_cluster(self, sim: Simulator) -> DedicatedCluster:
        cfg = DedicatedClusterConfig(
            domain="hod.unl.edu",
            master_host="head.hod.unl.edu",
            groups=[NodeGroup(count=self.config.nodes_per_request,
                              map_slots=self.config.map_slots_per_node,
                              reduce_slots=self.config.reduce_slots_per_node)],
            hdfs=stock_hadoop_config(),
            mr=stock_mr_config(),
        )
        return DedicatedCluster(sim, cfg)

    def run_job(self, spec: JobSpec) -> HODJobResult:
        """Run one request end to end on a disposable cluster."""
        allocation = float(self.rng.exponential(self.config.allocation_delay_mean))

        sim = Simulator()
        cluster = self._fresh_cluster(sim)
        # Stage the input into the fresh HDFS with real (timed) writes —
        # this is work HOG does once, but HOD repeats per request.
        t0 = sim.now
        ev = cluster.client().write_file(
            spec.input_file, spec.num_maps * cluster.config.hdfs.block_size)
        sim.run(until=ev)
        staging = sim.now - t0

        t1 = sim.now
        job = cluster.submit(spec)
        cluster.run_until_jobs_done([job])
        job_time = sim.now - t1

        return HODJobResult(
            job_name=spec.name,
            allocation_time=allocation,
            construction_time=self.config.construction_time,
            staging_time=staging,
            job_time=job_time,
        )

    def run_schedule(self, specs: List[JobSpec]) -> List[HODJobResult]:
        """Run a list of requests (independent clusters, as HOD would)."""
        return [self.run_job(s) for s in specs]
