"""The injector: executes a :class:`~repro.faults.plan.FaultPlan`.

Pure sim-time machinery: one generator process replays the plan's events
relative to the instant :meth:`Injector.start` is called, window restores
are scheduled through simulator timeouts, and every victim choice is a
deterministic function of system state (running pilots ordered by
glidein id — i.e. longest-running first).  Identical seeds therefore
produce identical fault streams, which the chaos harness asserts
byte-for-byte via :attr:`Injector.stream`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..grid.glidein import Glidein
from ..grid.site import GridSite
from ..sim.engine import Simulator
from ..sim.events import Interrupt
from ..sim.monitor import CounterSet
from .plan import FaultEvent, FaultPlan

__all__ = ["Injector"]


class Injector:
    """Schedules a fault plan against a live :class:`HOGSystem`."""

    def __init__(self, sim: Simulator, system, plan: FaultPlan) -> None:
        self.sim = sim
        self.system = system
        self.plan = plan
        self.counters = CounterSet()
        #: Append-only fault action log: one dict per action (fire or
        #: restore), in execution order.  The determinism contract is that
        #: two runs with identical seeds produce identical streams.
        self.stream: List[dict] = []
        self._armed_at: Optional[float] = None
        self._proc = None
        self._sites: Dict[str, GridSite] = {s.name: s for s in system.sites}
        # Window nesting depths so overlapping windows at one site compose
        # (the condition lifts only when the *last* open window closes).
        self._downtime_depth: Dict[str, int] = {}
        self._degrade_depth: Dict[str, int] = {}
        self._partition_depth: Dict[str, int] = {}
        #: Per-site pool of pilots paused by outage blackouts, keyed by
        #: glidein id (merged across overlapping windows; drained when the
        #: site's last blackout heals).
        self._paused: Dict[str, Dict[int, Glidein]] = {}

    # -- control -----------------------------------------------------------
    def start(self) -> None:
        """Arm the plan: event times become relative to ``sim.now``."""
        if self._proc is not None:
            raise RuntimeError("injector already started")
        self._armed_at = self.sim.now
        self._proc = self.sim.process(self._run(), name="fault-injector")

    def stop(self) -> None:
        """Cancel any not-yet-fired events (restores still run)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("injector stopped")

    def summary(self) -> Dict[str, int]:
        """Counter snapshot plus the stream length."""
        out = dict(sorted(self.counters.as_dict().items()))
        out["stream_entries"] = len(self.stream)
        return out

    # -- internals ---------------------------------------------------------
    def _run(self):
        try:
            for ev in self.plan.events:
                due = self._armed_at + ev.time
                if due > self.sim.now:
                    yield self.sim.timeout(due - self.sim.now)
                self._fire(ev)
        except Interrupt:
            return

    def _fire(self, ev: FaultEvent) -> None:
        site = self._sites.get(ev.site)
        if site is None:
            self.counters.incr("events_skipped")
            self._record("skip", ev.site, reason="unknown site")
            return
        handler: Callable[[FaultEvent, GridSite], None] = {
            "site_blackout": self._site_blackout,
            "wan_degrade": self._wan_degrade,
            "node_wave": self._node_wave,
            "disk_fail": self._disk_fail,
            "straggler": self._straggler,
        }[ev.kind]
        self.counters.incr("events_fired")
        self.counters.incr(f"fired_{ev.kind}")
        handler(ev, site)

    def _record(self, action: str, site: str, **detail) -> None:
        entry = {"t": self.sim.now, "action": action, "site": site}
        entry.update(detail)
        self.stream.append(entry)

    def _after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``sim.now + delay`` (window restore)."""
        self.sim.call_after(delay, lambda _arg: fn())

    def _victims(self, site: GridSite) -> List[Glidein]:
        """Running pilots at ``site``, longest-running (lowest id) first —
        the deterministic victim order."""
        return sorted(site.running_glideins(), key=lambda g: g.glidein_id)

    def _fabric_site(self, site: GridSite) -> str:
        """The network-topology site key (last two DNS labels) for a grid
        site — what the fabric's WAN links are keyed by."""
        return ".".join(site.domain.split(".")[-2:])

    # -- site blackout -----------------------------------------------------
    def _site_blackout(self, ev: FaultEvent, site: GridSite) -> None:
        mode = ev.mode or "outage"
        self._downtime_depth[site.name] = \
            self._downtime_depth.get(site.name, 0) + 1
        site.in_downtime = True
        if mode == "evict":
            victims = self._victims(site)
            for g in victims:
                g.preempt()
            self.counters.incr("blackout_evictions", len(victims))
            self._record("blackout", site.name, mode=mode,
                         evicted=len(victims), duration=ev.duration)
        else:
            pool = self._paused.setdefault(site.name, {})
            paused = 0
            for g in self._victims(site):
                if g.node is not None and g.glidein_id not in pool:
                    g.node.pause()
                    pool[g.glidein_id] = g
                    paused += 1
            self.counters.incr("blackout_pauses", paused)
            self._record("blackout", site.name, mode=mode,
                         paused=paused, duration=ev.duration)
        self._after(ev.duration, lambda: self._blackout_heal(site))

    def _blackout_heal(self, site: GridSite) -> None:
        depth = self._downtime_depth.get(site.name, 1) - 1
        self._downtime_depth[site.name] = depth
        if depth > 0:
            return  # another blackout window still open
        site.in_downtime = False
        pool = self._paused.pop(site.name, {})
        resumed = lost = 0
        for g in pool.values():
            # A pilot evicted during the outage (site hazard clock, node
            # wave, elastic shrink) does not come back on heal.
            if g.state == Glidein.RUNNING and g.node is not None \
                    and g.node.resume():
                resumed += 1
            else:
                lost += 1
        self.counters.incr("blackout_resumes", resumed)
        self.counters.incr("blackout_losses", lost)
        self._record("blackout_heal", site.name, resumed=resumed, lost=lost)

    # -- WAN degradation / partition --------------------------------------
    def _wan_degrade(self, ev: FaultEvent, site: GridSite) -> None:
        fsite = self._fabric_site(site)
        fabric = self.system.fabric
        if ev.mode == "partition" or ev.value == 0.0:
            self._partition_depth[fsite] = \
                self._partition_depth.get(fsite, 0) + 1
            aborted = fabric.partition_site(fsite)
            self.counters.incr("partition_aborted_flows", aborted)
            self._record("wan_partition", site.name,
                         aborted=aborted, duration=ev.duration)
            self._after(ev.duration, lambda: self._wan_heal(site, fsite))
        else:
            self._degrade_depth[fsite] = \
                self._degrade_depth.get(fsite, 0) + 1
            base = fabric.config.site_uplink_overrides.get(
                fsite, fabric.config.site_uplink_bandwidth)
            fabric.set_site_uplink(fsite, base * ev.value)
            self._record("wan_degrade", site.name,
                         fraction=ev.value, duration=ev.duration)
            self._after(ev.duration, lambda: self._wan_restore(site, fsite))

    def _wan_heal(self, site: GridSite, fsite: str) -> None:
        depth = self._partition_depth.get(fsite, 1) - 1
        self._partition_depth[fsite] = depth
        if depth > 0:
            return
        self.system.fabric.heal_site(fsite)
        self._record("wan_heal", site.name)

    def _wan_restore(self, site: GridSite, fsite: str) -> None:
        depth = self._degrade_depth.get(fsite, 1) - 1
        self._degrade_depth[fsite] = depth
        if depth > 0:
            return  # a nested degrade window still owns the uplink
        self.system.fabric.set_site_uplink(fsite, None)
        self._record("wan_restore", site.name)

    # -- correlated node-failure wave --------------------------------------
    def _node_wave(self, ev: FaultEvent, site: GridSite) -> None:
        zombie = (True if ev.mode == "zombie"
                  else False if ev.mode == "preempt" else None)
        victims = self._victims(site)[:ev.count]
        for g in victims:
            g.preempt(zombie=zombie)
        self.counters.incr("wave_preemptions", len(victims))
        if len(victims) < ev.count:
            self.counters.incr("events_short", ev.count - len(victims))
        self._record("node_wave", site.name, mode=ev.mode or "preempt",
                     preempted=len(victims))

    # -- per-datanode disk failure -----------------------------------------
    def _disk_fail(self, ev: FaultEvent, site: GridSite) -> None:
        victims = [g for g in self._victims(site)
                   if g.node is not None and g.node.disk.alive][:ev.count]
        for g in victims:
            g.node.disk.wipe()
        self.counters.incr("disks_failed", len(victims))
        if len(victims) < ev.count:
            self.counters.incr("events_short", ev.count - len(victims))
        self._record("disk_fail", site.name, failed=len(victims))

    # -- straggler (slow-node) window --------------------------------------
    def _straggler(self, ev: FaultEvent, site: GridSite) -> None:
        victims = [g for g in self._victims(site)
                   if g.node is not None][:ev.count]
        slowed: List[Tuple[object, float]] = []
        for g in victims:
            tt = g.node.tasktracker
            slowed.append((tt, tt.speed))
            tt.speed = tt.speed / ev.value
        self.counters.incr("stragglers_started", len(slowed))
        if len(victims) < ev.count:
            self.counters.incr("events_short", ev.count - len(victims))
        self._record("straggler", site.name, slowed=len(slowed),
                     factor=ev.value, duration=ev.duration)
        self._after(ev.duration, lambda: self._straggler_end(site, slowed))

    def _straggler_end(self, site: GridSite,
                       slowed: List[Tuple[object, float]]) -> None:
        # Restoring a dead/replaced tracker's speed is harmless: a
        # replacement node is a fresh object with its own speed draw.
        for tt, orig in slowed:
            tt.speed = orig
        self.counters.incr("stragglers_ended", len(slowed))
        self._record("straggler_end", site.name, restored=len(slowed))

    def __repr__(self) -> str:
        return (f"<Injector {len(self.plan)} events "
                f"fired={self.counters.get('events_fired')}>")
