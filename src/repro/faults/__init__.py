"""Declarative fault injection and runtime invariant checking.

The HOG paper's claim is that MapReduce *survives* hostile grid
conditions; this package is how the repro scripts those conditions and
proves the survival:

- :mod:`~repro.faults.plan` — :class:`FaultPlan`, a dict/JSON
  round-trippable schedule of typed fault events (site blackout/restore
  windows, WAN degradation/partition windows, correlated node-failure
  waves, per-datanode disk failures, straggler windows);
- :mod:`~repro.faults.injector` — :class:`Injector`, the sim-time
  executor: pure simulated-clock scheduling, deterministic victim
  selection, identical seeds → identical fault streams;
- :mod:`~repro.faults.invariants` — :class:`InvariantChecker`, registered
  runtime invariants evaluated on probe ticks and phase boundaries under
  the telemetry zero-impact contract.
"""

from .injector import Injector
from .invariants import InvariantChecker, Violation
from .plan import FaultEvent, FaultPlan

__all__ = ["FaultEvent", "FaultPlan", "Injector", "InvariantChecker",
           "Violation"]
