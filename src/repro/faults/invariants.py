"""Runtime invariant checking over a live HOG system.

An :class:`InvariantChecker` evaluates a set of registered invariants —
consistency predicates over namenode metadata, jobtracker task state,
simulator heaps, and tracer accounting — on a sim-time cadence and/or at
phase boundaries.  Faults are only as trustworthy as the recovery they
exercise; the checker is what turns "the run finished" into "the run
finished *and* the metadata reconverged".

It honours the telemetry zero-impact contract exactly like
:class:`~repro.obs.probes.ProbeSet`:

- **zero-cost disabled** — nothing is constructed, no timer exists;
- **decision-free enabled** — every invariant is a pure read over live
  state (no mutation, no randomness), the cadence timer is a single
  pooled callback timer (``Simulator.call_after``) per tick counted in
  :attr:`InvariantChecker.events_injected`, so enabling the checker can
  never flip a simulation decision and subtracted event counts stay
  byte-identical.

Transients are respected: each invariant only asserts what must hold
*between* engine events (the checker runs from a timer callback, never
mid-function), e.g. a replaced-in-place tracker's orphaned attempts are
tolerated until the monitor's safety net, but an attempt still RUNNING
after its tracker was *declared dead* is a violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sim.engine import Simulator

__all__ = ["InvariantChecker", "Violation"]

#: Stored-violation cap: everything is counted, only the first this many
#: carry full detail (a broken invariant fires every tick; unbounded
#: detail storage would itself violate the metadata-bounded spirit).
MAX_STORED = 200


@dataclass(frozen=True)
class Violation:
    """One invariant failure at one check point."""

    #: Sim time of the check that caught it.
    time: float
    #: Registered invariant name.
    invariant: str
    #: Human-readable specifics (block id, host, sizes...).
    detail: str
    #: Check label ("tick", or the phase-boundary name).
    label: str = ""


class InvariantChecker:
    """Evaluates registered invariants on ticks and phase boundaries."""

    def __init__(self, sim: Simulator, system,
                 interval: Optional[float] = None) -> None:
        if interval is not None and interval <= 0:
            raise ValueError(
                f"invariant interval must be positive, got {interval!r}")
        self.sim = sim
        self.system = system
        self.interval = interval
        #: name → zero-arg callable returning a list of detail strings
        #: (empty = invariant holds).
        self._invariants: Dict[str, Callable[[], List[str]]] = {}
        self.violations: List[Violation] = []
        #: Total violations per invariant (beyond the stored cap too).
        self.violation_counts: Dict[str, int] = {}
        self.checks_run = 0
        #: Fired cadence-timer events (one engine event each) — subtract
        #: from ``events_processed`` for checker-invariant event counts.
        self.events_injected = 0
        self._running = False
        self._register_defaults()

    # -- registration ------------------------------------------------------
    def register(self, name: str,
                 fn: Callable[[], List[str]]) -> None:
        """Add (or replace) an invariant.  ``fn`` must be a pure read."""
        self._invariants[name] = fn

    def _register_defaults(self) -> None:
        self.register("needed_consistent", self._inv_needed_consistent)
        self.register("block_map_bidirectional", self._inv_block_map)
        self.register("lost_set_terminal", self._inv_lost_set)
        self.register("repair_progress", self._inv_repair_progress)
        self.register("heaps_bounded", self._inv_heaps_bounded)
        self.register("no_orphan_attempts", self._inv_no_orphans)
        self.register("tracer_accounting", self._inv_tracer)

    # -- lifecycle (ProbeSet idiom) ----------------------------------------
    def start(self) -> None:
        """Run an immediate check and arm the cadence timer (if any)."""
        if self._running:
            return
        self._running = True
        self.check("start")
        if self.interval is not None:
            self._arm()

    def stop(self) -> None:
        """Disarm: a pending timer fires once more as a counted no-op."""
        self._running = False

    def _arm(self) -> None:
        self.sim.call_after(self.interval, self._tick)

    def _tick(self, _arg) -> None:
        self.events_injected += 1
        if not self._running:
            return
        self.check("tick")
        self._arm()

    # -- checking ----------------------------------------------------------
    def check(self, label: str = "") -> int:
        """Evaluate every invariant now; returns new violation count."""
        self.checks_run += 1
        now = self.sim.now
        found = 0
        for name, fn in self._invariants.items():
            for detail in fn():
                found += 1
                self.violation_counts[name] = \
                    self.violation_counts.get(name, 0) + 1
                if len(self.violations) < MAX_STORED:
                    self.violations.append(
                        Violation(now, name, detail, label))
        return found

    def summary(self) -> dict:
        """JSON-ready outcome (deterministically ordered)."""
        return {
            "checks_run": self.checks_run,
            "violations": sum(self.violation_counts.values()),
            "by_invariant": dict(sorted(self.violation_counts.items())),
            "first_violations": [
                {"t": v.time, "invariant": v.invariant,
                 "detail": v.detail, "label": v.label}
                for v in self.violations[:10]],
        }

    # -- default invariants (pure reads) ------------------------------------
    def _inv_needed_consistent(self) -> List[str]:
        """Every under-replicated entry names a live block genuinely below
        its target — the incremental ``_needed`` set never drifts from the
        block map it mirrors."""
        nn = self.system.namenode
        out = []
        for bid in nn._needed:
            info = nn._blocks.get(bid)
            if info is None:
                out.append(f"needed block {bid} not in block map")
            elif info.live_replica_count >= nn._replication_target(bid):
                out.append(f"block {bid} needed but at target "
                           f"({info.live_replica_count} replicas)")
        return out

    def _inv_block_map(self) -> List[str]:
        """Block→host and host→block maps agree in both directions."""
        nn = self.system.namenode
        out = []
        for bid, info in nn._blocks.items():
            for host in info.replicas:
                if bid not in nn._host_blocks.get(host, {}):
                    out.append(f"replica {bid}@{host} missing from host map")
        for host, bids in nn._host_blocks.items():
            for bid in bids:
                info = nn._blocks.get(bid)
                if info is None or host not in info.replicas:
                    out.append(f"host map {host} credits unknown replica {bid}")
        return out

    def _inv_lost_set(self) -> List[str]:
        """The lost-set is terminal: zero live replicas, out of the repair
        queue (it would otherwise hot-loop), disjoint from ``_needed``."""
        nn = self.system.namenode
        out = []
        for bid in nn._lost_blocks:
            info = nn._blocks.get(bid)
            if info is None:
                out.append(f"lost block {bid} not in block map")
                continue
            if info.live_replica_count != 0:
                out.append(f"lost block {bid} has "
                           f"{info.live_replica_count} replicas")
            if bid in nn._needed:
                out.append(f"lost block {bid} still in needed set")
            if bid in nn._repl_prio:
                out.append(f"lost block {bid} still in work queue")
        return out

    def _inv_repair_progress(self) -> List[str]:
        """No under-replicated block is ever *forgotten*: while live
        capacity suffices it must be queued, deferred on the retry
        backoff, or covered by in-flight copies — the safety half of
        "eventually reaches target"."""
        nn = self.system.namenode
        out = []
        for bid in nn._needed:
            if bid in nn._repl_prio or bid in nn._repl_deferred:
                continue
            info = nn._blocks.get(bid)
            if info is None:
                continue  # caught by needed_consistent
            missing = (nn._replication_target(bid) - info.live_replica_count
                       - len(info.pending_targets))
            if missing > 0:
                out.append(f"needed block {bid} unqueued, undeferred, "
                           f"{missing} short")
        return out

    def _inv_heaps_bounded(self) -> List[str]:
        """Lazy heaps and namenode metadata stay linear in real state —
        generous slack, so only a genuine leak (e.g. a hot requeue loop
        pushing every tick) trips it."""
        nn = self.system.namenode
        sim = self.sim
        blocks = len(nn._blocks)
        nodes = len(nn._nodes)
        out = []
        checks = [
            ("replication work heap", len(nn._repl_heap), 8 * blocks + 64),
            ("replication priority map", len(nn._repl_prio), blocks + 1),
            ("deferred heap", len(nn._deferred_heap), 8 * blocks + 64),
            ("heartbeat heap", len(nn._hb_heap), 4 * nodes + 16),
            ("invalidation backlog", nn.pending_invalidation_count(),
             8 * blocks + 64),
            ("event heap", len(sim._heap), 4096 + 100 * nodes + 16 * blocks),
        ]
        for name, size, bound in checks:
            if size > bound:
                out.append(f"{name} size {size} exceeds bound {bound}")
        return out

    def _inv_no_orphans(self) -> List[str]:
        """No attempt still RUNNING after its tracker was declared dead
        (``_lost_tracker`` fails them synchronously).  A live tracker
        replaced in place is a tolerated transient — the monitor's safety
        net requeues those."""
        jt = self.system.jobtracker
        out = []
        for job in jt.active_jobs():
            for task in job.maps + job.reduces:
                for attempt in task.running_attempts:
                    desc = jt._trackers.get(attempt.tracker.host)
                    if desc is None or not desc.alive:
                        out.append(
                            f"attempt {attempt.attempt_id} of "
                            f"{task.type}-{job.job_id}-{task.index} runs on "
                            f"dead tracker {attempt.tracker.host}")
        return out

    def _inv_tracer(self) -> List[str]:
        """Tracer ring-buffer accounting is consistent: every recorded
        span/instant is either kept or counted dropped."""
        tracer = getattr(self.system, "tracer", None)
        if tracer is None:
            return []
        stats = tracer.stats()
        out = []
        if stats["kept"] + stats["dropped"] != stats["recorded"]:
            out.append(f"tracer kept {stats['kept']} + dropped "
                       f"{stats['dropped']} != recorded {stats['recorded']}")
        if stats["dropped"] < 0:
            out.append(f"tracer dropped negative: {stats['dropped']}")
        return out
