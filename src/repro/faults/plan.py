"""Typed, serializable fault schedules.

A :class:`FaultPlan` is the declarative half of the fault engine: a
sorted list of :class:`FaultEvent` records, each naming a *kind*, a
target site, and (for windowed kinds) a duration.  Plans round-trip
through plain lists of dicts / JSON exactly like
:class:`~repro.grid.preemption.PreemptionTrace`, so a scenario's fault
schedule can be catalogued, diffed, and replayed byte-for-byte.

Times are sim-seconds **relative to the instant the injector is armed**
(the runner arms it when the cluster finishes ramping), mirroring the
preemption-trace convention.

Event kinds
-----------
``site_blackout``
    The site goes dark for ``duration`` seconds.  ``mode="outage"``
    (default) models a connectivity/power outage: the downtime calendar
    closes the site to new pilots and every running worker's daemons stop
    — disks intact — then restart at the window end, re-registering with
    their block reports (the namenode reconciles them).  ``mode="evict"``
    models a scheduled drain: the calendar closes and every running pilot
    is preempted; the site simply reopens at the window end.
``wan_degrade``
    The site's WAN uplink runs at ``value`` × its configured capacity for
    ``duration`` seconds (``0 < value < 1``), driving the fabric's
    ``site_uplink_overrides`` live.  ``mode="partition"`` (or
    ``value=0``) is the hard form: cross-site transfers touching the
    site fail fast for the window.
``node_wave``
    A correlated failure wave, layered on whatever ``PreemptionTrace``
    churn is already running: the ``count`` longest-running pilots at the
    site are preempted at once.  ``mode="zombie"`` forces the §IV-D1
    double-fork outcome.
``disk_fail``
    ``count`` per-datanode disk failures at the site: the media dies
    under a running daemon (reads/writes start failing; with the HOG
    disk self-check the daemon later shuts itself down).
``straggler``
    ``count`` nodes at the site run ``value``× slower (``value > 1``)
    for ``duration`` seconds, then recover — the slow-node window.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence

__all__ = ["FaultEvent", "FaultPlan", "KINDS", "WINDOWED_KINDS"]

#: Recognised event kinds.
KINDS = ("site_blackout", "wan_degrade", "node_wave", "disk_fail",
         "straggler")
#: Kinds that open a window and need a positive ``duration``.
WINDOWED_KINDS = ("site_blackout", "wan_degrade", "straggler")

#: Allowed ``mode`` values per kind ("" = kind's default).
_MODES: Dict[str, Sequence[str]] = {
    "site_blackout": ("", "outage", "evict"),
    "wan_degrade": ("", "degrade", "partition"),
    "node_wave": ("", "preempt", "zombie"),
    "disk_fail": ("",),
    "straggler": ("",),
}


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault (immutable, totally ordered for sorting)."""

    #: Sim-seconds after the injector arms.
    time: float
    #: One of :data:`KINDS`.
    kind: str
    #: Target grid site *name* (e.g. ``"UCSDT2"``).
    site: str
    #: Window length for :data:`WINDOWED_KINDS`; ignored otherwise.
    duration: float = 0.0
    #: Victim count for ``node_wave`` / ``disk_fail`` / ``straggler``.
    count: int = 0
    #: Kind-specific magnitude: ``wan_degrade`` bandwidth fraction,
    #: ``straggler`` slowdown factor.
    value: float = 0.0
    #: Kind-specific variant; see :data:`_MODES`.
    mode: str = ""

    def validate(self) -> None:
        """Raise ``ValueError`` on a malformed event."""
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault time cannot be negative")
        if not self.site:
            raise ValueError(f"{self.kind} event needs a target site")
        if self.mode not in _MODES[self.kind]:
            raise ValueError(
                f"{self.kind} mode must be one of {_MODES[self.kind]}, "
                f"got {self.mode!r}")
        if self.kind in WINDOWED_KINDS and self.duration <= 0:
            raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind in ("node_wave", "disk_fail", "straggler") \
                and self.count < 1:
            raise ValueError(f"{self.kind} needs count >= 1")
        if self.kind == "wan_degrade":
            partition = self.mode == "partition" or self.value == 0.0
            if not partition and not (0.0 < self.value < 1.0):
                raise ValueError(
                    "wan_degrade value must be a bandwidth fraction in "
                    "(0, 1), or 0 / mode='partition'")
        if self.kind == "straggler" and self.value <= 1.0:
            raise ValueError("straggler value is a slowdown factor > 1")


class FaultPlan:
    """An ordered, validated schedule of :class:`FaultEvent`."""

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        for ev in events:
            ev.validate()
        #: Events sorted by (time, kind, site, ...) — the dataclass total
        #: order — so equal-time events replay in a deterministic order
        #: independent of construction order.
        self.events: List[FaultEvent] = sorted(events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for ev in self.events:
            kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
        mix = ", ".join(f"{k}x{n}" for k, n in kinds.items())
        return f"<FaultPlan {len(self.events)} events ({mix})>"

    # -- serialization -----------------------------------------------------
    def to_list(self) -> List[dict]:
        """Plain-dict form (JSON-safe), one dict per event."""
        return [asdict(ev) for ev in self.events]

    @classmethod
    def from_list(cls, items: Sequence[dict]) -> "FaultPlan":
        """Inverse of :meth:`to_list`."""
        return cls([FaultEvent(**d) for d in items])

    def to_json(self, indent: int = 2) -> str:
        """Serialize to JSON."""
        return json.dumps(self.to_list(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan serialized by :meth:`to_json`."""
        return cls.from_list(json.loads(text))

    # -- generation --------------------------------------------------------
    @classmethod
    def fuzz(cls, rng, site_names: Sequence[str], horizon: float,
             n_events: int = 6) -> "FaultPlan":
        """A random (but rng-deterministic) plan for chaos testing.

        Draws ``n_events`` events of random kinds over ``[0, horizon)``
        against ``site_names``.  The same seeded generator always yields
        the identical plan — the chaos harness asserts this byte-for-byte
        before asserting run determinism.
        """
        events = []
        for _ in range(n_events):
            kind = KINDS[int(rng.integers(len(KINDS)))]
            site = site_names[int(rng.integers(len(site_names)))]
            time = float(rng.uniform(0.0, horizon))
            duration = float(rng.uniform(30.0, max(60.0, horizon / 4)))
            if kind == "site_blackout":
                mode = ("outage", "evict")[int(rng.integers(2))]
                events.append(FaultEvent(time, kind, site,
                                         duration=duration, mode=mode))
            elif kind == "wan_degrade":
                if rng.integers(4) == 0:
                    events.append(FaultEvent(time, kind, site,
                                             duration=duration,
                                             mode="partition"))
                else:
                    events.append(FaultEvent(
                        time, kind, site, duration=duration,
                        value=float(rng.uniform(0.05, 0.8))))
            elif kind == "node_wave":
                mode = ("", "zombie")[int(rng.integers(4) == 0)]
                events.append(FaultEvent(
                    time, kind, site, count=int(rng.integers(1, 4)),
                    mode=mode))
            elif kind == "disk_fail":
                events.append(FaultEvent(time, kind, site,
                                         count=int(rng.integers(1, 3))))
            else:  # straggler
                events.append(FaultEvent(
                    time, kind, site, duration=duration,
                    count=int(rng.integers(1, 4)),
                    value=float(rng.uniform(2.0, 6.0))))
        return cls(events)
