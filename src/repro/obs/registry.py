"""The metrics registry: one snapshot entry point for every counter.

Hot paths keep their counters as plain attribute increments (a registry
call per channel fast path would tax exactly the paths PR 7 made cheap);
the registry *binds* those attributes — plus whole
:class:`~repro.sim.monitor.CounterSet` bags and arbitrary snapshot
callables — under namespaces, and :meth:`Registry.snapshot` reads them
all at once.  Consumers (the scenario runner, the scale-sweep benchmark,
the inspect CLI) stop hand-plucking fields from live objects.

Gauges are *read-only probes* registered for the sim-time sampler
(:class:`~repro.obs.probes.ProbeSet`): a gauge function must not mutate
simulation state — that is the decision-free half of the telemetry
contract.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.monitor import CounterSet

__all__ = ["Histogram", "Registry", "trim_hist"]


def trim_hist(buckets: Sequence[int]) -> List[int]:
    """Copy ``buckets`` with trailing zero buckets trimmed (keeps small
    runs' records compact, like the channel's ``pass_size_hist``)."""
    hist = list(buckets)
    while hist and hist[-1] == 0:
        hist.pop()
    return hist


class Histogram:
    """A power-of-two-bucket histogram of positive integer samples.

    ``buckets[k]`` counts samples in ``[2^(k-1), 2^k)`` — the same
    convention as the channel core's ``pass_size_hist`` — so bucket 0
    holds zeros, bucket 1 holds ones, bucket 2 holds {2, 3}, and so on.
    """

    __slots__ = ("name", "buckets", "count", "total")

    def __init__(self, name: str, n_buckets: int = 24) -> None:
        self.name = name
        self.buckets = [0] * n_buckets
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        """Record one sample (clamped into the last bucket)."""
        self.buckets[min(int(value).bit_length(), len(self.buckets) - 1)] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> dict:
        """JSON-ready form with trailing zero buckets trimmed."""
        return {"buckets": trim_hist(self.buckets),
                "count": self.count, "total": self.total}


class Registry:
    """Namespaced bindings over the system's scattered telemetry.

    Three binding kinds feed :meth:`snapshot`:

    - :meth:`bind_attrs` — named plain-int (or list) attributes read off
      a live object (the channel core's fast-path counters);
    - :meth:`bind_counterset` — a whole :class:`CounterSet`, optionally
      filtered by key prefix (the jobtracker / namenode / factory bags);
    - :meth:`bind_snapshot` — an arbitrary zero-argument callable
      returning a dict (the control-plane roll-up).

    Owned :class:`Histogram` instances and registered gauges round out
    the registry; gauges are sampled by :class:`~repro.obs.probes.ProbeSet`
    rather than snapshotted.
    """

    def __init__(self) -> None:
        #: namespace → list of zero-arg callables each yielding a dict.
        self._sources: Dict[str, List[Callable[[], dict]]] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: gauge name → zero-arg read-only callable.
        self._gauges: Dict[str, Callable[[], float]] = {}

    # -- binding -----------------------------------------------------------
    def bind_snapshot(self, namespace: str,
                      fn: Callable[[], dict]) -> None:
        """Merge ``fn()``'s dict into ``namespace`` at snapshot time."""
        self._sources.setdefault(namespace, []).append(fn)

    def bind_attrs(self, namespace: str, obj: object,
                   names: Sequence[str],
                   rename: Optional[Dict[str, str]] = None) -> None:
        """Read the listed attributes of ``obj`` into ``namespace``.

        List-valued attributes (histogram buckets) are copied with
        trailing zeros trimmed; everything else is taken verbatim.
        ``rename`` maps attribute names to snapshot keys.
        """
        rename = rename or {}

        def read() -> dict:
            out = {}
            for name in names:
                value = getattr(obj, name)
                if isinstance(value, list):
                    value = trim_hist(value)
                out[rename.get(name, name)] = value
            return out

        self.bind_snapshot(namespace, read)

    def bind_counterset(self, namespace: str, counters: CounterSet,
                        prefix: Optional[str] = None) -> None:
        """Snapshot a :class:`CounterSet`, optionally prefix-filtered."""

        def read() -> dict:
            d = counters.as_dict()
            if prefix is None:
                return d
            return {k: v for k, v in d.items() if k.startswith(prefix)}

        self.bind_snapshot(namespace, read)

    def histogram(self, namespace: str, name: str,
                  n_buckets: int = 24) -> Histogram:
        """Create (or fetch) an owned histogram under ``namespace``."""
        key = f"{namespace}.{name}"
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram(key, n_buckets)
            self.bind_snapshot(namespace, lambda: {name: hist.as_dict()})
        return hist

    # -- gauges ------------------------------------------------------------
    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a read-only gauge for the sim-time sampler.

        ``fn`` runs inside probe callbacks mid-simulation: it must only
        *read* state (counts, heap depths), never mutate or draw RNG.
        """
        self._gauges[name] = fn

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """All registered gauges (name → reader), in registration order."""
        return dict(self._gauges)

    def read_gauges(self) -> Dict[str, float]:
        """One immediate sample of every gauge."""
        return {name: fn() for name, fn in self._gauges.items()}

    # -- snapshot ----------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """Read every bound source: ``{namespace: {name: value}}``.

        Values are plain JSON-ready types; later bindings to the same
        namespace overwrite same-named keys from earlier ones.
        """
        snap: Dict[str, dict] = {}
        for namespace, readers in self._sources.items():
            bucket = snap.setdefault(namespace, {})
            for read in readers:
                bucket.update(read())
        return snap

    def namespaces(self) -> Tuple[str, ...]:
        """Bound namespaces, in binding order."""
        return tuple(self._sources)
