"""Sim-time series probes: sample registered gauges on a cadence.

A :class:`ProbeSet` owns one self-rescheduling timer.  Every
``interval`` simulated seconds it reads each registered gauge (live
nodes, active flows, pending maps/reduces, under-replication queue
depth, event-heap depth, ...) into a
:class:`~repro.sim.monitor.StepSeries`, giving every run per-gauge
timelines keyed by sim time.

Decision-free by construction: the timer is a plain callback — it reads
gauges, records values, and re-arms; it never mutates simulation state
and never draws randomness.  Its heap entries consume tie-break counter
values, which preserves the *relative* order of all other same-instant
events, so enabling probes (at any cadence) cannot flip a simulation
decision.

Zero-cost accounting: each fired probe tick is exactly ONE engine event
(a pooled callback timer via ``Simulator.call_after`` — no event object,
no generator process), counted in :attr:`ProbeSet.events_injected` — consumers
subtract it from ``Simulator.events_processed`` so reported event counts
are identical with probes off, on, or at any cadence (the determinism
guard asserts this byte-for-byte).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.engine import Simulator
from ..sim.monitor import StepSeries

__all__ = ["ProbeSet"]


class ProbeSet:
    """Samples ``gauges`` every ``interval`` sim-seconds into series."""

    def __init__(self, sim: Simulator,
                 gauges: Dict[str, Callable[[], float]],
                 interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"probe interval must be positive, got {interval!r}")
        self.sim = sim
        self.interval = float(interval)
        self._gauges = dict(gauges)
        #: gauge name → its sampled step series.
        self.series: Dict[str, StepSeries] = {
            name: StepSeries(name) for name in self._gauges}
        #: Probe timer events that actually fired (exactly one engine
        #: event each) — subtract from ``events_processed`` for
        #: obs-invariant event counts.
        self.events_injected = 0
        self.samples = 0
        self._running = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Take an immediate first sample and arm the cadence timer."""
        if self._running or not self._gauges:
            return
        self._running = True
        self._sample()
        self._arm()

    def stop(self) -> None:
        """Disarm: the pending timer (if any) fires once more as a no-op
        (its callback sees ``_running`` false and neither samples nor
        re-arms) — or never, if the run ends first."""
        self._running = False

    # -- internals ---------------------------------------------------------
    def _arm(self) -> None:
        self.sim.call_after(self.interval, self._tick)

    def _tick(self, _arg) -> None:
        self.events_injected += 1
        if not self._running:
            return
        self._sample()
        self._arm()

    def _sample(self) -> None:
        now = self.sim.now
        self.samples += 1
        series = self.series
        for name, fn in self._gauges.items():
            series[name].record(now, fn())

    # -- export ------------------------------------------------------------
    def timelines(self, max_points: Optional[int] = None) -> Dict[str, dict]:
        """JSON-ready ``{gauge: {"t": [...], "v": [...]}}`` timelines.

        ``max_points`` caps each series via
        :meth:`StepSeries.downsample` so huge runs stay storable.
        """
        out: Dict[str, dict] = {}
        for name, s in self.series.items():
            if len(s) == 0:
                continue
            times, values = s.downsample(max_points) if max_points \
                else (list(s.times), list(s.values))
            out[name] = {"t": [round(float(t), 3) for t in times],
                         "v": [float(v) for v in values]}
        return out
