"""Causal tracer: span records over sim time, Chrome-trace exportable.

Captures the causal chain the paper reasons about qualitatively —
job → task attempt → shuffle / HDFS flow — as *span records* with parent
ids, plus instantaneous control-plane marks (heartbeat rounds,
channel-core filling passes, preemption bursts).  Everything is keyed by
**sim time**; loading the export in Perfetto (or ``chrome://tracing``)
shows the run on a sim-time axis with one lane per host/subsystem.

Design constraints (the telemetry contract):

- *bounded*: records land in a ring buffer (``capacity`` newest kept);
  eviction only loses history, never blocks the run;
- *decision-free*: recording reads sim state and appends tuples — no
  mutation, no RNG, no events; instrumentation sites guard with a plain
  ``if tracer is not None`` so the disabled cost is one attribute load;
- *filterable*: a category allow-list drops unwanted record kinds at the
  emit site (``wants()``), keeping high-volume categories (``channel``)
  opt-in.

Categories used by the built-in instrumentation:

========== ==================================================
``job``     job submit → finish spans
``task``    task-attempt spans (parent: the job span)
``shuffle`` reduce-side shuffle fetch spans (parent: attempt)
``hdfs``    datanode block receive/serve flow spans
``control`` heartbeat-round marks (jobtracker)
``channel`` filling-pass marks with component size
``grid``    preemption bursts, glidein lifecycle marks
========== ==================================================
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Tracer", "CATEGORIES"]

#: Every category the built-in instrumentation emits.
CATEGORIES = ("job", "task", "shuffle", "hdfs", "control", "channel", "grid")

#: Record layout: (ts, dur, cat, name, track, span_id, parent_id, args).
#: ``dur is None`` marks an instantaneous event.
_Record = Tuple[float, Optional[float], str, str, str,
                Optional[str], Optional[str], Optional[dict]]


class Tracer:
    """Bounded, category-filtered span recorder."""

    def __init__(self, capacity: int = 100_000,
                 categories: Optional[Iterable[str]] = None) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        #: ``None`` = record every category.
        self._categories = None if categories is None else set(categories)
        self._buf: deque = deque(maxlen=capacity)
        self.recorded = 0
        self.by_category: Dict[str, int] = {}

    # -- emission ----------------------------------------------------------
    def wants(self, cat: str) -> bool:
        """True if records of ``cat`` pass the category filter."""
        return self._categories is None or cat in self._categories

    def span(self, cat: str, name: str, start: float, end: float,
             track: str, span_id: Optional[str] = None,
             parent: Optional[str] = None,
             args: Optional[dict] = None) -> None:
        """Record a completed span ``[start, end]`` on ``track``.

        Spans are emitted at their *end* (when the duration is known);
        the exporter re-sorts by start time.  ``parent`` names the
        enclosing span's ``span_id`` — the causal edge.
        """
        if not self.wants(cat):
            return
        self.recorded += 1
        self.by_category[cat] = self.by_category.get(cat, 0) + 1
        self._buf.append((start, end - start, cat, name, track,
                          span_id, parent, args))

    def instant(self, cat: str, name: str, ts: float, track: str,
                args: Optional[dict] = None) -> None:
        """Record an instantaneous mark at ``ts`` on ``track``."""
        if not self.wants(cat):
            return
        self.recorded += 1
        self.by_category[cat] = self.by_category.get(cat, 0) + 1
        self._buf.append((ts, None, cat, name, track, None, None, args))

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer."""
        return self.recorded - len(self._buf)

    def stats(self) -> dict:
        """JSON-ready summary (recorded/kept/dropped, per-category)."""
        return {"recorded": self.recorded, "kept": len(self._buf),
                "dropped": self.dropped,
                "by_category": dict(self.by_category)}

    def records(self) -> List[_Record]:
        """The kept records, oldest first."""
        return list(self._buf)

    # -- Chrome trace-event export ----------------------------------------
    def to_chrome(self) -> dict:
        """The kept records as a Chrome trace-event JSON object.

        Loadable in Perfetto / ``chrome://tracing``.  Sim seconds map to
        trace microseconds (so one trace "ms" is one sim millisecond);
        events are sorted by timestamp; each distinct ``track`` becomes
        one named thread under pid 1.  Span/parent ids ride in ``args``
        (``id``/``parent``) so causal edges survive the export.
        """
        tids: Dict[str, int] = {}
        events: List[dict] = []
        for start, dur, cat, name, track, span_id, parent, args in self._buf:
            tid = tids.get(track)
            if tid is None:
                tid = tids[track] = len(tids) + 1
            ev_args = dict(args) if args else {}
            if span_id is not None:
                ev_args["id"] = span_id
            if parent is not None:
                ev_args["parent"] = parent
            record = {"name": name, "cat": cat, "pid": 1, "tid": tid,
                      "ts": round(start * 1e6, 3)}
            if dur is None:
                record["ph"] = "i"
                record["s"] = "t"
            else:
                record["ph"] = "X"
                record["dur"] = round(dur * 1e6, 3)
            if ev_args:
                record["args"] = ev_args
            events.append(record)
        events.sort(key=lambda e: (e["ts"], e["tid"]))
        meta = [{"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": track}} for track, tid in tids.items()]
        return {"displayTimeUnit": "ms", "traceEvents": meta + events}

    def write(self, path) -> None:
        """Serialize :meth:`to_chrome` to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
