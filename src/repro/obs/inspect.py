"""Result-file inspector and run-diff CLI.

Usage::

    python -m repro.obs.inspect result.json
    python -m repro.obs.inspect result.json --no-plots
    python -m repro.obs.inspect new.json --diff old.json

Without ``--diff``, renders one ``ScenarioResult`` JSON (or a
``BENCH_scale.json`` report) for terminal reading: the registry-fed
counter sections, the engine self-profile, the tracer roll-up, and —
when the run sampled gauges — per-phase timeline plots drawn with
:mod:`repro.metrics.ascii_plot`.

With ``--diff BASELINE``, compares BASELINE (old) against the
positional file (new) through :func:`repro.obs.diff.diff_reports` and
exits 1 when any threshold-flagged regression is found — the same
engine that backs ``benchmarks/bench_scale_sweep.py --check-against``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..metrics.ascii_plot import plot_series
from .diff import Thresholds, diff_reports

__all__ = ["main"]

#: ScenarioResult sections rendered as counter tables, in display order.
_COUNTER_SECTIONS = ("channel", "control", "hdfs", "locality",
                     "preemptions", "balancer", "faults", "invariants",
                     "engine", "trace")


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, list):
        return "[" + ", ".join(str(v) for v in value) + "]"
    return str(value)


def _print_section(name: str, section: dict, out: List[str]) -> None:
    out.append(f"\n[{name}]")
    width = max((len(k) for k in section), default=0)
    for key, value in section.items():
        if isinstance(value, dict):
            out.append(f"  {key}:")
            for k2, v2 in value.items():
                out.append(f"    {k2:{width}s} {_fmt_value(v2)}")
        else:
            out.append(f"  {key:{width}s} {_fmt_value(value)}")


def _render_result(record: dict, width: int, plots: bool) -> str:
    out: List[str] = []
    out.append(f"scenario {record.get('scenario', '?')!r}  "
               f"nodes={record.get('nodes')}  seed={record.get('seed')}  "
               f"scale={record.get('scale')}  "
               f"schema=v{record.get('schema_version', 1)}")
    out.append(f"  makespan={record.get('makespan_seconds')}s  "
               f"sim={record.get('sim_seconds')}s  "
               f"wall={record.get('wall_seconds')}s  "
               f"events={_fmt_value(record.get('events', 0))}  "
               f"events/s={_fmt_value(record.get('events_per_second') or 0)}")
    out.append(f"  jobs_completed={record.get('jobs_completed')}  "
               f"failed_jobs={record.get('failed_jobs')}")
    phases = record.get("phases") or []
    if phases:
        out.append("\n[phases]")
        for p in phases:
            out.append(f"  {p['name']:10s} sim={p['sim_seconds']:>10.1f}s  "
                       f"wall={p.get('wall_seconds', 0):.3f}s")
    for name in _COUNTER_SECTIONS:
        section = record.get(name)
        if section:
            _print_section(name, section, out)
    timelines = record.get("timelines")
    if timelines and plots:
        for phase, gauges in timelines.items():
            for gname, series in gauges.items():
                ts, vs = series["t"], series["v"]
                if len(ts) < 2:
                    continue
                out.append("")
                out.append(plot_series(
                    np.asarray(ts), np.asarray(vs), width=width,
                    title=f"{phase}: {gname} "
                          f"(n={len(ts)}, max={max(vs):g})"))
    elif timelines:
        n = sum(len(g["t"]) for gauges in timelines.values()
                for g in gauges.values())
        out.append(f"\n[timelines] {len(timelines)} phase(s), "
                   f"{n} samples (re-run without --no-plots to draw)")
    return "\n".join(out)


def _render_bench(report: dict, out: List[str]) -> None:
    out.append(f"benchmark report: {report.get('benchmark', '?')}")
    for section in ("points", "contended_points", "frontier_points"):
        recs = report.get(section) or []
        if not recs:
            continue
        out.append(f"\n[{section}]")
        for rec in recs:
            out.append(
                f"  {rec.get('scenario', '?'):18s}@{rec.get('nodes'):>6}: "
                f"wall={rec.get('wall_seconds', 0):.2f}s  "
                f"events/s={_fmt_value(rec.get('events_per_second') or 0)}  "
                f"makespan={rec.get('makespan_seconds')}s")


def _run_diff(old: dict, new: dict, t: Thresholds) -> int:
    entries, notes = diff_reports(old, new, t)
    for note in notes:
        print(f"note: {note}")
    if not entries and not notes:
        print("no numeric differences")
        return 0
    flagged = [e for e in entries if e.flag]
    for entry in entries:
        print(entry.format())
    print(f"\n{len(entries)} changed value(s), {len(flagged)} flagged")
    return 1 if flagged else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.inspect", description=__doc__.splitlines()[0])
    parser.add_argument("result", type=Path,
                        help="ScenarioResult or BENCH_scale.json file")
    parser.add_argument("--diff", type=Path, default=None, metavar="OLD",
                        help="baseline file: report threshold-flagged "
                             "regressions of RESULT vs OLD, exit 1 on any")
    parser.add_argument("--no-plots", action="store_true",
                        help="skip the ascii timeline plots")
    parser.add_argument("--width", type=int, default=72,
                        help="plot width in columns (default 72)")
    parser.add_argument("--wall-tolerance", type=float, default=None,
                        help="allowed fractional wall-clock growth "
                             "(default 0.5)")
    parser.add_argument("--eps-floor", type=float, default=None,
                        help="events/s floor as a fraction of old "
                             "(default 0.8)")
    parser.add_argument("--fastpath-drop", type=float, default=None,
                        help="allowed absolute fast-path-rate drop "
                             "(default 0.05)")
    parser.add_argument("--behaviour-tolerance", type=float, default=None,
                        help="allowed fractional behaviour-metric change "
                             "(default 0.05)")
    parser.add_argument("--noise-floor", type=float, default=None,
                        help="omit changes smaller than this fraction")
    args = parser.parse_args(argv)

    record = json.loads(args.result.read_text())
    if args.diff is not None:
        baseline = json.loads(args.diff.read_text())
        t = Thresholds()
        for name in ("wall_tolerance", "eps_floor", "fastpath_drop",
                     "behaviour_tolerance", "noise_floor"):
            value = getattr(args, name)
            if value is not None:
                setattr(t, name, value)
        return _run_diff(baseline, record, t)

    out: List[str] = []
    if "benchmark" in record or "points" in record:
        _render_bench(record, out)
        print("\n".join(out))
    else:
        print(_render_result(record, args.width, not args.no_plots))
    return 0


if __name__ == "__main__":
    sys.exit(main())
