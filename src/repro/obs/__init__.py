"""Unified telemetry subsystem.

One coherent observability layer over the whole reproduction, replacing
the scattered ad-hoc counters that used to be hand-plucked per consumer:

- :mod:`repro.obs.registry` — a metrics registry (counters, gauges,
  power-of-two histograms) that absorbs every per-subsystem counter
  behind one :meth:`~repro.obs.registry.Registry.snapshot`;
- :mod:`repro.obs.probes` — sim-time series probes sampling registered
  gauges on a configurable cadence into
  :class:`~repro.sim.monitor.StepSeries` timelines;
- :mod:`repro.obs.trace` — a causal tracer (job → task attempt →
  shuffle/HDFS flow spans with parent ids, heartbeat-round and
  filling-pass events) exportable as Chrome trace-event JSON;
- :mod:`repro.obs.diff` — the run-diff engine behind
  ``python -m repro.obs.inspect --diff`` and the scale-sweep benchmark's
  ``--check-against`` regression gate;
- :mod:`repro.obs.inspect` — the CLI rendering snapshots, timelines,
  and threshold-flagged diffs of two result files.

The hard contract (enforced by ``tests/test_obs.py``): telemetry is
**zero-cost when disabled and decision-free when enabled** — the same
spec and seed produce byte-identical simulation payloads with tracing
and probing off, on, and at any sampling cadence.
"""

from .registry import Registry
from .probes import ProbeSet
from .trace import Tracer
from .diff import DiffEntry, Thresholds, diff_records, diff_reports

__all__ = ["Registry", "ProbeSet", "Tracer",
           "DiffEntry", "Thresholds", "diff_records", "diff_reports"]
