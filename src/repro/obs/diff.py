"""Run-diff engine: threshold-flagged comparison of result records.

Compares two :class:`~repro.scenarios.runner.ScenarioResult` JSON records
or two ``BENCH_scale.json`` reports and classifies every numeric change.
Three kinds of key get dedicated regression rules; everything else is
reported as informational drift:

- **wall clock** (``wall_seconds``): noisy by nature (background load) —
  flagged only when the new value exceeds the old by more than
  ``wall_tolerance`` (fractional, default ±50%);
- **throughput** (``events_per_second``): flagged when the new value
  falls below ``eps_floor`` × old (default 0.8);
- **fast-path rate** (derived: fast-path hits / (hits + filling
  passes)): flagged when it drops more than ``fastpath_drop`` absolute
  points (default 0.05) — the PR 7 frontier must not silently erode;
- **behaviour** (``makespan_seconds`` / ``workload_response_seconds``,
  ``failed_jobs``): any change beyond ``behaviour_tolerance`` flags,
  in *either* direction — a simulation-determined value moving means
  the model changed, which a perf PR must own explicitly;
- **fault metrics** (``blocks_all_replicas_lost``,
  ``lost_blocks_final``, ``under_replicated_final``...): recovery-health
  leaves that are zero in a converged run.  Any *increase* flags —
  in particular data loss appearing in a scenario whose baseline never
  lost a block is always a regression, with no tolerance knob.

Consumers: ``python -m repro.obs.inspect --diff`` and
``benchmarks/bench_scale_sweep.py --check-against`` (the CI gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Thresholds", "DiffEntry", "flatten_numeric", "fast_path_rate",
           "diff_records", "diff_reports"]

#: Channel counters that constitute "a rate change that skipped the pass".
_FAST_PATH_KEYS = ("arrival_fast_paths", "departure_fast_paths",
                   "completion_fast_paths")
#: Wall-derived keys: never part of the determinism payload, compared
#: only under the loose wall tolerance.
_WALL_SUFFIXES = ("wall_seconds",)
_BEHAVIOUR_SUFFIXES = ("makespan_seconds", "workload_response_seconds")
#: Recovery-health leaves: zero in any converged fault-free run, so any
#: increase is a correctness regression — flagged unconditionally, and a
#: key appearing only on the new side is compared against implicit zero.
_FAULT_SUFFIXES = ("blocks_all_replicas_lost", "lost_blocks_final",
                   "under_replicated_final", "deferred_final",
                   "invalidation_backlog_final", "invariant_violations")


@dataclass
class Thresholds:
    """Flagging knobs for one diff run (fractions, not percents)."""

    #: Allowed fractional wall-clock growth before flagging.
    wall_tolerance: float = 0.50
    #: New events/s must be at least this fraction of the old.
    eps_floor: float = 0.80
    #: Allowed absolute drop in the channel fast-path rate.
    fastpath_drop: float = 0.05
    #: Allowed fractional change of behaviour metrics (makespan etc.).
    behaviour_tolerance: float = 0.05
    #: Informational-drift threshold: numeric changes smaller than this
    #: fraction are omitted from the report entirely.
    noise_floor: float = 0.0


@dataclass
class DiffEntry:
    """One compared value; ``flag`` is ``None`` or the regression rule."""

    key: str
    old: Optional[float]
    new: Optional[float]
    flag: Optional[str] = None

    @property
    def delta(self) -> Optional[float]:
        if self.old is None or self.new is None:
            return None
        return self.new - self.old

    @property
    def pct(self) -> Optional[float]:
        """Fractional change vs. old (None when old is 0 or missing)."""
        if self.old in (None, 0) or self.new is None:
            return None
        return (self.new - self.old) / abs(self.old)

    def format(self) -> str:
        old = "-" if self.old is None else f"{self.old:g}"
        new = "-" if self.new is None else f"{self.new:g}"
        pct = "" if self.pct is None else f" ({self.pct:+.1%})"
        mark = f"  << {self.flag}" if self.flag else ""
        return f"{self.key}: {old} -> {new}{pct}{mark}"


def flatten_numeric(record: dict, prefix: str = "") -> Dict[str, float]:
    """Dot-keyed numeric leaves of a nested record.

    Lists are skipped (histograms and timelines diff poorly element-wise;
    their scalar roll-ups — counts, totals — are already leaves).
    """
    out: Dict[str, float] = {}
    for key, value in record.items():
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = value
        elif isinstance(value, dict):
            out.update(flatten_numeric(value, path + "."))
    return out


def fast_path_rate(flat: Dict[str, float], prefix: str = "") -> Optional[float]:
    """Fraction of channel rate changes resolved without a filling pass.

    Looks for the channel counters under any of the record layouts in
    the wild (``channel.*`` in a ScenarioResult, bare keys in a bench
    point record).
    """
    for ns in (prefix + "channel.", prefix + "registry.channel.", prefix):
        passes = flat.get(ns + "rebalances",
                          flat.get(ns + "fabric_rebalances"))
        if passes is None:
            continue
        hits = sum(flat.get(ns + k, 0) for k in _FAST_PATH_KEYS)
        if hits + passes <= 0:
            return None
        return hits / (hits + passes)
    return None


def _classify(key: str, old: float, new: float, t: Thresholds) -> Optional[str]:
    """The regression rule (or None) for one changed value."""
    leaf = key.rsplit(".", 1)[-1]
    if leaf in _FAULT_SUFFIXES:
        if new > old:
            return "fault metric increased (recovery regression)"
        return None
    if leaf in _WALL_SUFFIXES:
        if old > 0 and new > old * (1.0 + t.wall_tolerance):
            return f"wall regression (> +{t.wall_tolerance:.0%})"
        return None
    if leaf == "events_per_second":
        if old > 0 and new < old * t.eps_floor:
            return f"events/s below {t.eps_floor:.0%} floor"
        return None
    if leaf in _BEHAVIOUR_SUFFIXES:
        if old != 0 and abs(new - old) / abs(old) > t.behaviour_tolerance:
            return (f"behaviour shift (> ±{t.behaviour_tolerance:.0%})")
        if old == 0 and new != 0:
            return "behaviour shift (from zero)"
        return None
    if leaf == "failed_jobs" and new > old:
        return "new job failures"
    return None


def diff_records(old: dict, new: dict,
                 thresholds: Optional[Thresholds] = None,
                 prefix: str = "") -> List[DiffEntry]:
    """Compare two flat-comparable records; flagged entries first.

    Adds the derived ``fast_path_rate`` metric when both sides carry
    channel pass counters.
    """
    t = thresholds or Thresholds()
    fa, fb = flatten_numeric(old), flatten_numeric(new)
    entries: List[DiffEntry] = []
    for key in list(fa) + [k for k in fb if k not in fa]:
        a, b = fa.get(key), fb.get(key)
        if a == b:
            continue
        if a is None or b is None:
            # A fault metric materialising on the new side (old record
            # predates the counter, or the scenario never trashed a
            # replica before) is still data loss: compare against zero.
            flag = None
            if key.rsplit(".", 1)[-1] in _FAULT_SUFFIXES and (b or 0) > (a or 0):
                flag = "fault metric increased (recovery regression)"
            entries.append(DiffEntry(prefix + key, a, b, flag=flag))
            continue
        if a != 0 and abs(b - a) / abs(a) < t.noise_floor:
            continue
        entries.append(DiffEntry(prefix + key, a, b,
                                 flag=_classify(key, a, b, t)))
    ra, rb = fast_path_rate(fa), fast_path_rate(fb)
    if ra is not None and rb is not None and ra != rb:
        flag = (f"fast-path rate dropped > {t.fastpath_drop:.0%} abs"
                if rb < ra - t.fastpath_drop else None)
        entries.append(DiffEntry(prefix + "fast_path_rate",
                                 round(ra, 4), round(rb, 4), flag=flag))
    entries.sort(key=lambda e: e.flag is None)
    return entries


def _bench_sections(report: dict) -> Dict[str, dict]:
    """Key every record of a BENCH_scale.json report for matching.

    Points are keyed ``points[scenario@nodes]``; the coverage section's
    full ScenarioResults are keyed ``scenarios[name]``.
    """
    out: Dict[str, dict] = {}
    for section in ("points", "contended_points", "frontier_points"):
        for rec in report.get(section) or []:
            out[f"{section}[{rec.get('scenario', '?')}@{rec.get('nodes')}]"] = rec
    for name, rec in (report.get("scenarios") or {}).items():
        out[f"scenarios[{name}]"] = rec
    return out


def diff_reports(old: dict, new: dict,
                 thresholds: Optional[Thresholds] = None
                 ) -> Tuple[List[DiffEntry], List[str]]:
    """Diff two result files of either supported shape.

    Returns ``(entries, notes)`` where ``notes`` lists structural
    differences (records present on only one side).  Accepts a pair of
    ScenarioResult records or a pair of BENCH_scale.json reports; a
    bench report is recognised by its ``benchmark``/``points`` keys.
    """
    notes: List[str] = []
    if "benchmark" in old or "points" in old:
        a, b = _bench_sections(old), _bench_sections(new)
        entries: List[DiffEntry] = []
        for key in list(a) + [k for k in b if k not in a]:
            if key not in a:
                notes.append(f"only in new: {key}")
                continue
            if key not in b:
                notes.append(f"only in old: {key}")
                continue
            entries.extend(diff_records(a[key], b[key], thresholds,
                                        prefix=key + "."))
        entries.sort(key=lambda e: e.flag is None)
        return entries, notes
    return diff_records(old, new, thresholds), notes
