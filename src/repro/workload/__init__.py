"""The evaluation workload: Facebook bins (Tables I/II) and submission
schedules."""

from .facebook import (
    FACEBOOK_BINS,
    MEAN_INTERARRIVAL,
    TRUNCATED_REDUCES,
    FacebookBin,
    benchmark_job_mix,
    sample_interarrivals,
    truncated_bins,
)
from .schedule import (
    LoadgenParams,
    ScheduledJob,
    SubmissionSchedule,
    build_facebook_schedule,
)

__all__ = [
    "FacebookBin",
    "FACEBOOK_BINS",
    "TRUNCATED_REDUCES",
    "MEAN_INTERARRIVAL",
    "truncated_bins",
    "benchmark_job_mix",
    "sample_interarrivals",
    "LoadgenParams",
    "ScheduledJob",
    "SubmissionSchedule",
    "build_facebook_schedule",
]
