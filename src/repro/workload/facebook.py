"""The Facebook production workload (Tables I and II).

Zaharia et al. sampled job inter-arrival times and input sizes from a week
of Facebook's October 2009 trace; inter-arrivals were "roughly exponential
with a mean of 14 seconds", and job sizes quantize into nine bins
(Table I).  The HOG evaluation keeps the first six bins (≈89 % of
Facebook's jobs, bounded at 300 maps because the test cluster is small),
adds non-decreasing reduce counts (Table II), and draws 88 jobs on an
exponential schedule ≈21 minutes long.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "FacebookBin",
    "FACEBOOK_BINS",
    "TRUNCATED_REDUCES",
    "truncated_bins",
    "benchmark_job_mix",
    "sample_interarrivals",
    "MEAN_INTERARRIVAL",
]

#: "the distribution of inter-arrival times is exponential with a mean of
#: 14 seconds, making our total submission schedule 21 minutes long."
MEAN_INTERARRIVAL = 14.0


@dataclass(frozen=True)
class FacebookBin:
    """One row of Table I (optionally with Table II's reduce count)."""

    bin_id: int
    #: "#Maps" group label at Facebook (e.g. "3-20").
    maps_label: str
    #: "%Jobs at Facebook".
    percent_at_facebook: float
    #: "#Maps in Benchmark" — the representative map count.
    maps_in_benchmark: int
    #: "# of jobs in Benchmark".
    jobs_in_benchmark: int
    #: Table II reduce count (None for bins 7-9, which HOG excludes).
    reduces_in_benchmark: Optional[int] = None


#: Table I verbatim.
FACEBOOK_BINS: Sequence[FacebookBin] = (
    FacebookBin(1, "1", 39.0, 1, 38, 1),
    FacebookBin(2, "2", 16.0, 2, 16, 1),
    FacebookBin(3, "3-20", 14.0, 10, 14, 5),
    FacebookBin(4, "21-60", 9.0, 50, 8, 10),
    FacebookBin(5, "61-150", 6.0, 100, 6, 20),
    FacebookBin(6, "151-300", 6.0, 200, 6, 30),
    FacebookBin(7, "301-500", 4.0, 400, 4, None),
    FacebookBin(8, "501-1500", 4.0, 800, 4, None),
    FacebookBin(9, ">1501", 3.0, 4800, 4, None),
)

#: Table II verbatim: bin → (map tasks, reduce tasks).
TRUNCATED_REDUCES = {1: 1, 2: 1, 3: 5, 4: 10, 5: 20, 6: 30}


def truncated_bins() -> List[FacebookBin]:
    """Table II: the first six bins, the HOG evaluation workload.

    "our job size distribution follows the first six bins of job sizes
    shown in Table I, which cover about 89% of the jobs at the Facebook
    production cluster ... we exclude those jobs with more than 300 map
    tasks."
    """
    return [b for b in FACEBOOK_BINS if b.bin_id <= 6]


def benchmark_job_mix() -> List[FacebookBin]:
    """One bin entry per benchmark job: 88 jobs total
    (38+16+14+8+6+6), in bin order."""
    mix: List[FacebookBin] = []
    for b in truncated_bins():
        mix.extend([b] * b.jobs_in_benchmark)
    return mix


def sample_interarrivals(n: int, rng: np.random.Generator,
                         mean: float = MEAN_INTERARRIVAL) -> np.ndarray:
    """Exponential inter-arrival gaps for ``n`` submissions."""
    if n < 0:
        raise ValueError("n cannot be negative")
    return rng.exponential(mean, size=n)
