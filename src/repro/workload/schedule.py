"""Submission schedules: turning the Facebook job mix into timed JobSpecs.

The evaluation runs ``loadgen`` — "a test example in Hadoop source code and
used in evaluating Hadoop schedulers" — over the Table II mix.  Jobs of the
same bin share an input dataset ("creating datasets with the correct
sizes"), so the harness preloads one input file per bin and submits 88
jobs against them on an exponential schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..mapreduce.job import JobSpec
from .facebook import (
    MEAN_INTERARRIVAL,
    FacebookBin,
    benchmark_job_mix,
    sample_interarrivals,
)

__all__ = ["LoadgenParams", "ScheduledJob", "SubmissionSchedule",
           "build_facebook_schedule"]


@dataclass
class LoadgenParams:
    """Per-task cost model for the synthetic loadgen jobs.

    These are the calibration constants (DESIGN.md §5): they set the
    absolute scale of task durations but not the system behaviours under
    study, and are shared by every system we compare (HOG, the dedicated
    cluster, HOD).
    """

    #: CPU seconds per map task at unit node speed.
    map_cpu_per_block: float = 15.0
    #: CPU seconds per reduce task at unit node speed.
    reduce_cpu: float = 10.0
    #: Intermediate bytes emitted per input byte (loadgen keep-ratio).
    map_output_ratio: float = 0.4
    #: Output bytes per shuffled byte at each reduce.
    reduce_output_ratio: float = 0.25

    def validate(self) -> None:
        """Raise ``ValueError`` on negative costs."""
        if min(self.map_cpu_per_block, self.reduce_cpu,
               self.map_output_ratio, self.reduce_output_ratio) < 0:
            raise ValueError("loadgen parameters cannot be negative")


@dataclass
class ScheduledJob:
    """One job of a submission schedule."""

    submit_time: float
    spec: JobSpec
    bin_id: int


class SubmissionSchedule:
    """An ordered list of timed job submissions plus their shared inputs."""

    def __init__(self, jobs: List[ScheduledJob],
                 inputs: Dict[str, int]) -> None:
        if any(jobs[i].submit_time > jobs[i + 1].submit_time
               for i in range(len(jobs) - 1)):
            raise ValueError("schedule must be sorted by submit time")
        self.jobs = jobs
        #: input file name → number of blocks to preload.
        self.inputs = inputs

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def duration(self) -> float:
        """Time of the last submission."""
        return self.jobs[-1].submit_time if self.jobs else 0.0

    def jobs_of_bin(self, bin_id: int) -> List[ScheduledJob]:
        """Scheduled jobs belonging to one Table I/II bin."""
        return [j for j in self.jobs if j.bin_id == bin_id]


def build_facebook_schedule(
        rng: np.random.Generator,
        params: Optional[LoadgenParams] = None,
        mean_interarrival: float = MEAN_INTERARRIVAL,
        bins: Optional[Sequence[FacebookBin]] = None,
        scale: float = 1.0) -> SubmissionSchedule:
    """Build the §IV-A submission schedule.

    Parameters
    ----------
    rng:
        Randomness for job order and inter-arrival gaps.
    params:
        Loadgen cost model.
    mean_interarrival:
        Mean of the exponential gaps (paper: 14 s).
    bins:
        Job mix (defaults to Table II's 88 jobs).
    scale:
        Fraction of each bin's job count to keep (for quick runs); the
        mix proportions are preserved, minimum one job per bin.
    """
    params = params or LoadgenParams()
    params.validate()
    if not (0.0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")

    mix: List[FacebookBin] = []
    from .facebook import truncated_bins
    for b in (bins if bins is not None else truncated_bins()):
        if b.reduces_in_benchmark is None:
            raise ValueError(f"bin {b.bin_id} has no reduce count (Table II "
                             "covers bins 1-6 only)")
        count = max(1, int(round(b.jobs_in_benchmark * scale)))
        mix.extend([b] * count)

    order = rng.permutation(len(mix))
    gaps = sample_interarrivals(len(mix), rng, mean_interarrival)
    submit_times = np.cumsum(gaps)

    inputs: Dict[str, int] = {}
    jobs: List[ScheduledJob] = []
    for k, idx in enumerate(order):
        b = mix[int(idx)]
        input_file = f"/benchmark/input-bin{b.bin_id}"
        inputs[input_file] = b.maps_in_benchmark
        spec = JobSpec(
            name=f"loadgen-{k:03d}-bin{b.bin_id}",
            num_maps=b.maps_in_benchmark,
            num_reduces=b.reduces_in_benchmark,
            input_file=input_file,
            map_cpu_per_block=params.map_cpu_per_block,
            reduce_cpu=params.reduce_cpu,
            map_output_ratio=params.map_output_ratio,
            reduce_output_ratio=params.reduce_output_ratio,
        )
        jobs.append(ScheduledJob(float(submit_times[k]), spec, b.bin_id))
    return SubmissionSchedule(jobs, inputs)
