"""Reproducible random-number management.

Every stochastic component of the simulation (preemption, task durations,
inter-arrival times, ...) draws from its own named stream, derived
deterministically from a single root seed.  This makes experiments
reproducible while keeping streams independent: changing how often one
component draws does not perturb any other component.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed.  Two registries with the same root seed hand out
        identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            child = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence((self._seed, child)))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a sub-registry (e.g. one per run in a sweep)."""
        return RngRegistry(seed=(self._seed * 1_000_003 + zlib.crc32(name.encode("utf-8"))) % 2**63)

    def __repr__(self) -> str:
        return f"<RngRegistry seed={self._seed} streams={sorted(self._streams)}>"
