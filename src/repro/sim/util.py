"""Small coordination helpers on top of the core engine."""

from __future__ import annotations

from typing import Any, List, Optional

from .engine import Simulator
from .events import Event

__all__ = ["gather_safe", "Outcome"]


class Outcome:
    """Result of one event inside :func:`gather_safe`."""

    __slots__ = ("ok", "value", "error")

    def __init__(self, ok: bool, value: Any = None, error: BaseException = None) -> None:
        self.ok = ok
        self.value = value
        self.error = error

    def __repr__(self) -> str:
        return f"Outcome(ok={self.ok}, {'value=%r' % (self.value,) if self.ok else 'error=%r' % (self.error,)})"


def gather_safe(sim: Simulator, events: List[Event]) -> Event:
    """Wait for *all* events, collecting failures instead of propagating.

    Unlike :class:`AllOf` — which fails fast on the first child failure —
    this waits for every event and fires with a list of :class:`Outcome`
    in input order.  Used for fan-out operations where partial success is
    meaningful (e.g. an HDFS write pipeline where one target dies).

    Implemented with plain callbacks (no helper processes): shuffle fan-out
    runs this on every fetch batch, so each saved process is two fewer heap
    events.
    """
    events = list(events)
    result = sim.event()
    outcomes: List[Optional[Outcome]] = [None] * len(events)
    pending = [len(events)]

    if not events:
        result.succeed([])
        return result

    def settle(i: int, ev: Event) -> None:
        if ev._ok:
            outcomes[i] = Outcome(True, value=ev._value)
        else:
            ev._defused = True  # the Outcome takes responsibility for it
            outcomes[i] = Outcome(False, error=ev._value)
        pending[0] -= 1
        if pending[0] == 0:
            result.succeed(outcomes)

    for i, ev in enumerate(events):
        if ev.callbacks is None:  # already processed
            settle(i, ev)
        else:
            ev.callbacks.append(
                lambda fired, i=i: settle(i, fired))
    return result
