"""Small coordination helpers on top of the core engine."""

from __future__ import annotations

from typing import Any, List, Tuple

from .engine import Simulator
from .events import Event, Process

__all__ = ["gather_safe", "Outcome"]


class Outcome:
    """Result of one event inside :func:`gather_safe`."""

    __slots__ = ("ok", "value", "error")

    def __init__(self, ok: bool, value: Any = None, error: BaseException = None) -> None:
        self.ok = ok
        self.value = value
        self.error = error

    def __repr__(self) -> str:
        return f"Outcome(ok={self.ok}, {'value=%r' % (self.value,) if self.ok else 'error=%r' % (self.error,)})"


def gather_safe(sim: Simulator, events: List[Event]) -> Process:
    """Wait for *all* events, collecting failures instead of propagating.

    Unlike :class:`AllOf` — which fails fast on the first child failure —
    this waits for every event and returns a list of :class:`Outcome` in
    input order.  Used for fan-out operations where partial success is
    meaningful (e.g. an HDFS write pipeline where one target dies).
    """

    def waiter(ev: Event):
        try:
            value = yield ev
        except BaseException as exc:  # noqa: BLE001 - deliberate catch-all
            return Outcome(False, error=exc)
        return Outcome(True, value=value)

    def collector():
        procs = [sim.process(waiter(ev)) for ev in events]
        results = []
        for p in procs:
            results.append((yield p))
        return results

    return sim.process(collector(), name="gather_safe")
