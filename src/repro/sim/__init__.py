"""Discrete-event simulation engine used by every substrate in the repo.

Public surface:

- :class:`Simulator` — the event loop and clock.
- :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`Interrupt`,
  :class:`AnyOf`, :class:`AllOf` — event primitives.
- :class:`FairQueue`, :class:`Constraint`, :class:`Demand` — the unified
  max-min fair shared-resource core (network + disk rate sharing).
- :class:`RngRegistry` — reproducible named random streams.
- :class:`StepSeries`, :class:`CounterSet`, :class:`EventLog` — measurement.
"""

from .channel import Constraint, Demand, FairQueue
from .engine import EmptySchedule, Simulator
from .events import AllOf, AnyOf, CallbackTimer, Event, Interrupt, Process, Timeout
from .monitor import CounterSet, EventLog, StepSeries
from .rng import RngRegistry

__all__ = [
    "Simulator",
    "EmptySchedule",
    "FairQueue",
    "Constraint",
    "Demand",
    "Event",
    "Timeout",
    "CallbackTimer",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "RngRegistry",
    "StepSeries",
    "CounterSet",
    "EventLog",
]
