"""Discrete-event simulation engine used by every substrate in the repo.

Public surface:

- :class:`Simulator` — the event loop and clock.
- :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`Interrupt`,
  :class:`AnyOf`, :class:`AllOf` — event primitives.
- :class:`RngRegistry` — reproducible named random streams.
- :class:`StepSeries`, :class:`CounterSet`, :class:`EventLog` — measurement.
"""

from .engine import EmptySchedule, Simulator
from .events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from .monitor import CounterSet, EventLog, StepSeries
from .rng import RngRegistry

__all__ = [
    "Simulator",
    "EmptySchedule",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "RngRegistry",
    "StepSeries",
    "CounterSet",
    "EventLog",
]
