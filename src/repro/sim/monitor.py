"""Measurement utilities: step time-series and counters.

The paper's Figure 5 plots the number of available HOG nodes over time and
Table IV integrates the *area beneath* those curves.  :class:`StepSeries`
records right-continuous step functions and computes exactly that integral.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["StepSeries", "CounterSet", "EventLog"]


class StepSeries:
    """A right-continuous step function sampled at change points.

    ``record(t, v)`` appends the new value ``v`` holding from time ``t``
    onward.  Querying and integration treat the series as constant between
    change points.
    """

    def __init__(self, name: str = "", initial: Optional[float] = None, t0: float = 0.0) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []
        if initial is not None:
            self.record(t0, initial)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Change-point times as an array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Values holding from the corresponding change point."""
        return np.asarray(self._values, dtype=float)

    def record(self, t: float, value: float) -> None:
        """Append ``value`` holding from time ``t``.

        Times must be non-decreasing; recording at an existing final time
        overwrites the final value (last-write-wins within a timestamp).
        """
        if self._times:
            if t < self._times[-1]:
                raise ValueError(f"non-monotonic record: {t} < {self._times[-1]}")
            if t == self._times[-1]:
                self._values[-1] = value
                return
        self._times.append(float(t))
        self._values.append(float(value))

    def value_at(self, t: float) -> float:
        """Value of the step function at time ``t``."""
        if not self._times:
            raise ValueError(f"series {self.name!r} is empty")
        i = bisect_right(self._times, t) - 1
        if i < 0:
            raise ValueError(f"time {t} precedes first record {self._times[0]}")
        return self._values[i]

    def integrate(self, t0: float, t1: float) -> float:
        """Area under the step function over ``[t0, t1]``.

        This is the paper's Table IV "area beneath curve" metric when the
        series is the available-node count.
        """
        if t1 < t0:
            raise ValueError(f"inverted interval [{t0}, {t1}]")
        if not self._times or t1 == t0:
            return 0.0
        area = 0.0
        # Clip all change points into the window, adding boundary samples.
        times = self._times
        values = self._values
        i = max(bisect_right(times, t0) - 1, 0)
        cur_t = t0
        cur_v = values[i] if times[i] <= t0 else 0.0
        i += 1
        while i < len(times) and times[i] < t1:
            if times[i] > cur_t:
                area += cur_v * (times[i] - cur_t)
                cur_t = times[i]
            cur_v = values[i]
            i += 1
        area += cur_v * (t1 - cur_t)
        return area

    def mean(self, t0: float, t1: float) -> float:
        """Time-weighted mean value over ``[t0, t1]``."""
        if t1 <= t0:
            raise ValueError("mean() needs a non-empty interval")
        return self.integrate(t0, t1) / (t1 - t0)

    def max(self) -> float:
        """Largest recorded value."""
        if not self._values:
            raise ValueError("empty series")
        return max(self._values)

    def min(self) -> float:
        """Smallest recorded value."""
        if not self._values:
            raise ValueError("empty series")
        return min(self._values)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` arrays (copies)."""
        return self.times, self.values

    def downsample(self, max_points: int) -> Tuple[List[float], List[float]]:
        """Return ``(times, values)`` lists with at most ``max_points``
        change points, always keeping the first and last.

        Intermediate points are picked at evenly spaced indices — a
        deterministic thinning that preserves the series' envelope well
        enough for timeline storage/plotting (exact integration should
        use the full series).
        """
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        n = len(self._times)
        if n <= max_points:
            return list(self._times), list(self._values)
        idx = [i * (n - 1) // (max_points - 1) for i in range(max_points)]
        return ([self._times[i] for i in idx],
                [self._values[i] for i in idx])


class CounterSet:
    """A named bag of monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, by: int = 1) -> int:
        """Increment ``name`` by ``by`` and return the new value."""
        new = self._counts.get(name, 0) + by
        self._counts[name] = new
        return new

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"CounterSet({self._counts!r})"


class EventLog:
    """An append-only log of ``(time, kind, payload)`` tuples for debugging
    and for tests that assert on the order of system events.

    Bounded by default (:data:`DEFAULT_CAPACITY` newest entries kept) so
    long scale runs cannot grow a log without limit; pass an explicit
    ``capacity=None`` for the unbounded behaviour tests rely on when they
    must see every entry.
    """

    #: Default ring bound — large enough for any test-sized run, small
    #: enough that a 10k-node sweep cannot hoard entry tuples.
    DEFAULT_CAPACITY = 65536

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        self._entries: List[Tuple[float, str, dict]] = []
        self._capacity = capacity

    def log(self, t: float, kind: str, **payload) -> None:
        """Append an entry; oldest entries are dropped beyond capacity."""
        self._entries.append((t, kind, payload))
        if self._capacity is not None and len(self._entries) > self._capacity:
            del self._entries[0 : len(self._entries) - self._capacity]

    def entries(self, kind: Optional[str] = None) -> Sequence[Tuple[float, str, dict]]:
        """All entries, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._entries)
        return [e for e in self._entries if e[1] == kind]

    def count(self, kind: str) -> int:
        """Number of entries of ``kind``."""
        return sum(1 for e in self._entries if e[1] == kind)

    def __len__(self) -> int:
        return len(self._entries)
