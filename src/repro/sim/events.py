"""Core event primitives for the discrete-event simulation engine.

The engine follows the classic process-interaction style (as popularised by
SimPy): simulation *processes* are Python generators that ``yield`` events;
the engine resumes a process when the event it is waiting on fires.

Events move through three states:

``PENDING``
    Created but not yet scheduled to fire.
``TRIGGERED``
    Placed on the event heap with a firing time; its value is decided.
``PROCESSED``
    Its callbacks have run.

Failures propagate: an event may *fail* with an exception, in which case
the exception is thrown into every waiting process (unless it has been
:meth:`Event.defused`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
    "Event",
    "EngineProfile",
    "Timeout",
    "CallbackTimer",
    "Process",
    "Interrupt",
    "Condition",
    "AnyOf",
    "AllOf",
]

#: Free-list bound for recycled :class:`Timeout`/:class:`CallbackTimer`
#: objects.  Sized for the deepest same-instant burst a 10k-node run
#: produces; beyond it, surplus fired timers fall back to the allocator.
POOL_MAX = 4096

PENDING = 0
TRIGGERED = 1
PROCESSED = 2

#: Scheduling priorities (lower fires first at equal times).
URGENT = 0
NORMAL = 1


class Event:
    """A happening at a point in simulated time that processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, sim: "Simulator") -> None:  # noqa: F821
        self.sim = sim
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = PENDING
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state >= PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._state < TRIGGERED:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    def result(self) -> Any:
        """The event's value; re-raises the exception if the event failed."""
        if self._state < TRIGGERED:
            raise RuntimeError(f"result of {self!r} is not yet available")
        if not self._ok:
            raise self._value
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule the event to fire as a failure carrying ``exception``."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def defused(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- engine hooks --------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks; called by the engine when the event fires."""
        callbacks, self.callbacks = self.callbacks, None
        self._state = PROCESSED
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Fired timeouts whose only waiter was a generator process are recycled
    into the simulator's free list (``sim.timeout`` draws from it), so the
    steady-state sleep/resume cycle allocates nothing.  The recycling
    contract: never retain a reference to a yielded timeout past its fire
    — in-engine code never does, and the pool only reclaims the
    single-process-waiter case, so conditions and plain callback waiters
    keep ordinary object lifetimes.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Timeouts are the hottest allocation in the simulation; the base
        # initialiser is inlined to save a call per event.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self._defused = False
        self.delay = delay
        sim._schedule(self, delay)

    def _process(self) -> None:
        # Timeouts cannot fail, so the base class's failure re-raise is
        # dead weight here; the common single-waiter case additionally
        # feeds the free list.
        callbacks, self.callbacks = self.callbacks, None
        self._state = PROCESSED
        if len(callbacks) == 1:
            cb = callbacks[0]
            cb(self)
            if getattr(cb, "__func__", None) is Process._resume:
                # Sole waiter was a generator sleep: nobody can hold a
                # live reference any more (the process has moved on to a
                # new target), so the object is safe to recycle.
                sim = self.sim
                pool = sim._timeout_pool
                if len(pool) < sim._pool_cap:
                    pool.append(self)
            return
        for cb in callbacks:
            cb(self)


class CallbackTimer(Event):
    """A fire-once timer that invokes ``(fn, arg)`` pairs directly.

    The fast-path twin of :class:`Timeout`: hot fire-once timers (channel
    bottleneck/group wake-ups, heartbeat ticks, probe ticks) do not need
    an event value, failure propagation, or generator resumption — just
    "call this function at that time".  A :class:`CallbackTimer` skips
    the callbacks-list churn and ``Process._resume`` entirely: its
    ``_fns`` flat list holds ``fn0, arg0, fn1, arg1, ...`` and dispatch
    is a plain call loop.

    Timers created through :meth:`~repro.sim.engine.Simulator.call_at`
    are *shared per timestamp* (the ``wakeup_at`` contract): ``when``
    holds the registry key while registered, and the dispatch removes the
    key with an identity check so a successor registered under the same
    key is never evicted.  Fired timers are recycled into the simulator's
    free list — never retain one past its fire.

    Do not ``yield`` a CallbackTimer from a process; use
    ``sim.timeout`` / ``sim.wakeup_at`` for events processes wait on.
    """

    __slots__ = ("when", "_fns")

    def __init__(self, sim: "Simulator") -> None:  # noqa: F821
        self.sim = sim
        self.callbacks = None
        self._value = None
        self._ok = True
        self._state = TRIGGERED
        self._defused = False
        #: The ``sim._wakeups`` key this timer is registered under, or
        #: ``None`` for standalone (``call_after``) timers.
        self.when: Optional[float] = None
        self._fns: list = []

    def _process(self) -> None:
        sim = self.sim
        when = self.when
        if when is not None:
            self.when = None
            # Identity-guarded key cleanup: a callback running this
            # instant may re-register the same timestamp; its successor
            # must not be evicted by *our* cleanup (the dict-aliasing
            # pitfall).  Removing the key *before* the call loop keeps
            # the old shared-wakeup ordering: cleanup first, then
            # attached actions.
            wakeups = sim._wakeups
            if wakeups.get(when) is self:
                del wakeups[when]
        self._state = PROCESSED
        fns = self._fns
        self._fns = None
        i = 0
        n = len(fns)
        while i < n:
            fns[i](fns[i + 1])
            i += 2
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            # wakeup_at-style waiters ride along after the direct calls.
            for cb in callbacks:
                cb(self)
            callbacks.clear()
        fns.clear()
        pool = sim._timer_pool
        if len(pool) < sim._pool_cap:
            # Recycle the object *and* its list allocations.
            self._fns = fns
            self.callbacks = callbacks
            pool.append(self)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        """The value passed to :meth:`Process.interrupt` (``None`` when
        the interrupt was raised without one)."""
        return self.args[0] if self.args else None


class _Initialize(Event):
    """Immediate event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:  # noqa: F821
        super().__init__(sim)
        self._ok = True
        self._value = None
        self._state = TRIGGERED
        assert self.callbacks is not None
        self.callbacks.append(process._resume)
        sim._schedule(self, 0.0, priority=URGENT)


class Process(Event):
    """A running simulation process.

    A process wraps a generator; it is itself an event that fires when the
    generator returns (value = the generator's return value) or raises
    (failure).  Processes may be interrupted, which raises
    :class:`Interrupt` inside the generator at its current yield point.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator, name: str = "") -> None:  # noqa: F821
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if not waiting).
        self._target: Optional[Event] = None
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is self:
            raise RuntimeError("a process cannot interrupt itself synchronously")
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired ``event``."""
        self.sim._active_proc = self
        while True:
            if event._ok:
                try:
                    target = self._generator.send(event._value)
                except StopIteration as exc:
                    self._finish_ok(getattr(exc, "value", None))
                    break
                except BaseException as exc:
                    self._finish_fail(exc)
                    break
            else:
                # Throw the failure into the process; mark it defused since
                # the process is taking responsibility for it.
                event._defused = True
                try:
                    target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._finish_ok(getattr(exc, "value", None))
                    break
                except BaseException as exc:
                    self._finish_fail(exc)
                    break

            if not isinstance(target, Event):
                self._finish_fail(
                    RuntimeError(f"process {self.name!r} yielded non-event {target!r}")
                )
                break
            if target.sim is not self.sim:
                self._finish_fail(
                    RuntimeError(f"process {self.name!r} yielded a foreign event")
                )
                break
            if target.callbacks is not None:
                # Event not yet processed: register and go to sleep.
                target.callbacks.append(self._resume)
                self._target = target
                break
            # Event already processed: loop immediately with its value.
            event = target

        self.sim._active_proc = None

    def _finish_ok(self, value: Any) -> None:
        self._target = None
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.sim._schedule(self, 0.0)

    def _finish_fail(self, exc: BaseException) -> None:
        self._target = None
        self._ok = False
        self._value = exc
        self._state = TRIGGERED
        self.sim._schedule(self, 0.0)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class _Interruption(Event):
    """Internal immediate event that delivers an interrupt to a process."""

    __slots__ = ("process",)

    def __init__(self, process: Process, cause: Any) -> None:
        super().__init__(process.sim)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self._state = TRIGGERED
        assert self.callbacks is not None
        self.callbacks.append(self._deliver)
        self.sim._schedule(self, 0.0, priority=URGENT)

    def _deliver(self, event: Event) -> None:
        proc = self.process
        if proc._state != PENDING:
            return  # Process finished before the interrupt fired: drop it.
        if proc._target is not None:
            # Detach from the event the process was waiting on.
            if proc._target.callbacks is not None:
                try:
                    proc._target.callbacks.remove(proc._resume)
                except ValueError:
                    pass
            proc._target = None
        proc._resume(self)


class Condition(Event):
    """An event that fires when ``evaluate`` is satisfied over its children.

    Used through the :class:`AnyOf` / :class:`AllOf` helpers.  The value of
    a condition is a dict mapping each *triggered* child event to its value.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate
        for ev in self._events:
            if ev.sim is not sim:
                raise ValueError("all events of a condition must share a simulator")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        return {ev: ev._value for ev in self._events if ev._state >= PROCESSED and ev._ok}

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            # The condition has already fired, but a child failing late
            # still had a waiter (through this condition): defuse the
            # stray failure so it cannot crash the run at the child's
            # dispatch.
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AnyOf(Condition):
    """Fires as soon as any child event fires."""

    __slots__ = ()

    def __init__(self, sim, events) -> None:
        super().__init__(sim, lambda events, count: count >= 1, events)


class AllOf(Condition):
    """Fires once every child event has fired."""

    __slots__ = ()

    def __init__(self, sim, events) -> None:
        super().__init__(sim, lambda events, count: count >= len(events), events)


class EngineProfile:
    """Self-profiling counters for the dispatch loop.

    Attach one as ``Simulator.profile`` to see where events go: dispatch
    counts by event class, process resumes vs. plain callbacks, and the
    heap's high-water depth — the data the ROADMAP's raw-throughput work
    needs instead of guesses.  When ``Simulator.profile`` is ``None``
    (the default) the engine pays one attribute load per event and
    nothing else; profiling itself is observational only (it reads the
    fired event's callback list before dispatch, mutating nothing), so
    enabling it cannot change a simulation outcome.
    """

    __slots__ = ("dispatched", "dispatch_by_kind", "callbacks_run",
                 "process_resumes", "heap_high_water",
                 "callback_timer_fires", "timer_callbacks_run",
                 "timeout_pool_reuses", "timer_pool_reuses",
                 "batches", "batch_size_hist")

    def __init__(self) -> None:
        self.dispatched = 0
        #: event class name → times an instance was popped and processed.
        self.dispatch_by_kind: dict = {}
        #: Callbacks invoked across all dispatched events.
        self.callbacks_run = 0
        #: Callbacks that were generator-process resumptions.
        self.process_resumes = 0
        #: Deepest the event heap got (sampled at each pop).
        self.heap_high_water = 0
        #: :class:`CallbackTimer` dispatches (the resume-free fast path).
        self.callback_timer_fires = 0
        #: Direct ``(fn, arg)`` calls made by fired callback timers.
        self.timer_callbacks_run = 0
        #: ``sim.timeout`` acquisitions served from the free list.
        self.timeout_pool_reuses = 0
        #: Callback-timer acquisitions served from the free list.
        self.timer_pool_reuses = 0
        #: Same-``(time, priority)`` dispatch batches drained by run loops.
        self.batches = 0
        #: Power-of-two batch-size buckets → batch count.
        self.batch_size_hist: dict = {}

    def note(self, event: Event, heap_depth: int) -> None:
        """Account one event about to be dispatched.

        Must run *before* ``event._process()`` — processing clears the
        callback list this inspects.
        """
        self.dispatched += 1
        if heap_depth > self.heap_high_water:
            self.heap_high_water = heap_depth
        kind = type(event).__name__
        by_kind = self.dispatch_by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if type(event) is CallbackTimer:
            self.callback_timer_fires += 1
            fns = event._fns
            if fns:
                self.timer_callbacks_run += len(fns) >> 1
            callbacks = event.callbacks
            if callbacks:
                self.callbacks_run += len(callbacks)
            return
        callbacks = event.callbacks
        if callbacks:
            self.callbacks_run += len(callbacks)
            resume = Process._resume
            for cb in callbacks:
                if getattr(cb, "__func__", None) is resume:
                    self.process_resumes += 1

    def note_batch(self, size: int) -> None:
        """Account one same-instant dispatch batch of ``size`` events."""
        self.batches += 1
        bucket = 1 if size <= 1 else 1 << (size - 1).bit_length()
        hist = self.batch_size_hist
        hist[bucket] = hist.get(bucket, 0) + 1

    def as_dict(self) -> dict:
        """JSON-ready snapshot of the profile."""
        return {
            "dispatched": self.dispatched,
            "dispatch_by_kind": dict(self.dispatch_by_kind),
            "callbacks_run": self.callbacks_run,
            "process_resumes": self.process_resumes,
            "heap_high_water": self.heap_high_water,
            "callback_timer_fires": self.callback_timer_fires,
            "timer_callbacks_run": self.timer_callbacks_run,
            "timeout_pool_reuses": self.timeout_pool_reuses,
            "timer_pool_reuses": self.timer_pool_reuses,
            "batches": self.batches,
            "batch_size_hist": {str(k): v for k, v in
                                sorted(self.batch_size_hist.items())},
        }
