"""The discrete-event simulation core.

:class:`Simulator` owns simulated time and the event heap.  All daemons in
the reproduction (datanodes, tasktrackers, the glidein factory, preemption
processes, ...) are generator processes driven by one simulator instance.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(3.0)
...     return "done at %g" % sim.now
>>> p = sim.process(hello(sim))
>>> sim.run()
>>> p.value
'done at 3'
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple

from .events import (
    NORMAL,
    PROCESSED,
    AllOf,
    AnyOf,
    EngineProfile,
    Event,
    Process,
    Timeout,
)

__all__ = ["Simulator", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised internally when the event heap runs dry."""


class Simulator:
    """A discrete-event simulator with generator-based processes.

    Parameters
    ----------
    start:
        Initial simulated time (seconds).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now: float = float(start)
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = count()
        self._active_proc: Optional[Process] = None
        #: Pending shared wake-ups by absolute timestamp (see `wakeup_at`).
        self._wakeups: dict = {}
        #: Total events processed over the simulator's lifetime (perf metric
        #: for benchmark harnesses: events/sec of wall time).
        self.events_processed: int = 0
        #: Optional :class:`~repro.sim.events.EngineProfile` sampled at
        #: each dispatch.  ``None`` (default) costs one attribute load per
        #: event; profiling is read-only either way.
        self.profile: Optional[EngineProfile] = None

    # -- time -----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name: str = "") -> Process:
        """Start ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def wakeup_at(self, when: float) -> Timeout:
        """A *shared* timer event firing at absolute time ``when``.

        All callers asking for the same timestamp before it fires get the
        same event — and therefore share a single event-heap entry.  This
        is what keeps same-instant completion cascades (many channel
        groups finishing together, a batch of rebalances at one heartbeat
        tick) at O(1) heap traffic instead of one entry per waiter.

        ``when`` at or before the current time fires "now" (still
        asynchronously, like ``timeout(0)``).  Append callbacks to the
        returned event; do not yield it from long-lived processes that
        might be interrupted (interrupt detach would scan the shared
        callback list).
        """
        ev = self._wakeups.get(when)
        if ev is None:
            delay = when - self._now
            ev = Timeout(self, delay if delay > 0.0 else 0.0)
            self._wakeups[when] = ev
            ev.callbacks.append(lambda _e: self._wakeups.pop(when, None))
        return ev

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        heapq.heappush(self._heap, (self._now + delay, priority, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            when, _, _, event = heapq.heappop(self._heap)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        self.events_processed += 1
        if self.profile is not None:
            self.profile.note(event, len(self._heap))
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap is empty or simulated time reaches ``until``.

        ``until`` may also be an :class:`Event`; the run then stops as soon
        as that event has been processed.
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon!r} is in the past (now={self._now!r})")

        while self._heap:
            if stop_event is not None and stop_event.processed:
                return
            if self._heap[0][0] > horizon:
                self._now = horizon
                return
            self.step()

        if stop_event is not None and not stop_event.processed:
            raise RuntimeError("simulation ran out of events before `until` fired")
        if horizon != float("inf"):
            self._now = horizon

    def run_until(self, event: Event, deadline: float = float("inf")) -> bool:
        """Advance straight through real events until ``event`` has fired.

        Unlike ``run(until=event)`` this never raises when the schedule
        runs dry, and unlike fixed-step polling it stops at the *exact*
        simulated instant the event is processed.  Events scheduled at or
        before ``deadline`` are processed; if ``event`` has not fired by
        then, time is advanced to ``deadline`` (when finite) and ``False``
        is returned.  Returns ``True`` as soon as ``event`` has fired.
        """
        heap = self._heap
        pop = heapq.heappop
        prof = self.profile
        while event._state < PROCESSED:
            if not heap or heap[0][0] > deadline:
                if deadline != float("inf"):
                    self._now = max(self._now, deadline)
                return False
            when, _, _, ev = pop(heap)
            self._now = when
            self.events_processed += 1
            if prof is not None:
                prof.note(ev, len(heap))
            ev._process()
        return True

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:g} pending={len(self._heap)}>"
