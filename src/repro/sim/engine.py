"""The discrete-event simulation core.

:class:`Simulator` owns simulated time and the event heap.  All daemons in
the reproduction (datanodes, tasktrackers, the glidein factory, preemption
processes, ...) are generator processes driven by one simulator instance.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(3.0)
...     return "done at %g" % sim.now
>>> p = sim.process(hello(sim))
>>> sim.run()
>>> p.value
'done at 3'
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple

from .events import (
    NORMAL,
    POOL_MAX,
    PROCESSED,
    TRIGGERED,
    URGENT,
    AllOf,
    AnyOf,
    CallbackTimer,
    EngineProfile,
    Event,
    Process,
    Timeout,
)

__all__ = ["Simulator", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised internally when the event heap runs dry."""


class Simulator:
    """A discrete-event simulator with generator-based processes.

    Parameters
    ----------
    start:
        Initial simulated time (seconds).
    """

    def __init__(self, start: float = 0.0, pooling: bool = True) -> None:
        self._now: float = float(start)
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = count()
        self._active_proc: Optional[Process] = None
        #: Pending shared wake-ups by absolute timestamp (see `wakeup_at`
        #: and `call_at`).
        self._wakeups: dict = {}
        #: Free lists of fired, recyclable event objects (see
        #: :class:`~repro.sim.events.Timeout` /
        #: :class:`~repro.sim.events.CallbackTimer`).  ``pooling=False``
        #: disables recycling (benchmark A/B baseline).
        self._timeout_pool: List[Timeout] = []
        self._timer_pool: List[CallbackTimer] = []
        self._pool_cap: int = POOL_MAX if pooling else 0
        #: Total events processed over the simulator's lifetime (perf metric
        #: for benchmark harnesses: events/sec of wall time).
        self.events_processed: int = 0
        #: Optional :class:`~repro.sim.events.EngineProfile` sampled at
        #: each dispatch.  ``None`` (default) costs one attribute load per
        #: event; profiling is read-only either way.
        self.profile: Optional[EngineProfile] = None

    # -- time -----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now.

        Served from the free list of fired timeouts when one is
        available; see :class:`~repro.sim.events.Timeout` for the
        recycling contract.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay {delay!r}")
            t = pool.pop()
            t.callbacks = []
            t._value = value
            t._state = TRIGGERED
            t.delay = delay
            prof = self.profile
            if prof is not None:
                prof.timeout_pool_reuses += 1
            heappush(self._heap,
                     (self._now + delay, NORMAL, next(self._counter), t))
            return t
        return Timeout(self, delay, value)

    def process(self, generator, name: str = "") -> Process:
        """Start ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    # -- callback timers (the resume-free fast path) ---------------------------
    def _acquire_timer(self, at_time: float, priority: int) -> CallbackTimer:
        """Pooled CallbackTimer scheduled at absolute ``at_time``."""
        pool = self._timer_pool
        if pool:
            t = pool.pop()
            t._state = TRIGGERED
            prof = self.profile
            if prof is not None:
                prof.timer_pool_reuses += 1
        else:
            t = CallbackTimer(self)
        heappush(self._heap, (at_time, priority, next(self._counter), t))
        return t

    def call_at(self, when: float, fn, arg: Any = None) -> CallbackTimer:
        """Call ``fn(arg)`` at absolute sim time ``when`` (coalesced).

        The callback-timer twin of :meth:`wakeup_at`: all callers asking
        for the same timestamp before it fires share a single heap entry,
        and their ``(fn, arg)`` pairs run in registration order at
        dispatch — no event value, no callbacks-list churn, no generator
        resume.  ``when`` at or before the current time fires "now"
        (still asynchronously).  The returned timer is pooled; never
        retain it past its fire, and never ``yield`` it.
        """
        t = self._wakeups.get(when)
        if t is None:
            t = self._acquire_timer(when if when > self._now else self._now,
                                    NORMAL)
            t.when = when
            self._wakeups[when] = t
        fns = t._fns
        fns.append(fn)
        fns.append(arg)
        return t

    def call_after(self, delay: float, fn, arg: Any = None) -> CallbackTimer:
        """Call ``fn(arg)`` ``delay`` sim-seconds from now (dedicated).

        Unlike :meth:`call_at` the timer is *not* shared: it owns its
        heap entry, exactly like ``timeout(delay)`` with one callback
        appended, minus the event-object overhead.  Use for cadence ticks
        (heartbeats, probes) and one-shot deferred actions.
        """
        if delay < 0:
            raise ValueError(f"negative timer delay {delay!r}")
        # _acquire_timer inlined: this is the hottest timer entry point
        # (every heartbeat/probe/restore tick passes through here).
        pool = self._timer_pool
        if pool:
            t = pool.pop()
            t._state = TRIGGERED
            prof = self.profile
            if prof is not None:
                prof.timer_pool_reuses += 1
        else:
            t = CallbackTimer(self)
        heappush(self._heap,
                 (self._now + delay, NORMAL, next(self._counter), t))
        fns = t._fns
        fns.append(fn)
        fns.append(arg)
        return t

    def call_soon(self, fn, arg: Any = None) -> CallbackTimer:
        """Call ``fn(arg)`` at the current instant, URGENT priority.

        Mirrors the scheduling of a new process's initializer (URGENT at
        ``now``): converted daemon loops use it so their first action
        keeps the exact dispatch slot the generator version had.
        """
        t = self._acquire_timer(self._now, URGENT)
        fns = t._fns
        fns.append(fn)
        fns.append(arg)
        return t

    def wakeup_at(self, when: float) -> CallbackTimer:
        """A *shared* timer event firing at absolute time ``when``.

        All callers asking for the same timestamp before it fires get the
        same event — and therefore share a single event-heap entry.  This
        is what keeps same-instant completion cascades (many channel
        groups finishing together, a batch of rebalances at one heartbeat
        tick) at O(1) heap traffic instead of one entry per waiter.

        ``when`` at or before the current time fires "now" (still
        asynchronously, like ``timeout(0)``).  Append callbacks to the
        returned event; they run after any :meth:`call_at` pairs sharing
        the instant.  Do not yield it from long-lived processes that
        might be interrupted (interrupt detach would scan the shared
        callback list), and never retain it past its fire (the timer is
        pooled).
        """
        t = self._wakeups.get(when)
        if t is None:
            t = self._acquire_timer(when if when > self._now else self._now,
                                    NORMAL)
            t.when = when
            self._wakeups[when] = t
        if t.callbacks is None:
            t.callbacks = []
        return t

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        heappush(self._heap, (self._now + delay, priority, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            when, _, _, event = heappop(self._heap)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        self.events_processed += 1
        if self.profile is not None:
            self.profile.note(event, len(self._heap))
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap is empty or simulated time reaches ``until``.

        ``until`` may also be an :class:`Event`; the run then stops as soon
        as that event has been processed.
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon!r} is in the past (now={self._now!r})")

        # Batched same-instant dispatch: all heap entries sharing
        # (time, priority) drain in one inner loop with a single `_now`
        # write and one `events_processed` flush per batch.  Stop-event
        # checks stay per-event so `run(until=event)` halts at the exact
        # dispatch the event is processed, mid-batch included.
        heap = self._heap
        pop = heappop
        while heap:
            if stop_event is not None and stop_event._state >= PROCESSED:
                return
            when, priority = heap[0][0], heap[0][1]
            if when > horizon:
                self._now = horizon
                return
            self._now = when
            prof = self.profile
            n = 0
            while True:
                _, _, _, event = pop(heap)
                n += 1
                if prof is not None:
                    prof.note(event, len(heap))
                event._process()
                if stop_event is not None and stop_event._state >= PROCESSED:
                    break
                if not heap:
                    break
                head = heap[0]
                if head[0] != when or head[1] != priority:
                    break
            self.events_processed += n
            if prof is not None:
                prof.note_batch(n)

        if stop_event is not None and stop_event._state < PROCESSED:
            raise RuntimeError("simulation ran out of events before `until` fired")
        if horizon != float("inf"):
            self._now = horizon

    def run_until(self, event: Event, deadline: float = float("inf")) -> bool:
        """Advance straight through real events until ``event`` has fired.

        Unlike ``run(until=event)`` this never raises when the schedule
        runs dry, and unlike fixed-step polling it stops at the *exact*
        simulated instant the event is processed.  Events scheduled at or
        before ``deadline`` are processed; if ``event`` has not fired by
        then, time is advanced to ``deadline`` (when finite) and ``False``
        is returned.  Returns ``True`` as soon as ``event`` has fired.
        """
        heap = self._heap
        pop = heappop
        while event._state < PROCESSED:
            if not heap or heap[0][0] > deadline:
                if deadline != float("inf"):
                    self._now = max(self._now, deadline)
                return False
            # Drain the same-(time, priority) batch; the target-event
            # check stays per-dispatch so we stop at the exact instant.
            when, priority = heap[0][0], heap[0][1]
            self._now = when
            prof = self.profile
            n = 0
            while True:
                _, _, _, ev = pop(heap)
                n += 1
                if prof is not None:
                    prof.note(ev, len(heap))
                ev._process()
                if event._state >= PROCESSED:
                    break
                if not heap:
                    break
                head = heap[0]
                if head[0] != when or head[1] != priority:
                    break
            self.events_processed += n
            if prof is not None:
                prof.note_batch(n)
        return True

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:g} pending={len(self._heap)}>"
