"""Unified max-min fair shared-resource core.

Every rate-limited byte stream in the simulation — network flows through
NICs and WAN uplinks, disk reads and writes, and transfers jointly
constrained by several of those at once — is a :class:`Demand` drained by
one :class:`FairQueue`.  The queue computes the max-min fair allocation
over arbitrary capacity :class:`Constraint` sets by progressive filling
and advances time with as few timers as the allocation's structure allows.
``net/fabric.py`` and ``storage/disk.py`` are thin adapters over this
module; they contain no rate arithmetic of their own.

Design
------

**Incremental component passes.**  A demand arrival or departure only
re-rates the connected component of demands reachable from the
constraints it touched (demands are vertices; sharing a constraint is an
edge).  Components are discovered by a walk seeded from the dirty
constraints, fused with lazy progress advancement: each demand's
``remaining`` is drained up to *now* the moment the walk first sees it.
Each component gets its **own** filling pass, so a batch of changes in
two unrelated sites never merges their rate computations — and never
defeats the fast paths below.

**Per-constraint virtual clocks (uniform groups).**  When one constraint
bottlenecks *every* demand of its component and each member's other
constraints are private and no tighter than the bottleneck, the rates
stay uniform for the component's whole remaining lifetime: capacity/n,
for the live member count n.  Completion order is then fixed at group
formation, so the constraint runs a *virtual clock* — cumulative bytes
drained per member — and keeps members in a heap keyed by the clock
reading at which each finishes.  One armed timer per group replaces a
timer per demand, and — unlike a plain group timer — each completion is
O(log n) with **no** re-filling pass: survivors speed up implicitly
because the clock advances at capacity/n for the current n.  This is the
multi-bottleneck generalisation of the single-timer trick the disk
channel and the fabric's single-bottleneck path used to implement twice,
divergently.

**Group timers per bottleneck.**  Components the uniform test rejects
(several bottlenecks, or shared side constraints) still never arm
per-demand timers.  Progressive filling freezes each demand at exactly
one bottleneck constraint; all demands frozen at a constraint share its
fair share, so one timer per bottleneck — aimed at that group's earliest
finish — wakes the component at the exact next completion instant.  The
resulting pass drains whatever finished, re-rates survivors, and re-arms.
A live timer that fires at or before the new target is *kept* (it
re-checks and re-aims), so slowdowns never allocate timers.

**Per-partition decoupling.**  Constraints carry an optional partition
key (the fabric tags NICs, WAN legs, and disks with their site).  The
queue counts, per partition, the live demands whose constraint sets span
partition boundaries ("bridges": cross-site transfers).  While a
partition has no bridges — its WAN links are idle — its components are
structurally confined to the partition: :meth:`FairQueue.partition_decoupled`
is then a guarantee, checkable in O(1), that no churn inside the site can
re-rate (or even visit) any other site's demands.

**Heap batching.**  All wake-ups go through
:meth:`~repro.sim.engine.Simulator.call_at` (the callback-timer twin of
``wakeup_at``), so the many groups that finish at the same simulated
instant share a single event-heap entry and dispatch without event-object
or generator-resume overhead.

Same-instant changes batch into one scheduled pass (`_mark_dirty`), and
completions that land exactly on a pass's timestamp are drained by that
pass directly — their freed capacity is redistributed without another
event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from .engine import Simulator
from .events import Event

__all__ = ["Constraint", "Demand", "FairQueue"]


class Constraint:
    """A capacity-constrained shared resource (NIC direction, WAN leg,
    disk channel, ...)."""

    __slots__ = ("name", "capacity", "partition", "demands", "group",
                 "_timer_at", "_timer_version", "_visit", "_residual",
                 "_ucount", "_bound_sum", "_unbounded", "_slack_below",
                 "_wit_counts", "_tighter")

    def __init__(self, name: str, capacity: float,
                 partition: Optional[str] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"constraint {name!r} needs positive capacity")
        self.name = name
        self.capacity = float(capacity)
        #: Optional decoupling key (the fabric uses the site name).
        self.partition = partition
        #: Demands currently draining through this constraint (an
        #: insertion-ordered dict used as a set: iteration order must not
        #: depend on the interpreter's hash seed, or runs stop being
        #: reproducible).
        self.demands: Dict["Demand", None] = {}
        #: Live uniform group whose span includes this constraint, if any.
        self.group: Optional["_UniformGroup"] = None
        #: Absolute sim time of the live bottleneck group timer (None if none).
        self._timer_at: Optional[float] = None
        self._timer_version = 0
        #: Walk stamp (see FairQueue._rebalance) — avoids per-pass sets.
        self._visit = 0
        #: Per-pass progressive-filling scratch (valid only mid-pass).
        self._residual = 0.0
        self._ucount = 0
        #: Witness-grouped upper bound on the traffic this constraint can
        #: ever see.  Each demand's *witness* here is its tightest other
        #: constraint; all demands sharing a witness w also share w's
        #: capacity, so they jointly contribute min(cap_w, Σ bounds) =
        #: cap_w — the bound sums *distinct witness capacities*, not
        #: per-demand bounds.  While it stays (strictly, with margin)
        #: below `capacity` the constraint is provably slack: it cannot
        #: bind in any max-min allocation, so component walks skip it
        #: entirely.  This is what keeps an under-subscribed WAN leg from
        #: chaining two sites' components together — and, grouped by
        #: witness, it stays slack even when many flows fan out of a few
        #: tight source disks.  Maintained O(constraints-of-demand) per
        #: add/remove (`_wit_counts` holds the live count per witness).
        self._bound_sum = 0.0
        self._wit_counts: Dict["Constraint", int] = {}
        #: Live demands with a side constraint *strictly* tighter than
        #: this one (witness capacity < our capacity).  While zero, a
        #: single-bottleneck pass here is uniform by construction: every
        #: side constraint c has cap_c >= capacity >= k_c * share, so the
        #: uniform-group eligibility holds without the per-member scan.
        self._tighter = 0
        #: Live demands whose bound through here is unbounded (their only
        #: constraint) — any such demand disables the slack shortcut.
        self._unbounded = 0
        #: Slack test threshold: capacity minus a relative safety margin
        #: (guards float drift in the running sum; the margin errs toward
        #: treating a constraint as binding, which is always correct).
        self._slack_below = self.capacity * (1.0 - 1e-9)

    @property
    def slack(self) -> bool:
        """True while this constraint provably cannot bind (see above)."""
        return self._unbounded == 0 and self._bound_sum < self._slack_below

    def __repr__(self) -> str:
        return (f"<Constraint {self.name} cap={self.capacity:g} "
                f"demands={len(self.demands)}>")


class Demand:
    """One in-flight piece of work draining through a set of constraints."""

    __slots__ = ("size", "remaining", "rate", "constraints", "done",
                 "_last_update", "_fill_mark", "_group", "_group_key",
                 "_retry_version", "_visit", "_witness", "on_exit")

    def __init__(self, size: float, constraints: Sequence[Constraint],
                 done: Event, now: float) -> None:
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        # Per-constraint witness: the tightest *other* constraint (None
        # for a sole constraint) — its capacity bounds the rate this
        # demand can ever push through constraint i, and demands sharing
        # a witness share that cap (feeds the grouped slack shortcut).
        cs = self.constraints
        if len(cs) == 1:
            self._witness: Tuple[Optional[Constraint], ...] = (None,)
        else:
            caps = [c.capacity for c in cs]
            idx = caps.index(min(caps))
            second_idx = min((i for i in range(len(cs)) if i != idx),
                             key=lambda i: caps[i])
            self._witness = tuple(
                cs[second_idx] if i == idx else cs[idx]
                for i in range(len(cs)))
        self.done = done
        self._last_update = now
        #: Progressive-filling pass id this demand was last frozen in.
        self._fill_mark = 0
        #: Uniform group membership (virtual-clock mode), if any.
        self._group: Optional["_UniformGroup"] = None
        #: Virtual-clock reading at which this demand drains (group mode).
        self._group_key = 0.0
        self._retry_version = 0
        #: Walk stamp (see FairQueue._rebalance).
        self._visit = 0
        #: Adapter hook called once when the demand leaves the queue for
        #: any reason (completion or abort) — index teardown lives here.
        self.on_exit: Optional[Callable[["Demand"], None]] = None

    def remaining_now(self, now: float) -> float:
        """Bytes left at time ``now``, accounting for lazy advancement and
        virtual-clock (group) mode — `remaining` itself is only exact at
        the instant of the last pass that visited this demand."""
        group = self._group
        if group is not None:
            drained = group.drained
            if group.members and now > group.clock_at:
                drained += (group.constraint.capacity / len(group.members)
                            * (now - group.clock_at))
            return max(0.0, self._group_key - drained)
        left = self.remaining
        dt = now - self._last_update
        if dt > 0.0 and self.rate > 0.0:
            left -= self.rate * dt
        return max(0.0, left)

    def __repr__(self) -> str:
        return (f"<Demand {self.remaining:.0f}/{self.size:.0f}B "
                f"@{self.rate:g}B/s x{len(self.constraints)}>")


class _UniformGroup:
    """Virtual-clock mode for a single-bottleneck component.

    All members drain at ``capacity / len(members)``; the clock counts
    cumulative bytes drained per member, and a member finishes when the
    clock passes its formation-time key.  Valid only while the invariant
    holds that no member can be re-rated by anything except membership
    changes of this very group.  Foreign traffic sharing a span
    constraint does *not* dissolve the group: filling passes pin the
    members at the clock share, rate the foreign demands into the span
    constraint's residual capacity, and record that load (``_foreign``)
    so the group's own threshold accounting stays exact.  The pin is
    provably max-min exact while ``capacity - k*share >= n_foreign *
    share`` on every shared constraint — past that point the joint
    allocation would squeeze the members below the clock share, and the
    pass dissolves the group instead.

    Membership is *delta-driven*: a new demand whose constraints all lie
    inside the span (or are fresh and private) joins in O(log n) via
    :meth:`try_join` — no component walk, no dissolve — and completions
    leave through the clock heap.  Non-bottleneck span constraints may be
    *shared* by several members as long as they stay slack at the current
    share; the tightest such limit is tracked in a lazy threshold heap,
    and the group dissolves itself the moment completions push the share
    past it.  This is what keeps a mass ramp (10k nodes pulling the
    worker package through one central NIC) from costing one O(n)
    refill per arrival.
    """

    __slots__ = ("queue", "constraint", "members", "heap", "drained",
                 "clock_at", "armed_at", "version", "span", "counts",
                 "_thr_heap", "_seq", "_tseq", "_foreign")

    def __init__(self, queue: "FairQueue", constraint: Constraint,
                 members: Dict[Demand, None], span: List[Constraint],
                 counts: Dict[Constraint, int]) -> None:
        self.queue = queue
        self.constraint = constraint
        self.members = members
        self.drained = 0.0
        self.clock_at = queue.sim.now
        self.armed_at: Optional[float] = None
        self.version = 0
        #: Every constraint touched by any member; all point back here so
        #: dirt anywhere in the span dissolves the group first.
        self.span = span
        #: Live members through each non-bottleneck span constraint.
        self.counts = counts
        #: Lazy min-heap of (capacity / k, seq, constraint, k): the group
        #: stays valid while the common share is at or below the top
        #: *current* entry (entries self-validate against ``counts``).
        self._thr_heap: List[tuple] = []
        self._tseq = 0
        for c, k in counts.items():
            self._thr_heap.append((c.capacity / k, self._tseq, c, k))
            self._tseq += 1
        heapq.heapify(self._thr_heap)
        #: Foreign (non-member) load currently allocated on each shared
        #: span constraint, as recorded by the last filling pass that
        #: pinned this group.  Insertion-ordered for reproducible dirty
        #: marks on refresh.
        self._foreign: Dict[Constraint, float] = {}
        heap = []
        seq = 0
        for d in members:
            d._group = self
            d._group_key = d.remaining
            heap.append((d.remaining, seq, d))
            seq += 1
        heapq.heapify(heap)
        self.heap = heap
        self._seq = seq
        for c in span:
            c.group = self

    def _advance(self) -> None:
        now = self.queue.sim.now
        if self.members and now > self.clock_at:
            self.drained += (self.constraint.capacity / len(self.members)
                             * (now - self.clock_at))
        self.clock_at = now

    def share(self) -> float:
        """Current per-member fair share."""
        return self.constraint.capacity / len(self.members)

    def _threshold(self) -> float:
        """Max sustainable share before some shared span constraint binds
        (lazily discarding entries whose member count — or recorded
        foreign load — moved on since the push)."""
        heap = self._thr_heap
        counts = self.counts
        foreign = self._foreign
        while heap:
            value, _, c, k = heap[0]
            if counts.get(c, 0) == k and \
                    value == (c.capacity - foreign.get(c, 0.0)) / k:
                return value
            heapq.heappop(heap)
        return float("inf")

    def _push_threshold(self, c: Constraint, k: int) -> None:
        """Record a fresh limit entry for span constraint ``c`` at member
        count ``k`` (entries self-validate in :meth:`_threshold`)."""
        self._tseq += 1
        heapq.heappush(self._thr_heap,
                       ((c.capacity - self._foreign.get(c, 0.0)) / k,
                        self._tseq, c, k))

    def set_foreign(self, c: Constraint, load: float) -> None:
        """A filling pass re-rated the foreign demands sharing span
        constraint ``c``: remember their total allocation so threshold
        checks account for it."""
        if load > 0.0:
            self._foreign[c] = load
        else:
            self._foreign.pop(c, None)
        k = self.counts.get(c, 0)
        if k:
            self._push_threshold(c, k)

    def _foreign_refresh(self) -> None:
        """The common share changed (membership moved): foreign demands
        sharing span constraints see a different residual, so schedule a
        same-instant pass to re-rate them.  Members are pinned by those
        passes, so this stays O(foreign), never O(members)."""
        if not self._foreign:
            return
        queue = self.queue
        for c in self._foreign:
            queue._dirty[c] = None
        queue._mark_dirty()

    def try_join(self, demand: Demand) -> bool:
        """Admit an arriving demand without a filling pass, if exact.

        The demand must drain through the bottleneck (which stays
        members-only), and the reduced share must stay within every
        shared constraint's limit.  Span constraints carrying foreign
        traffic are fine while the pin stays exact: the members' total
        plus the foreigners' current allocation must fit, and the
        foreigners must keep at least the common share each (otherwise
        joint max-min would squeeze the members and the group must go
        generic).  The caller has already registered the demand on its
        constraints."""
        bottleneck = self.constraint
        if bottleneck not in demand.constraints:
            return False
        if len(bottleneck.demands) != len(self.members) + 1:
            return False  # a foreign demand is pending on the bottleneck
        share = bottleneck.capacity / (len(self.members) + 1)
        counts = self.counts
        foreign = self._foreign
        contested: Optional[List[Constraint]] = None
        for c in demand.constraints:
            if c is bottleneck:
                continue
            if c.group is not None and c.group is not self:
                return False  # another group owns it: stay generic
            k = counts.get(c, 0) + 1
            n_foreign = len(c.demands) - k
            if n_foreign:
                f = foreign.get(c)
                if f is None:
                    # Untracked sharers (no pass pinned us here yet):
                    # account their live rates directly.
                    f = 0.0
                    for d2 in c.demands:
                        if d2._group is not self and d2 is not demand:
                            f += d2.rate
                if k * share > c.capacity - f or \
                        c.capacity - k * share < n_foreign * share:
                    return False
                if contested is None:
                    contested = [c]
                else:
                    contested.append(c)
            elif k * share > c.capacity:
                return False
        if share > self._threshold():
            return False
        self._advance()
        self.members[demand] = None
        demand._group = self
        demand._group_key = self.drained + demand.remaining
        demand.rate = share
        demand._last_update = self.queue.sim.now
        self._seq += 1
        heapq.heappush(self.heap, (demand._group_key, self._seq, demand))
        for c in demand.constraints:
            if c is bottleneck:
                continue
            k = counts.get(c, 0) + 1
            counts[c] = k
            self._push_threshold(c, k)
            if c.group is None:
                c.group = self
                self.span.append(c)
        self.queue.uniform_joins += 1
        # The share dropped: foreign sharers gained residual.  Re-rate
        # them in a same-instant pass (this pins the group, so the pass
        # costs O(foreign)) and record newly contested constraints.
        if contested is not None:
            for c in contested:
                self.queue._dirty[c] = None
            self.queue._mark_dirty()
        self._foreign_refresh()
        self.rearm()
        return True

    def dissolve(self) -> None:
        """Materialise member state and fall back to generic mode.

        Rates and ``remaining`` are snapshot at *now* so the next filling
        pass (whoever marked us dirty schedules one) starts exact."""
        self._advance()
        self.version += 1
        share = (self.constraint.capacity / len(self.members)
                 if self.members else 0.0)
        now = self.queue.sim.now
        for d in self.members:
            d.remaining = max(0.0, d._group_key - self.drained)
            d.rate = share
            d._last_update = now
            d._group = None
        for c in self.span:
            if c.group is self:
                c.group = None
        self.members = {}
        self.heap = []
        self.counts = {}
        self._thr_heap = []
        self._foreign = {}

    def remove(self, demand: Demand) -> None:
        """A member was aborted externally: leave in O(log members).

        The mirror of :meth:`try_join` — preemption waves abort many
        package downloads, and dissolving + re-filling a 10k-demand
        component per departure is exactly the scan-per-event pattern
        this PR removes.  The survivors' share rises; the group only
        dissolves when that pushes it past a shared span constraint's
        tolerance (checked against the lazy threshold heap)."""
        members = self.members
        if demand not in members:
            demand._group = None
            return
        self._advance()
        del members[demand]
        demand.remaining = max(0.0, demand._group_key - self.drained)
        demand._last_update = self.queue.sim.now
        demand._group = None
        counts = self.counts
        for c in demand.constraints:
            if c is self.constraint:
                continue
            k = counts.get(c)
            if k is None:
                continue
            k -= 1
            if k:
                counts[c] = k
                self._push_threshold(c, k)
            else:
                del counts[c]
                # No member crosses this constraint any more: release
                # ownership so arrivals there take the generic path (any
                # foreign sharers get re-rated by the refresh below).
                if c.group is self:
                    c.group = None
                if c in self._foreign:
                    self.queue._dirty[c] = None
                    self.queue._mark_dirty()
                    del self._foreign[c]
        if not members:
            self.version += 1
            self.armed_at = None
            for c in self.span:
                if c.group is self:
                    c.group = None
            self._foreign_refresh()
            self.heap = []
            self.counts = {}
            self._thr_heap = []
            self._foreign = {}
            return
        if self.constraint.capacity / len(members) > self._threshold():
            for c in self.span:
                self.queue._dirty[c] = None
            self.dissolve()
            self.queue._mark_dirty()
            return
        self.queue.uniform_leaves += 1
        self._foreign_refresh()
        self.rearm()

    def rearm(self) -> None:
        """Aim the group's single wake-up at the earliest finish."""
        heap, members = self.heap, self.members
        while heap and heap[0][2] not in members:
            heapq.heappop(heap)
        if not heap:
            self.armed_at = None
            return
        eta = max(0.0, (heap[0][0] - self.drained)
                  * len(members) / self.constraint.capacity)
        fire_at = self.queue.sim.now + eta
        if self.armed_at is not None and self.armed_at <= fire_at:
            return  # the live wake-up fires first and will re-aim
        self.armed_at = fire_at
        version = self.version

        def on_fire(_arg: Any) -> None:
            if self.version != version or self.armed_at != fire_at:
                return
            self.armed_at = None
            self._tick()

        self.queue.sim.call_at(fire_at, on_fire)

    def _tick(self) -> None:
        """Clock wake-up: complete every member the clock has passed."""
        self._advance()
        queue = self.queue
        eps = queue.EPSILON
        heap, members = self.heap, self.members
        counts = self.counts
        bottleneck = self.constraint
        left = False
        while heap and heap[0][0] <= self.drained + eps:
            d = heapq.heappop(heap)[2]
            if d not in members:
                continue
            members.pop(d, None)
            d._group = None
            d.remaining = 0.0
            for c in d.constraints:
                if c is bottleneck:
                    continue
                k = counts[c] - 1
                if k:
                    counts[c] = k
                    self._push_threshold(c, k)
                else:
                    del counts[c]
                    if c.group is self:
                        c.group = None
                    if c in self._foreign:
                        queue._dirty[c] = None
                        queue._mark_dirty()
                        del self._foreign[c]
            left = True
            queue.uniform_completions += 1
            queue._unregister(d)
            if not d.done.triggered:
                d.done.succeed(d)
        if members:
            # Departures raised the common share; if it now exceeds what
            # some shared span constraint can sustain, the allocation is
            # no longer uniform — hand the survivors to a generic pass.
            if left and \
                    bottleneck.capacity / len(members) > self._threshold():
                for c in self.span:
                    queue._dirty[c] = None
                self.dissolve()
                queue._mark_dirty()
                return
            if left:
                self._foreign_refresh()
            self.rearm()
        else:
            self.version += 1
            for c in self.span:
                if c.group is self:
                    c.group = None
            self._foreign_refresh()
            self._foreign = {}


class FairQueue:
    """The shared max-min fair drain engine (see module docstring)."""

    #: Residual bytes below which a demand counts as drained (guards
    #: against floating-point residue stranding nearly-done work).
    EPSILON = 1e-3

    #: How long a starved demand (rate pinned to zero by a degenerate
    #: filling pass) waits before forcing another pass.
    STARVATION_RETRY = 1.0

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._live: Set[Demand] = set()
        #: Constraints whose demand set changed since the last pass
        #: (insertion-ordered for reproducible component ordering).
        self._dirty: Dict[Constraint, None] = {}
        self._pass_scheduled = False
        self._walk_id = 0
        #: live demands per partition key.
        self._partition_demands: Dict[str, int] = {}
        #: live partition-spanning demands per partition key.
        self._bridges: Dict[str, int] = {}
        # -- stats (benchmarks / tests) --
        #: Filling passes executed (one per dirty component).
        self.rebalances = 0
        #: Times the zero-rate starvation guard had to rescue a demand.
        self.starvation_rescues = 0
        #: Uniform (virtual-clock) groups formed.
        self.uniform_groups = 0
        #: Demands completed by a group clock without a filling pass.
        self.uniform_completions = 0
        #: Arrivals admitted into a live group without a filling pass.
        self.uniform_joins = 0
        #: Aborted members that left a live group without a filling pass.
        self.uniform_leaves = 0
        #: Filling passes that pinned a live group (members clock-rated,
        #: only the foreign sharers re-rated) instead of dissolving it.
        self.uniform_pins = 0
        #: Filling passes whose component spanned >1 partition.
        self.cross_partition_passes = 0
        #: Arrivals rated exactly from local residuals (no filling pass).
        self.arrival_fast_paths = 0
        #: Departures proven local (freed capacity bound nobody: no pass).
        self.departure_fast_paths = 0
        #: Uniform groups accepted via the incremental eligibility test
        #: (`_tighter` == 0 and an unskipped walk) without the per-member
        #: validation scan.
        self.uniform_fast_accepts = 0
        #: Bottleneck-timer completions resolved in place: the lone
        #: drained demand was unregistered and completed directly because
        #: its departure provably freed nobody — no filling pass ran.
        self.completion_fast_paths = 0
        #: Filling-pass component sizes (demands walked + drained), in
        #: power-of-two buckets: ``pass_size_hist[k]`` counts components
        #: with size in [2^(k-1), 2^k).  Tells whether sub-component
        #: re-rating is actually shrinking walks.
        self.pass_size_hist = [0] * 24
        #: Highwater mark of concurrent live demands.
        self.peak_demands = 0
        #: Optional :class:`~repro.obs.trace.Tracer` for filling-pass
        #: marks (``channel`` category).  ``None`` keeps the pass body
        #: free of any telemetry cost beyond one attribute load.
        self.tracer = None

    # -- construction ---------------------------------------------------------
    def constraint(self, name: str, capacity: float,
                   partition: Optional[str] = None) -> Constraint:
        """Create a constraint owned by this queue."""
        return Constraint(name, capacity, partition)

    # -- demand lifecycle -----------------------------------------------------
    def submit(self, size: float, constraints: Sequence[Constraint],
               done: Optional[Event] = None) -> Demand:
        """Start draining ``size`` bytes through ``constraints``.

        The returned demand's ``done`` event succeeds (value = the demand)
        when the last byte drains.  Zero-byte demands complete immediately.
        """
        if size < 0:
            raise ValueError(f"cannot drain {size!r} bytes")
        if done is None:
            done = self.sim.event()
        demand = Demand(size, constraints, done, self.sim.now)
        if size == 0 or not demand.constraints:
            done.succeed(demand)
            return demand
        self.start(demand)
        return demand

    def request(self, size: float, constraints: Sequence[Constraint]) -> Event:
        """Like :meth:`submit` but returns just the completion event."""
        return self.submit(size, constraints).done

    def start(self, demand: Demand) -> None:
        """Enter a pre-built demand into the fluid phase."""
        self._live.add(demand)
        n = len(self._live)
        if n > self.peak_demands:
            self.peak_demands = n
        demand._last_update = self.sim.now
        witnesses = demand._witness
        for i, c in enumerate(demand.constraints):
            c.demands[demand] = None
            w = witnesses[i]
            if w is None:
                c._unbounded += 1
            else:
                wc = c._wit_counts
                k = wc.get(w, 0)
                if k == 0:
                    c._bound_sum += w.capacity
                wc[w] = k + 1
                if w.capacity < c.capacity:
                    c._tighter += 1
        self._account_partitions(demand, +1)
        # Delta-driven arrival: when the demand lands wholly inside one
        # live uniform group's span (plus fresh private constraints), it
        # joins the group's virtual clock directly — no dirty marks, no
        # component walk.  This is the mass-arrival fast path: n demands
        # piling onto one bottleneck cost O(n log n), not O(n²).
        for c in demand.constraints:
            group = c.group
            if group is not None:
                if group.try_join(demand):
                    return
                break
        # Sub-component arrival re-rating: when the allocation is settled
        # (no pending pass) and the newcomer fits into its constraints'
        # residual capacity without squeezing anyone, rating it at the
        # tightest residual is *exactly* max-min — every incumbent keeps
        # its bottleneck, and the newcomer's bottleneck is the constraint
        # it just saturated.  Costs O(local neighborhood), no walk.
        if self._try_arrival_fast_path(demand):
            return
        for c in demand.constraints:
            self._dirty[c] = None
        self._mark_dirty()

    def _try_arrival_fast_path(self, demand: Demand) -> bool:
        """Rate an arriving demand without a filling pass, if exact.

        Exactness argument (unique max-min allocation == every demand has
        a *bottleneck*: a saturated constraint where its rate is maximal):
        give the newcomer r = min over its constraints of the residual
        capacity, leave every incumbent untouched.  Incumbent bottlenecks
        stay saturated and rate-maximal (the newcomer only adds load to
        constraints that had residual >= r, so no previously saturated
        constraint of the newcomer exists — r would be <= 0).  The
        newcomer has a bottleneck iff some constraint with residual == r
        has no incumbent faster than r.  If the state is not settled
        (pending pass, group-owned or starved neighbors), decline."""
        if self._pass_scheduled or self._dirty:
            return False
        r = float("inf")
        info: List[tuple] = []  # (constraint, residual, max incumbent rate)
        for c in demand.constraints:
            if c.group is not None:
                return False
            load = 0.0
            maxr = 0.0
            for d2 in c.demands:
                if d2 is demand:
                    continue
                rt = d2.rate
                if rt <= 0.0 or d2._group is not None:
                    return False  # starved or clock-managed: not settled
                load += rt
                if rt > maxr:
                    maxr = rt
            resid = c.capacity - load
            if resid < r:
                r = resid
            info.append((c, resid, maxr))
        if r <= 0.0:
            return False
        bottleneck: Optional[Constraint] = None
        for c, resid, maxr in info:
            if resid == r and maxr <= r:
                bottleneck = c
                break
        if bottleneck is None:
            return False
        demand.rate = r
        self.arrival_fast_paths += 1
        self._arm_bottleneck_timer(bottleneck, demand.remaining / r)
        return True

    def _account_partitions(self, demand: Demand, delta: int) -> None:
        """Maintain per-partition demand and bridge counts.

        A demand is a *bridge* for partition p when its constraint set is
        not wholly contained in p (it spans partitions, or touches an
        unpartitioned constraint) — while any bridge is live, p's
        decoupling guarantee is off."""
        first: Optional[str] = None
        extra: Optional[List[str]] = None
        bridged = False
        for c in demand.constraints:
            p = c.partition
            if p is None:
                bridged = True
            elif first is None:
                first = p
            elif p != first:
                bridged = True
                if extra is None:
                    extra = [p]
                elif p not in extra:
                    extra.append(p)
        if first is None:
            return
        parts = [first] if extra is None else [first] + extra
        for p in parts:
            n = self._partition_demands.get(p, 0) + delta
            if n > 0:
                self._partition_demands[p] = n
            else:
                self._partition_demands.pop(p, None)
            if bridged:
                b = self._bridges.get(p, 0) + delta
                if b > 0:
                    self._bridges[p] = b
                else:
                    self._bridges.pop(p, None)

    def _unregister(self, demand: Demand) -> None:
        """Shared teardown: indexes, partition accounting, adapter hook."""
        self._live.discard(demand)
        witnesses = demand._witness
        for i, c in enumerate(demand.constraints):
            c.demands.pop(demand, None)
            w = witnesses[i]
            if w is None:
                c._unbounded -= 1
            else:
                wc = c._wit_counts
                k = wc[w] - 1
                if k:
                    wc[w] = k
                else:
                    del wc[w]
                    c._bound_sum -= w.capacity
                    if not wc:
                        c._bound_sum = 0.0  # reset float drift at idle
                if w.capacity < c.capacity:
                    c._tighter -= 1
        self._account_partitions(demand, -1)
        demand._retry_version += 1
        if demand.on_exit is not None:
            demand.on_exit(demand)

    def remove(self, demand: Demand, requeue: bool = True) -> None:
        """Drop a live demand.  ``requeue`` marks its constraints dirty so
        survivors claim the freed capacity (off only when called from
        inside a pass, which already has them in scope)."""
        if demand._group is not None:
            demand._group.remove(demand)
            self._unregister(demand)
            return
        rate = demand.rate
        self._unregister(demand)
        if requeue:
            # Sub-component departure re-rating: freeing capacity on a
            # constraint can only change the allocation if some survivor
            # had that constraint as its bottleneck.  A constraint that
            # was unsaturated binds nobody; a saturated one whose fastest
            # survivor is strictly slower than the leaver cannot be a
            # survivor's bottleneck either (the bottleneck property needs
            # rate >= every sharer, including the leaver).  When every
            # constraint of the leaver passes one of those tests, the
            # survivors' allocation is still exactly max-min: skip the
            # pass entirely.  O(local neighborhood), no walk.
            if rate > 0.0 and not self._dirty and not self._pass_scheduled \
                    and self._departure_is_local(demand, rate):
                self.departure_fast_paths += 1
                return
            dirty = False
            for c in demand.constraints:
                if c.demands:
                    self._dirty[c] = None
                    dirty = True
            if dirty:
                self._mark_dirty()

    def _departure_is_local(self, demand: Demand, rate: float) -> bool:
        """True when a departure provably leaves survivors' rates exact
        (see :meth:`remove`; ``demand`` is already unregistered)."""
        for c in demand.constraints:
            if c.group is not None:
                return False  # pinned foreign load: let a pass re-rate
            if not c.demands:
                continue
            load = rate
            maxr = 0.0
            for d2 in c.demands:
                rt = d2.rate
                if rt <= 0.0 or d2._group is not None:
                    return False  # starved or clock-managed: not settled
                load += rt
                if rt > maxr:
                    maxr = rt
            if maxr >= rate and load >= c.capacity * (1.0 - 1e-9):
                return False  # could have been a survivor's bottleneck
        return True

    def abort(self, demand: Demand, exc: Exception) -> None:
        """Fail a live demand with ``exc`` (endpoint death, wiped disk)."""
        if demand not in self._live:
            return
        self.remove(demand)
        if not demand.done.triggered:
            demand.done.fail(exc)
            demand.done.defused()  # callers may not be listening anymore

    def abort_constraint(self, constraint: Constraint, exc: Exception) -> int:
        """Fail every live demand touching ``constraint``; returns count."""
        victims = list(constraint.demands)  # dict keys, insertion order
        for d in victims:
            self.abort(d, exc)
        return len(victims)

    @property
    def active_demands(self) -> int:
        """Number of demands currently draining."""
        return len(self._live)

    def partition_decoupled(self, partition: str) -> bool:
        """True while no live demand bridges ``partition`` to anything
        outside it — churn inside the partition then provably cannot
        touch any other partition's rates."""
        return self._bridges.get(partition, 0) == 0

    # -- fluid dynamics -------------------------------------------------------
    def _mark_dirty(self) -> None:
        """Schedule a single pass at the current timestamp.  Batching
        matters: heartbeat-driven scheduling starts many demands in the
        same instant, and one pass per component covers them all."""
        if self._pass_scheduled:
            return
        self._pass_scheduled = True
        self.sim.call_at(self.sim.now, self._scheduled_pass)

    def _scheduled_pass(self, _arg: Any = None) -> None:
        self._pass_scheduled = False
        self._rebalance()

    def ensure_progress(self, demand: Demand) -> None:
        """Starvation guard: a demand left with ``rate <= 0`` and no live
        group/bottleneck timer would hang forever if no other demand ever
        arrived or departed.  Arm a retry that forces a fresh pass."""
        if demand.rate > 0 or demand._group is not None:
            return
        demand._retry_version += 1
        version = demand._retry_version

        def retry(_arg: Any) -> None:
            if demand._retry_version != version or demand not in self._live:
                return
            if demand.rate > 0:
                return
            for c in demand.constraints:
                self._dirty[c] = None
            self._mark_dirty()

        self.sim.call_at(self.sim.now + self.STARVATION_RETRY, retry)

    def _rebalance(self) -> None:
        """Re-rate every component reachable from the dirty constraints.

        Each component is walked, advanced, drained, and progressively
        filled *independently*, so a same-instant batch of changes across
        decoupled sites runs one small pass per site — and each pass can
        still hit the uniform fast path.  Visiting is recorded by stamping
        demands/constraints with a batch id (no per-pass hash sets)."""
        if not self._dirty:
            return
        # A dirty constraint owned by a uniform group does NOT dissolve
        # it: the pass pins the members at the clock share and re-rates
        # only the foreign demands (see _fill_component).  The single
        # exception is the group's own bottleneck with its members-only
        # invariant broken — a foreign demand landed there, and the
        # virtual clock cannot represent that.
        for c in list(self._dirty):
            g = c.group
            if g is not None and c is g.constraint and \
                    len(c.demands) != len(g.members):
                g.dissolve()
        seeds, self._dirty = self._dirty, {}
        self._walk_id += 1
        wid = self._walk_id
        for seed in seeds:
            # Seed from the constraint's demands (copy: drained demands
            # unregister mid-fill): a slack seed is never traversed, but
            # each of its demands has at least one binding constraint, so
            # its component is still found and re-rated.  Group members
            # are clock-managed and never seed a generic fill.
            if seed.demands:
                for d in list(seed.demands):
                    if d._visit != wid and d._group is None:
                        self._fill_component(d, wid)

    def _fill_component(self, start: Demand, wid: int) -> None:
        """Walk one component from ``start`` and re-rate it."""
        self.rebalances += 1
        now = self.sim.now
        eps = self.EPSILON

        affected: List[Demand] = []
        links: List[Constraint] = []
        drained: List[Demand] = []
        # Demands are stamped at push time, so each is pushed exactly once.
        start._visit = wid
        stack: List[Demand] = [start]
        pop = stack.pop
        push = stack.append
        add_demand = affected.append
        push_link = links.append
        multi_partition = False
        skipped_slack = False
        first_partition: Optional[str] = None
        while stack:
            d = pop()
            # Fused lazy advance: drain up to `now` on first discovery.
            dt = now - d._last_update
            if dt > 0.0 and d.rate > 0.0:
                rem = d.remaining - d.rate * dt
                d.remaining = rem if rem > 0.0 else 0.0
            d._last_update = now
            if d.remaining <= eps:
                drained.append(d)
            else:
                add_demand(d)
            for c in d.constraints:
                if c._visit != wid:
                    if c._unbounded == 0 and c._bound_sum < c._slack_below:
                        # Provably slack (total possible traffic below
                        # capacity): cannot bind, so it neither rates nor
                        # couples — do NOT chain components through it.
                        skipped_slack = True
                        continue
                    c._visit = wid
                    push_link(c)
                    p = c.partition
                    if p is not None and p != first_partition:
                        if first_partition is None:
                            first_partition = p
                        else:
                            multi_partition = True
                    for d2 in c.demands:
                        if d2._visit != wid:
                            d2._visit = wid
                            # Uniform-group members are clock-managed:
                            # stamp them (so they are not re-examined)
                            # but never walk or re-rate them.
                            if d2._group is None:
                                push(d2)
        if multi_partition:
            self.cross_partition_passes += 1
        size = len(affected) + len(drained)
        hist = self.pass_size_hist
        hist[min(size.bit_length(), len(hist) - 1)] += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("channel", "filling-pass", now, "channel",
                           args={"size": size, "drained": len(drained),
                                 "cross_partition": multi_partition})

        # Complete demands that drained exactly at this instant.  Their
        # constraints stay in scope (co-demands are already collected), so
        # the freed capacity is redistributed by this same pass.
        for d in drained:
            self._unregister(d)
            if not d.done.triggered:
                d.done.succeed(d)

        if not affected:
            return

        # Every demand on a component constraint was collected (closure),
        # so the per-constraint unfrozen count is just its live demand
        # count — no per-demand build loop needed.  Residuals and counts
        # live in per-constraint scratch slots (no dict hashing).
        heap = []
        seq = 0
        best_share = float("inf")
        best: Optional[Constraint] = None
        #: Constraints shared with a live uniform group, filled with the
        #: members pinned at the clock share: (constraint, group, avail).
        pinned: Optional[List[tuple]] = None
        conflicts: Optional[List[_UniformGroup]] = None
        for c in links:
            g = c.group
            if g is not None:
                # A live uniform group shares this constraint.  Its
                # members are exactly clock-rated, so fill only the
                # foreign demands into the residual capacity.
                k = g.counts.get(c, 0)
                gshare = g.share()
                n = len(c.demands) - k
                c._ucount = n
                if not n:
                    continue
                avail = c.capacity - k * gshare
                if avail < n * gshare:
                    # cap/(k+n) < share: joint max-min would squeeze the
                    # members below the clock share — the pin is not
                    # exact here, so go generic for this component.
                    if conflicts is None:
                        conflicts = [g]
                    elif g not in conflicts:
                        conflicts.append(g)
                    continue
                c._residual = avail
                share = avail / n
                if pinned is None:
                    pinned = [(c, g, avail)]
                else:
                    pinned.append((c, g, avail))
            else:
                n = len(c.demands)
                c._ucount = n
                if not n:
                    continue
                c._residual = c.capacity
                share = c.capacity / n
            heap.append((share, seq, c))
            seq += 1
            if share < best_share:
                best_share = share
                best = c

        if pinned is not None and conflicts is None:
            self.uniform_pins += 1

        if conflicts is not None:
            for g in conflicts:
                g.dissolve()
            # Re-walk with the members materialised as plain demands
            # (the component is connected, so any affected demand finds
            # them).  The retry re-counts the pass.
            self._walk_id += 1
            self.rebalances -= 1
            self._fill_component(affected[0], self._walk_id)
            return

        # Single-bottleneck fast path: when the minimum-share constraint
        # carries *every* component demand, round one of progressive
        # filling freezes the whole component at that share.
        if best._ucount == len(affected):
            min_remaining = float("inf")
            pid = self.rebalances
            for d in affected:
                d.rate = best_share
                d._fill_mark = pid  # frozen this pass
                if d.remaining < min_remaining:
                    min_remaining = d.remaining
            if pinned is not None:
                for c, g, avail in pinned:
                    g.set_foreign(c, c._ucount * best_share)
            elif self._try_uniform_group(
                    best, affected,
                    trusted=best._tighter == 0 and not skipped_slack):
                return
            self._arm_bottleneck_timer(best, min_remaining / best_share)
            return

        self._progressive_fill(affected, heap, seq)
        if pinned is not None:
            for c, g, avail in pinned:
                r = c._residual
                g.set_foreign(c, avail - r if r < avail else 0.0)

    def _try_uniform_group(self, bottleneck: Constraint,
                           members: List[Demand],
                           trusted: bool = False) -> bool:
        """Enter virtual-clock mode if the allocation is exactly uniform:
        every non-bottleneck constraint must carry only members (a foreign
        demand — reachable through a slack-skipped constraint — would
        change rates without dirtying the span) and must stay slack at the
        common share.  Shared constraints are fine; their limits go into
        the group's threshold heap, and the group dissolves itself when
        completions push the share past the tightest one.

        ``trusted`` skips the eligibility scan: the caller proved it
        incrementally (no member has a side constraint tighter than the
        bottleneck, so every side c has cap_c >= cap_B >= k_c * share;
        and the walk skipped nothing, so its closure guarantees every
        side constraint is members-only).

        The group's span covers *every* member constraint (slack ones
        included): any dirt anywhere in the span must dissolve the group
        before the members can be walked with stale group-mode state."""
        share = bottleneck.capacity / len(members)
        span: List[Constraint] = [bottleneck]
        counts: Dict[Constraint, int] = {}
        for d in members:
            for c in d.constraints:
                if c is bottleneck:
                    continue
                k = counts.get(c, 0)
                if k == 0:
                    span.append(c)
                counts[c] = k + 1
        if trusted:
            self.uniform_fast_accepts += 1
        else:
            for c, k in counts.items():
                if len(c.demands) != k or k * share > c.capacity:
                    return False
        self.uniform_groups += 1
        group = _UniformGroup(self, bottleneck, dict.fromkeys(members),
                              span, counts)
        group.rearm()
        return True

    def _arm_bottleneck_timer(self, constraint: Constraint,
                              eta: float) -> None:
        """One timer for everything frozen at one bottleneck constraint.

        Fires at the group's earliest completion and marks the constraint
        dirty: the pass drains whatever finished, re-rates survivors, and
        re-arms.  A live timer firing at or before the target is kept —
        it re-checks and re-aims — so slowdowns never allocate timers."""
        now = self.sim.now
        fire_at = now + (eta if eta > 0.0 else 0.0)
        armed = constraint._timer_at
        if armed is not None and armed <= fire_at:
            return
        constraint._timer_version += 1
        constraint._timer_at = fire_at
        version = constraint._timer_version

        def on_fire(_arg: Any) -> None:
            if constraint._timer_version != version:
                return
            constraint._timer_at = None
            if not constraint.demands:
                return
            if self._try_timer_completion(constraint):
                return
            self._dirty[constraint] = None
            self._mark_dirty()

        self.sim.call_at(fire_at, on_fire)

    def _try_timer_completion(self, constraint: Constraint) -> bool:
        """Resolve a bottleneck-timer firing in place when the pass it
        would schedule provably has nothing to do.

        Applies when the constraint holds exactly one non-grouped demand
        that has drained: the demand completes here, and the filling pass
        is skipped iff its departure is *local* — every constraint it
        crossed either stays unsaturated (freed capacity binds nobody) or
        has no survivor as fast as the leaver (so none was bottlenecked
        by it).  This is the completion twin of the ``remove()`` departure
        fast path; it eliminates the single-drained-demand passes that
        otherwise dominate the pass count (most flows finish alone on
        their bottleneck, with every shared constraint slack)."""
        if self._dirty or self._pass_scheduled or len(constraint.demands) != 1:
            return False
        d = next(iter(constraint.demands))
        rate = d.rate
        if d._group is not None or rate <= 0.0:
            return False
        now = self.sim.now
        dt = now - d._last_update
        if dt > 0.0:
            rem = d.remaining - rate * dt
            d.remaining = rem if rem > 0.0 else 0.0
            d._last_update = now
        if d.remaining > self.EPSILON:
            return False  # fired early (rate dropped since arming): re-rate
        for c in d.constraints:
            if c.group is not None:
                return False
            load = 0.0
            maxr = 0.0
            for d2 in c.demands:
                if d2 is d:
                    continue
                rt = d2.rate
                if rt <= 0.0 or d2._group is not None:
                    return False
                load += rt
                if rt > maxr:
                    maxr = rt
            if maxr >= rate and load + rate >= c.capacity * (1.0 - 1e-9):
                return False
        self.completion_fast_paths += 1
        self._unregister(d)
        if not d.done.triggered:
            d.done.succeed(d)
        return True

    def _progressive_fill(self, affected: List[Demand],
                          heap: List[tuple], seq: int) -> None:
        """Generic progressive filling over one multi-bottleneck component.

        Per-constraint residual capacity and unfrozen counts (freezing is
        recorded by stamping demands with this pass's id) plus a lazy
        min-heap of (fair share, constraint) candidates.  Heap entries
        self-validate on pop: shares only grow as competitors freeze, so a
        stale entry is re-pushed with its recomputed share.  Instead of a
        timer per demand, each bottleneck arms one group timer at its
        frozen set's earliest finish."""
        pid = self.rebalances  # this pass's fill-mark stamp
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush

        remaining_demands = len(affected)
        while remaining_demands > 0 and heap:
            share, _, link = heappop(heap)
            n = link._ucount
            if n == 0:
                continue  # all this constraint's demands froze elsewhere
            cur = link._residual / n
            if cur > share:
                heappush(heap, (cur, seq, link))
                seq += 1
                continue  # stale entry: competitors froze since the push
            if cur <= 0.0:
                # Degenerate residual (floating-point underflow after many
                # freeze rounds).  A zero rate would strand the demand with
                # no timer; fall back to an exactly recomputed residual, or
                # a plain fair split of the constraint (the oversubscription
                # is bounded by the rounding residue).
                frozen_sum = 0.0
                unfrozen = 0
                for d in link.demands:
                    if d._group is not None:
                        frozen_sum += d._group.share()
                    elif d._fill_mark == pid:
                        frozen_sum += d.rate
                    else:
                        unfrozen += 1
                exact = link.capacity - frozen_sum
                if exact > 0.0:
                    cur = exact / unfrozen
                else:
                    cur = link.capacity / len(link.demands)
                self.starvation_rescues += unfrozen
            best_share = cur
            min_remaining = float("inf")
            for d in link.demands:
                if d._fill_mark == pid or d._group is not None:
                    continue
                d._fill_mark = pid
                d.rate = best_share
                if d.remaining < min_remaining:
                    min_remaining = d.remaining
                remaining_demands -= 1
                for c2 in d.constraints:
                    r = c2._residual - best_share
                    c2._residual = r if r > 0.0 else 0.0
                    c2._ucount -= 1
            if min_remaining != float("inf"):
                self._arm_bottleneck_timer(link, min_remaining / best_share)

        if remaining_demands > 0:
            # Belt-and-braces: the heap ran dry with unfrozen demands left
            # (cannot happen for well-formed components, but a zero rate
            # must never hang the simulation).
            for d in affected:
                if d._fill_mark != pid:
                    d.rate = 0.0
                    self.ensure_progress(d)
