"""HDFS configuration knobs, with stock-Hadoop and HOG presets.

The paper's availability changes are configuration-level:

- replication factor 3 → **10** (§III-B1),
- heartbeat timeout 15 min → **30 s** (§III-B),
- a **3-minute** datanode disk self-check (§IV-D1, the zombie fix).

Both presets are provided so the ablation benchmarks can flip each knob
independently.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HdfsConfig", "stock_hadoop_config", "hog_config", "MB", "GB"]

MB = 1024.0 * 1024.0
GB = 1024.0 * MB


@dataclass
class HdfsConfig:
    """Tunable parameters of the simulated HDFS."""

    #: Fixed block size in bytes ("e.g., 64 MB"; one map task per block).
    block_size: float = 64 * MB
    #: Default replication factor for new files.
    replication: int = 3
    #: Datanode heartbeat period, seconds (Hadoop ``dfs.heartbeat.interval``).
    #: This is the floor; see ``heartbeats_per_second``.
    heartbeat_interval: float = 3.0
    #: Target cluster-wide heartbeat arrival rate at the namenode.  The
    #: effective per-datanode period is ``max(heartbeat_interval,
    #: live_datanodes / rate)`` — identical to the floor for clusters up
    #: to ``rate * heartbeat_interval`` nodes.  ``0`` disables scaling.
    heartbeats_per_second: float = 100.0
    #: Seconds without a heartbeat before the namenode declares a datanode
    #: dead.  Stock Hadoop's effective value is ~15 minutes
    #: (``heartbeat.recheck.interval``); HOG lowers it to 30 s.
    heartbeat_timeout: float = 15 * 60.0
    #: How often the namenode's monitor scans for expired datanodes.
    heartbeat_recheck_period: float = 5.0
    #: How often the replication monitor scans the under-replicated queue.
    replication_monitor_period: float = 3.0
    #: Max concurrent outbound re-replication streams per datanode
    #: (Hadoop ``dfs.max-repl-streams``).
    max_replication_streams: int = 2
    #: Period of the datanode working-directory self-check; ``None``
    #: disables it (stock Hadoop only checks at startup).  HOG: 180 s.
    disk_check_interval: float = None  # type: ignore[assignment]
    #: Fraction of disk the datanode refuses to fill past (headroom for
    #: non-HDFS usage, mirrors ``dfs.datanode.du.reserved``).
    disk_reserve_fraction: float = 0.05
    #: Period of the datanode's full block report to the namenode
    #: (Hadoop ``dfs.blockreport.intervalMsec``, default one hour).
    #: ``None`` disables periodic reports (registration-only).
    block_report_interval: float = 3600.0  # type: ignore[assignment]
    #: Delay from registration to the *first* periodic block report
    #: (Hadoop staggers initial reports so a mass restart does not
    #: stampede the namenode).
    block_report_initial_delay: float = 600.0
    #: Sim-time backoff before the replication monitor reconsiders a block
    #: it could not schedule (no live source / no eligible target / all
    #: sources at their stream cap).  Deferred blocks are also re-armed
    #: immediately on the next membership event (a datanode registering or
    #: re-registering), so the backoff only bounds the retry period while
    #: the cluster is static — e.g. a full-site blackout.
    replication_retry_backoff: float = 30.0
    #: Max replica invalidations dispatched to one datanode per heartbeat
    #: (drains the namenode's invalidation queue gradually, like Hadoop's
    #: ``dfs.block.invalidate.limit``).
    invalidate_work_per_heartbeat: int = 32

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat settings must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        if self.heartbeats_per_second < 0:
            raise ValueError("heartbeats_per_second cannot be negative")
        if not (0.0 <= self.disk_reserve_fraction < 1.0):
            raise ValueError("disk_reserve_fraction must be in [0, 1)")
        if self.disk_check_interval is not None and self.disk_check_interval <= 0:
            raise ValueError("disk_check_interval must be positive or None")
        if self.block_report_interval is not None:
            if self.block_report_interval <= 0:
                raise ValueError("block_report_interval must be positive or None")
            if self.block_report_initial_delay < 0:
                raise ValueError("block_report_initial_delay cannot be negative")
        if self.replication_retry_backoff <= 0:
            raise ValueError("replication_retry_backoff must be positive")
        if self.invalidate_work_per_heartbeat < 1:
            raise ValueError("invalidate_work_per_heartbeat must be >= 1")


def stock_hadoop_config(**overrides) -> HdfsConfig:
    """Hadoop 0.20 defaults: replication 3, ~15-minute dead-node timeout."""
    return replace(HdfsConfig(), **overrides)


def hog_config(**overrides) -> HdfsConfig:
    """The paper's HOG tuning: replication 10, 30 s timeout, zombie check."""
    cfg = HdfsConfig(
        replication=10,
        heartbeat_timeout=30.0,
        heartbeat_recheck_period=3.0,
        disk_check_interval=180.0,
    )
    return replace(cfg, **overrides)
