"""HDFS data model: files, blocks, and the namenode's replica bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["Block", "BlockInfo", "FileInfo"]


@dataclass(frozen=True)
class Block:
    """An immutable block identity: ``block_id`` within ``file`` of ``size`` bytes.

    HDFS "divides each file into small fixed-size blocks (e.g., 64 MB)";
    the final block of a file may be shorter.
    """

    block_id: int
    file: str
    size: float
    #: Index of this block within its file (block 0 holds bytes [0, size)).
    index: int = 0

    def __repr__(self) -> str:
        return f"<Block #{self.block_id} {self.file}[{self.index}] {self.size:.0f}B>"


class BlockInfo:
    """Namenode-side state for one block: where its replicas live."""

    __slots__ = ("block", "replicas", "pending_targets", "balancer_drop")

    def __init__(self, block: Block) -> None:
        self.block = block
        #: Hosts confirmed to hold a finalized replica.  Insertion-ordered
        #: dict-as-set: ``locate()`` and replication-source choices iterate
        #: it, and their order must not depend on string hashing.
        self.replicas: Dict[str, None] = {}
        #: Hosts a re-replication is currently in flight to (avoid
        #: scheduling duplicate work for the same block/target).
        self.pending_targets: Dict[str, None] = {}
        #: When the balancer migrates this block, the source replica it
        #: wants dropped once the new copy lands (makes the namenode's
        #: over-replication invalidation deterministic).
        self.balancer_drop: "str | None" = None

    @property
    def live_replica_count(self) -> int:
        """Number of confirmed replicas."""
        return len(self.replicas)

    def __repr__(self) -> str:
        return f"<BlockInfo {self.block.block_id} replicas={sorted(self.replicas)}>"


class FileInfo:
    """Namenode-side state for one file in the namespace."""

    __slots__ = ("name", "blocks", "replication")

    def __init__(self, name: str, replication: int) -> None:
        self.name = name
        self.blocks: List[Block] = []
        #: Target replication factor for every block of this file.
        self.replication = replication

    @property
    def size(self) -> float:
        """Total file size in bytes."""
        return sum(b.size for b in self.blocks)

    def __repr__(self) -> str:
        return f"<FileInfo {self.name} blocks={len(self.blocks)} x{self.replication}>"
