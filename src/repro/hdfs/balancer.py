"""The HDFS balancer.

§IV-C: "If users want to increase the number of nodes in the HOG, they can
submit more Condor jobs for extra nodes.  They can use the HDFS balancer
to balance the data distribution."  Fresh glideins join empty; the
balancer migrates replicas from over-utilized datanodes to under-utilized
ones until every node is within ``threshold`` of the mean utilization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.events import Event
from .datanode import Datanode
from .namenode import Namenode

__all__ = ["Balancer", "BalancerReport"]


class BalancerReport:
    """Summary of one balancer run."""

    __slots__ = ("moved_blocks", "moved_bytes", "iterations", "converged")

    def __init__(self) -> None:
        self.moved_blocks = 0
        self.moved_bytes = 0.0
        self.iterations = 0
        self.converged = False

    def __repr__(self) -> str:
        return (f"<BalancerReport moved={self.moved_blocks} blocks "
                f"({self.moved_bytes:.2e}B) in {self.iterations} iterations, "
                f"converged={self.converged}>")


class Balancer:
    """Iteratively migrates block replicas toward uniform disk utilization.

    Parameters
    ----------
    threshold:
        Allowed deviation from mean utilization (fraction of capacity),
        mirroring the Hadoop balancer's ``-threshold`` (default 10%).
    max_concurrent_moves:
        Replica migrations in flight at once.
    """

    def __init__(self, sim: Simulator, namenode: Namenode,
                 threshold: float = 0.10, max_concurrent_moves: int = 5) -> None:
        if not (0.0 < threshold < 1.0):
            raise ValueError("threshold must be in (0, 1)")
        self.sim = sim
        self.namenode = namenode
        self.threshold = threshold
        self.max_concurrent_moves = max_concurrent_moves

    # -- analysis ----------------------------------------------------------------
    def utilization(self) -> Dict[str, float]:
        """HDFS bytes / capacity for every running datanode."""
        out: Dict[str, float] = {}
        for host in self.namenode.live_datanode_hosts():
            dn = self.namenode.datanode(host)
            if dn.state != Datanode.RUNNING:
                continue
            used = dn.disk.usage_by_label().get("hdfs", 0.0)
            out[host] = used / dn.disk.capacity
        return out

    def imbalance(self) -> float:
        """Largest deviation from mean utilization across datanodes."""
        util = self.utilization()
        if not util:
            return 0.0
        mean = sum(util.values()) / len(util)
        return max(abs(u - mean) for u in util.values())

    def _pick_moves(self) -> List[Tuple[str, str, int]]:
        """Propose ``(source, target, block_id)`` migrations for one pass."""
        util = self.utilization()
        if len(util) < 2:
            return []
        mean = sum(util.values()) / len(util)
        over = sorted((h for h, u in util.items() if u > mean + self.threshold),
                      key=lambda h: -util[h])
        under = sorted((h for h, u in util.items() if u < mean - self.threshold),
                       key=lambda h: util[h])
        moves: List[Tuple[str, str, int]] = []
        used_targets: Dict[str, int] = {}
        for src in over:
            if not under:
                break
            src_dn = self.namenode.datanode(src)
            for bid in sorted(src_dn.block_ids):
                if len(moves) >= self.max_concurrent_moves:
                    return moves
                info = self.namenode.block_info(bid)
                # Do not break the replica spread: target must not already
                # hold this block.
                for tgt in under:
                    if tgt in info.replicas or tgt in info.pending_targets:
                        continue
                    if used_targets.get(tgt, 0) >= 2:
                        continue
                    if not self.namenode.datanode(tgt).can_store(info.block.size):
                        continue
                    moves.append((src, tgt, bid))
                    used_targets[tgt] = used_targets.get(tgt, 0) + 1
                    break
                else:
                    continue
                break  # one block per over-utilized node per pass
        return moves

    # -- execution --------------------------------------------------------------------
    def run(self, max_iterations: int = 200) -> Event:
        """Balance until within threshold (or iteration cap); returns an
        event carrying a :class:`BalancerReport`."""
        done = self.sim.event()
        self.sim.process(self._run_proc(max_iterations, done), name="balancer")
        return done

    def _run_proc(self, max_iterations: int, done: Event):
        report = BalancerReport()
        while report.iterations < max_iterations:
            report.iterations += 1
            if self.imbalance() <= self.threshold:
                report.converged = True
                break
            moves = self._pick_moves()
            if not moves:
                break
            events = []
            for src, tgt, bid in moves:
                info = self.namenode.block_info(bid)
                info.pending_targets[tgt] = None
                # Designate the source replica for invalidation: when the
                # new copy is reported, the namenode sees an excess replica
                # and drops exactly this one.
                info.balancer_drop = src
                tgt_dn = self.namenode.datanode(tgt)
                # Joint disk+network streaming: the move is rated over the
                # source disk read, the network path, and the target disk
                # write at once, so migrations genuinely compete with live
                # shuffle/read traffic at both endpoints.
                src_disk = self.namenode.datanode(src).disk
                events.append((tgt_dn.receive_block(info.block, src,
                                                    source_disk=src_disk),
                               src, tgt, bid))
            for ev, src, tgt, bid in events:
                info = self.namenode.block_info(bid)
                try:
                    yield ev
                except Exception:
                    info.pending_targets.pop(tgt, None)
                    info.balancer_drop = None
                    continue
                report.moved_blocks += 1
                report.moved_bytes += info.block.size
        done.succeed(report)
