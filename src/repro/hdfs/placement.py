"""Block placement policies: Hadoop's rack-aware default and HOG's
site-aware extension.

Hadoop's default (rack awareness): first replica on the writer's node,
second on a different rack, third on the same rack as the second, further
replicas spread randomly.  HOG re-interprets "rack" as OSG *site* and adds
a third failure level — "HOG's data placement and replication policy takes
the site failure into account when it places data blocks" (§I) — so
replicas of a block are spread across as many sites as possible, guarding
against whole-site preemption bursts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from ..net.topology import NetworkTopology

__all__ = ["PlacementError", "PlacementPolicy", "SiteAwarePolicy", "RandomPolicy"]


class PlacementError(Exception):
    """No viable targets exist for a block."""


class PlacementPolicy:
    """Interface: choose datanode targets for a block's replicas.

    ``space_ok`` is a callback ``host -> bool`` testing whether the
    datanode can accept one more block.
    """

    def choose_targets(
        self,
        writer: Optional[str],
        count: int,
        existing: Set[str],
        candidates: Sequence[str],
        space_ok: Callable[[str], bool],
    ) -> List[str]:
        """Return up to ``count`` hosts for new replicas.

        Parameters
        ----------
        writer:
            Host initiating the write (gets the first replica if it is a
            viable datanode), or ``None`` for re-replication.
        count:
            Number of new replicas wanted.
        existing:
            Hosts already holding (or receiving) a replica; never chosen.
        candidates:
            Live datanode hosts.
        space_ok:
            Capacity predicate.
        """
        raise NotImplementedError


class SiteAwarePolicy(PlacementPolicy):
    """Spread replicas across failure domains (racks or sites).

    The same code implements both stock rack awareness and HOG site
    awareness: the failure domain is whatever the topology resolver
    reports.  Selection order:

    1. the writer's own node (data locality for the writer),
    2. a node in a *different* domain than the first replica,
    3. remaining replicas round-robin over the domains with the fewest
       replicas so far, random node within the domain.
    """

    def __init__(self, topology: NetworkTopology, rng: np.random.Generator) -> None:
        self.topology = topology
        self.rng = rng

    def choose_targets(self, writer, count, existing, candidates, space_ok):
        """Pick targets per the site-spread rules (see class docstring).

        Capacity is probed lazily (only for hosts actually considered) and
        random tie-breaking uses swap-pop draws instead of shuffling every
        site's full host list — placement cost scales with the replica
        count, not the cluster size."""
        chosen: List[str] = []
        taken: Set[str] = set(existing)
        by_site: Dict[str, List[str]] = {}
        for h in candidates:
            if h not in taken:
                by_site.setdefault(self.topology.site_of(h), []).append(h)
        if not by_site:
            return []

        site_load: Dict[str, int] = {s: 0 for s in by_site}
        for h in taken:
            s = self.topology.site_of(h)
            if s in site_load:
                site_load[s] += 1

        def drop_if_empty(site: str) -> None:
            if not by_site[site]:
                del by_site[site]
                del site_load[site]

        def take(host: str, site: str) -> None:
            chosen.append(host)
            taken.add(host)
            site_load[site] += 1
            drop_if_empty(site)

        def pop_random_viable(site: str) -> Optional[str]:
            """Draw hosts from ``site`` without replacement until one has
            room (full nodes are dropped from further consideration)."""
            bucket = by_site[site]
            while bucket:
                i = int(self.rng.integers(len(bucket)))
                host = bucket[i]
                bucket[i] = bucket[-1]
                bucket.pop()
                if space_ok(host):
                    return host
            return None

        # 1. Writer-local replica.
        if writer is not None and count > 0 and writer not in taken:
            wsite = self.topology.site_of(writer)
            bucket = by_site.get(wsite)
            if bucket and writer in bucket and space_ok(writer):
                bucket.remove(writer)
                take(writer, wsite)

        # 2. Then always pick from the least-loaded domain (which realises
        #    "one other rack/site" for the second replica and an even
        #    spread for the rest).
        while len(chosen) < count and by_site:
            site = min(site_load, key=lambda s: (site_load[s], s))
            host = pop_random_viable(site)
            if host is None:
                drop_if_empty(site)
                continue
            take(host, site)

        return chosen


class RandomPolicy(PlacementPolicy):
    """Topology-blind placement — the ablation baseline for site awareness
    (what HOG would do if the topology script were absent and every node
    fell into the default rack)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def choose_targets(self, writer, count, existing, candidates, space_ok):
        """Pick ``count`` random viable hosts (writer-local first)."""
        taken = set(existing)
        viable = [h for h in candidates if h not in taken and space_ok(h)]
        chosen: List[str] = []
        if writer is not None and writer in viable:
            chosen.append(writer)
            viable.remove(writer)
        n = min(count - len(chosen), len(viable))
        if n > 0:
            picks = self.rng.choice(len(viable), size=n, replace=False)
            chosen.extend(viable[i] for i in picks)
        return chosen[:count]
